"""FR-FCFS memory-controller scheduling model."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.banking import BankGeometry
from repro.mem.scheduler import ScheduleResult, schedule_trace, scheduling_gain

CONFIG = SystemConfig.scaled(512)
GEOMETRY = BankGeometry(channels=1, banks_per_channel=4, command_slot_ns=0)


def writes(addresses):
    return [(a, True) for a in addresses]


class TestPolicies:
    def test_fcfs_never_reorders(self):
        trace = writes([0, 0, 64, 64, 128])
        result = schedule_trace(trace, CONFIG, GEOMETRY, "fcfs")
        assert result.reordered == 0

    def test_frfcfs_hides_bank_conflicts(self):
        # Two conflicting streams interleaved badly: A A B B -> A B A B.
        trace = writes([0, 0, 64, 64])
        fcfs = schedule_trace(trace, CONFIG, GEOMETRY, "fcfs")
        frfcfs = schedule_trace(trace, CONFIG, GEOMETRY, "frfcfs")
        assert frfcfs.makespan_ns < fcfs.makespan_ns
        assert frfcfs.reordered > 0

    def test_conflict_free_trace_gains_nothing(self):
        trace = writes([i * 64 for i in range(16)])
        assert scheduling_gain(trace, CONFIG, GEOMETRY) == pytest.approx(1.0)

    def test_identical_results_for_single_bank(self):
        geometry = BankGeometry(1, 1, command_slot_ns=0)
        trace = writes([0, 64, 128])
        fcfs = schedule_trace(trace, CONFIG, geometry, "fcfs")
        frfcfs = schedule_trace(trace, CONFIG, geometry, "frfcfs")
        assert fcfs.makespan_ns == frfcfs.makespan_ns

    def test_makespan_matches_hand_computation(self):
        # Bank 0 twice, then bank 1 once; FCFS: 500+500 serial on bank 0,
        # bank 1 overlaps -> makespan 1000.
        result = schedule_trace(writes([0, 0, 64]), CONFIG, GEOMETRY, "fcfs")
        assert result.makespan_ns == pytest.approx(1000.0)

    def test_window_bounds_lookahead(self):
        # The conflicting pair is beyond a window of 1: no reordering there.
        trace = writes([0, 0, 64])
        narrow = schedule_trace(trace, CONFIG, GEOMETRY, "frfcfs", window=1)
        wide = schedule_trace(trace, CONFIG, GEOMETRY, "frfcfs", window=8)
        assert narrow.reordered == 0
        assert wide.makespan_ns <= narrow.makespan_ns

    def test_empty_trace(self):
        result = schedule_trace([], CONFIG, GEOMETRY)
        assert result == ScheduleResult("frfcfs", 0, 0.0, 0)
        assert scheduling_gain([], CONFIG, GEOMETRY) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            schedule_trace([], CONFIG, GEOMETRY, "lifo")
        with pytest.raises(ConfigError):
            schedule_trace([], CONFIG, GEOMETRY, window=0)


class TestOnDrainTraces:
    @pytest.fixture(scope="class")
    def traces(self):
        from repro.core.system import SecureEpdSystem
        out = {}
        for scheme in ("base-lu", "horus-slm"):
            system = SecureEpdSystem(CONFIG, scheme=scheme)
            system.nvm.trace = []
            system.fill_worst_case(seed=1)
            system.crash(seed=2)
            out[scheme] = (system.config, system.nvm.trace)
        return out

    def test_scheduling_does_not_close_the_scheme_gap(self, traces):
        """Both schemes gain from FR-FCFS (Horus's periodic coalesced
        address/MAC writes collide with its data stream under FCFS, so it
        gains too — a measured result), but the baseline's drain stays
        several times longer even with an ideal reordering window."""
        geometry = BankGeometry(1, 8, command_slot_ns=2.5)
        makespans = {
            scheme: schedule_trace(trace, config, geometry,
                                   "frfcfs").makespan_ns
            for scheme, (config, trace) in traces.items()
        }
        assert makespans["base-lu"] > 3 * makespans["horus-slm"]
        gains = {scheme: scheduling_gain(trace, config, geometry)
                 for scheme, (config, trace) in traces.items()}
        for gain in gains.values():
            assert 1.0 <= gain <= geometry.total_banks

    def test_frfcfs_never_slower_than_fcfs(self, traces):
        geometry = BankGeometry(1, 8, command_slot_ns=2.5)
        for scheme, (config, trace) in traces.items():
            assert scheduling_gain(trace, config, geometry) >= 0.999
