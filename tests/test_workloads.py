"""Workload trace generators."""

import pytest

from repro.common.errors import AlignmentError, ConfigError
from repro.core.system import SecureEpdSystem
from repro.workloads.generators import (
    analytics_scan_trace,
    graph_walk_trace,
    kvstore_trace,
    replay,
    transactional_trace,
)
from repro.workloads.trace import MemoryOp, OpKind, summarize


class TestTraceRecords:
    def test_rejects_unaligned_address(self):
        with pytest.raises(AlignmentError):
            MemoryOp(OpKind.READ, 100)

    def test_rejects_partial_write_payload(self):
        with pytest.raises(AlignmentError):
            MemoryOp(OpKind.WRITE, 0, b"short")

    def test_summary(self):
        trace = [MemoryOp(OpKind.READ, 0),
                 MemoryOp(OpKind.WRITE, 0, bytes(64)),
                 MemoryOp(OpKind.WRITE, 64, bytes(64))]
        summary = summarize(trace)
        assert summary.num_ops == 3
        assert summary.num_reads == 1
        assert summary.num_writes == 2
        assert summary.footprint_blocks == 2
        assert summary.write_fraction == pytest.approx(2 / 3)

    def test_empty_trace_summary(self):
        assert summarize([]).write_fraction == 0.0


class TestGenerators:
    def test_kvstore_shape(self):
        trace = kvstore_trace(1000, footprint_blocks=64,
                              write_fraction=0.5, seed=1)
        summary = summarize(trace)
        assert summary.num_ops == 1000
        assert 0.4 < summary.write_fraction < 0.6
        assert summary.footprint_blocks <= 64

    def test_kvstore_deterministic_per_seed(self):
        assert kvstore_trace(50, 8, seed=3) == kvstore_trace(50, 8, seed=3)
        assert kvstore_trace(50, 8, seed=3) != kvstore_trace(50, 8, seed=4)

    def test_analytics_scan_is_sequential(self):
        trace = analytics_scan_trace(2, footprint_blocks=16, seed=1)
        reads = [op.address for op in trace if op.kind is OpKind.READ]
        assert reads == [i * 64 for i in range(16)] * 2

    def test_analytics_scan_updates(self):
        trace = analytics_scan_trace(1, 16, update_every=4, seed=1)
        assert summarize(trace).num_writes == 4

    def test_graph_walk_stays_in_footprint(self):
        trace = graph_walk_trace(500, footprint_blocks=32, seed=1)
        assert all(op.address < 32 * 64 for op in trace)

    def test_graph_walk_rejects_bad_locality(self):
        with pytest.raises(ConfigError):
            graph_walk_trace(10, 8, locality=1.5)

    def test_transactional_reads_precede_writes(self):
        trace = transactional_trace(3, 64, txn_size=4, seed=1)
        assert len(trace) == 3 * 8
        for txn in range(3):
            ops = trace[txn * 8:(txn + 1) * 8]
            assert all(op.kind is OpKind.READ for op in ops[:4])
            assert all(op.kind is OpKind.WRITE for op in ops[4:])

    def test_generators_reject_bad_parameters(self):
        with pytest.raises(ConfigError):
            kvstore_trace(10, 0)
        with pytest.raises(ConfigError):
            transactional_trace(1, 8, txn_size=0)

    def test_base_offset(self):
        trace = kvstore_trace(20, 8, base=1 << 20, seed=1)
        assert all(op.address >= 1 << 20 for op in trace)


class TestReplay:
    def test_replay_returns_write_oracle(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        trace = kvstore_trace(200, footprint_blocks=32, seed=5)
        expected = replay(system, trace)
        for address, data in expected.items():
            assert system.read(address) == data
