"""Fault injection: the hold-up source dies mid-drain.

The paper sizes the backup source for the worst case precisely because an
undersized one truncates the drain.  These tests verify the failure is
*fail-closed* for every secure design: a partially-persisted drain is
detected at recovery — never silently accepted — while the non-secure
system quietly loses data (which is the motivation for sizing, not a bug).
"""

import pytest

from repro.common.errors import IntegrityError, RecoveryError, SecurityError
from repro.core.system import SecureEpdSystem


def _half_budget_crash(system, seed=2):
    """Fill worst-case, then let power die halfway through the drain."""
    system.fill_worst_case(seed=1)
    # First measure how many writes a full drain needs, on a twin system.
    twin = SecureEpdSystem(system.config, scheme=system.scheme)
    twin.fill_worst_case(seed=1)
    full = twin.crash(seed=seed).total_writes
    system.nvm.write_budget = full // 2
    return system.crash(seed=seed)


class TestNonSecureLosesSilently:
    def test_truncated_drain_drops_lines(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        system.fill_worst_case(seed=1)
        addresses = [line.address for line in system.hierarchy.llc.lines()]
        system.nvm.write_budget = len(addresses) // 4
        system.crash(seed=2)
        persisted = sum(
            1 for a in addresses if system.nvm.backend.is_written(a))
        assert persisted < len(addresses)


class TestHorusFailsClosed:
    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_truncated_vault_is_rejected_at_recovery(self, tiny_config,
                                                     scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        _half_budget_crash(system)
        system.nvm.write_budget = None     # power is back
        with pytest.raises(SecurityError):
            system.recover()

    def test_tiny_truncation_is_still_caught(self, tiny_config):
        """Losing only the final few writes (the last coalesced MAC/address
        blocks) must also fail verification."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.fill_worst_case(seed=1)
        twin = SecureEpdSystem(tiny_config, scheme="horus-slm")
        twin.fill_worst_case(seed=1)
        full = twin.crash(seed=2).total_writes
        system.nvm.write_budget = full - 2
        system.crash(seed=2)
        system.nvm.write_budget = None
        with pytest.raises(SecurityError):
            system.recover()


class TestBaselineFailsClosed:
    def test_truncated_baseline_drain_is_unverifiable(self, tiny_config):
        """Base-LU with a truncated drain fails closed — in fact the
        controller detects the lost metadata writes *during* the drain
        (a dropped counter write re-fetched from NVM no longer verifies
        against its already-updated cached parent)."""
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        with pytest.raises((IntegrityError, RecoveryError)):
            _half_budget_crash(system)
            system.nvm.write_budget = None
            system.recover()
            # If drain and shadow happened to survive, cold reads must
            # still expose the missing writes.
            system.controller.drop_volatile_state()
            for line_address in range(0, 64 * 4096, 4096):
                system.controller.read(line_address)


class TestSufficientBudgetIsExact:
    def test_exact_budget_drains_and_recovers(self, tiny_config):
        """A budget of exactly the worst-case write count succeeds — the
        hold-up sizing the whole paper is about."""
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        system.fill_worst_case(seed=1)
        twin = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        twin.fill_worst_case(seed=1)
        exact = twin.crash(seed=2).total_writes
        system.nvm.write_budget = exact
        system.crash(seed=2)
        system.nvm.write_budget = None
        recovery = system.recover()
        assert recovery.blocks_restored > 0
