"""Property-based tests: SLM/DLM MAC-coalescing arithmetic.

For any dirty-line count N (multiples of 8 and ragged tails alike), the
Section IV closed form must coalesce exactly: SLM writes ceil(N/8) MAC
blocks and computes N MACs; DLM writes ceil(N/64) MAC blocks and computes
N + ceil(N/8) MACs — the paper's 1.125x MAC premium for 8x fewer writes.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytic import horus_drain_cost

counts = st.integers(min_value=1, max_value=1 << 22)


class TestCoalescingClosedForm:
    @given(counts)
    @settings(max_examples=300)
    def test_slm_counts(self, n):
        cost = horus_drain_cost(n, double_level_mac=False)
        assert cost.data_writes == n
        assert cost.address_writes == math.ceil(n / 8)
        assert cost.mac_writes == math.ceil(n / 8)
        assert cost.mac_computations == n
        assert cost.aes_operations == n
        assert cost.total_writes == n + 2 * math.ceil(n / 8)

    @given(counts)
    @settings(max_examples=300)
    def test_dlm_counts(self, n):
        cost = horus_drain_cost(n, double_level_mac=True)
        assert cost.data_writes == n
        assert cost.address_writes == math.ceil(n / 8)
        assert cost.mac_writes == math.ceil(n / 64)
        assert cost.mac_computations == n + math.ceil(n / 8)
        assert cost.total_writes == n + math.ceil(n / 8) + math.ceil(n / 64)

    @given(counts)
    @settings(max_examples=300)
    def test_dlm_mac_premium_is_bounded_by_1_125(self, n):
        """DLM/SLM MAC ratio: exactly 1.125x when 8 | N, and never more
        than (N + ceil(N/8)) / N <= 1.125 + tail slack below 1/N."""
        slm = horus_drain_cost(n, double_level_mac=False)
        dlm = horus_drain_cost(n, double_level_mac=True)
        ratio = dlm.mac_computations / slm.mac_computations
        if n % 8 == 0:
            assert ratio == 1.125
        else:
            # Ragged tail: one extra level-2 MAC at most.
            assert 1.125 < ratio <= 1.125 + 1 / n

    @given(counts)
    @settings(max_examples=300)
    def test_dlm_write_saving_dominates_its_mac_cost(self, n):
        """DLM never writes more than SLM, and saves ceil(N/8) - ceil(N/64)
        MAC-block writes exactly."""
        slm = horus_drain_cost(n, double_level_mac=False)
        dlm = horus_drain_cost(n, double_level_mac=True)
        saved = slm.total_writes - dlm.total_writes
        assert saved == math.ceil(n / 8) - math.ceil(n / 64)
        assert saved >= 0

    @given(st.integers(min_value=1, max_value=1 << 16))
    @settings(max_examples=200)
    def test_tails_occupy_one_partial_block(self, n):
        """A non-multiple-of-8 tail costs exactly one extra (partially
        filled) address block and MAC block."""
        cost = horus_drain_cost(n, double_level_mac=False)
        full = horus_drain_cost(n - n % 8, double_level_mac=False) \
            if n % 8 else cost
        if n % 8:
            assert cost.address_writes == full.address_writes + 1
            assert cost.mac_writes == full.mac_writes + 1
