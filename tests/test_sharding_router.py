"""ShardRouter: total, disjoint, order-preserving address-range routing."""

import pytest

from repro.common.errors import AddressError, ConfigError
from repro.sharding.router import MAX_SHARDS, ShardRouter
from repro.workloads.trace import MemoryOp, OpKind
from repro.workloads.ycsb import ycsb_trace


def sample_addresses(router, per_shard=8):
    """Line-aligned probes spread over every shard, including boundaries."""
    size = router.shard_data_size
    probes = []
    for extent in router.extents:
        step = max(64, size // per_shard // 64 * 64)
        probes.extend(range(extent.base, extent.end, step))
        probes.append(extent.end - 64)
    return sorted(set(probes))


class TestRouterConstruction:
    def test_rejects_zero_shards(self, tiny_config):
        with pytest.raises(ConfigError, match="shard count"):
            ShardRouter(tiny_config, 0)

    def test_rejects_oversized_fleet(self, tiny_config):
        with pytest.raises(ConfigError, match="shard count"):
            ShardRouter(tiny_config, MAX_SHARDS + 1)

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7, 16])
    def test_extents_tile_the_aggregate_space(self, tiny_config, num_shards):
        router = ShardRouter(tiny_config, num_shards)
        assert router.total_data_size == \
            router.shard_data_size * num_shards
        assert router.extents[0].base == 0
        for earlier, later in zip(router.extents, router.extents[1:]):
            assert earlier.end == later.base
        assert router.extents[-1].end == router.total_data_size


class TestAddressMapping:
    @pytest.mark.parametrize("num_shards", [1, 2, 7, 16])
    def test_routing_is_total_and_disjoint(self, tiny_config, num_shards):
        """Every aligned address belongs to exactly one extent, and route()
        agrees with that extent."""
        router = ShardRouter(tiny_config, num_shards)
        for address in sample_addresses(router):
            owners = [extent.shard for extent in router.extents
                      if extent.contains(address)]
            assert len(owners) == 1, hex(address)
            shard, local = router.route(address)
            assert shard == owners[0] == router.shard_of(address)
            assert 0 <= local < router.shard_data_size
            assert local == router.to_local(address)

    @pytest.mark.parametrize("num_shards", [1, 3, 16])
    def test_global_local_roundtrip(self, tiny_config, num_shards):
        router = ShardRouter(tiny_config, num_shards)
        for address in sample_addresses(router):
            shard, local = router.route(address)
            assert router.to_global(shard, local) == address

    def test_out_of_range_addresses_rejected(self, tiny_config):
        router = ShardRouter(tiny_config, 4)
        with pytest.raises(AddressError, match="outside aggregate"):
            router.route(-64)
        with pytest.raises(AddressError, match="outside aggregate"):
            router.route(router.total_data_size)
        with pytest.raises(AddressError, match="outside fleet"):
            router.to_global(4, 0)
        with pytest.raises(AddressError, match="outside shard"):
            router.to_global(0, router.shard_data_size)


class TestTraceSplitting:
    def make_trace(self, router, num_ops=600, seed=5):
        footprint = min(router.total_data_size // 64, 512)
        return ycsb_trace("a", num_ops=num_ops,
                          footprint_blocks=footprint, seed=seed)

    @pytest.mark.parametrize("num_shards", [1, 2, 7])
    def test_split_is_a_cross_shard_permutation(self, tiny_config,
                                                num_shards):
        """Every op lands in exactly one sub-trace, rebased but otherwise
        intact, and per-shard order matches arrival order."""
        router = ShardRouter(tiny_config, num_shards)
        trace = self.make_trace(router)
        parts = router.split(trace)
        assert len(parts) == num_shards
        assert sum(len(part) for part in parts) == len(trace)

        cursors = [0] * num_shards
        for op in trace:
            shard, local = router.route(op.address)
            routed = parts[shard][cursors[shard]]
            cursors[shard] += 1
            assert routed.kind is op.kind
            assert routed.address == local
            assert routed.data == op.data

    def test_split_locals_stay_aligned_and_in_range(self, tiny_config):
        router = ShardRouter(tiny_config, 4)
        for part in router.split(self.make_trace(router)):
            for op in part:
                assert 0 <= op.address < router.shard_data_size
                assert op.address % 64 == 0

    def test_split_ops_equal_checked_construction(self, tiny_config):
        """The fast-path rebased ops are indistinguishable from ops built
        through the validating constructor."""
        router = ShardRouter(tiny_config, 4)
        for part in router.split(self.make_trace(router, num_ops=64)):
            for op in part:
                assert op == MemoryOp(op.kind, op.address, op.data)
                assert hash(op) == hash(MemoryOp(op.kind, op.address,
                                                 op.data))

    def test_split_shard_zero_aliases_originals(self, tiny_config):
        """Shard 0's base is zero, so its sub-trace reuses the input ops."""
        router = ShardRouter(tiny_config, 2)
        trace = [MemoryOp(OpKind.READ, 0),
                 MemoryOp(OpKind.WRITE, router.shard_data_size, bytes(64))]
        parts = router.split(trace)
        assert parts[0][0] is trace[0]
        assert parts[1][0] is not trace[1]
        assert parts[1][0].address == 0

    def test_split_rejects_out_of_range_ops(self, tiny_config):
        router = ShardRouter(tiny_config, 2)
        rogue = [MemoryOp(OpKind.READ, router.total_data_size)]
        with pytest.raises(AddressError, match="outside aggregate"):
            router.split(rogue)
