"""Property-based equivalence: the SoA epoch pass vs the dict-model spec.

The scalar :class:`~repro.cache.hierarchy.CacheHierarchy` read/write loop
over dict-of-:class:`~repro.cache.line.CacheLine` sets is the
specification; :meth:`~repro.cache.hierarchy.CacheHierarchy.replay_epoch`
runs the same ops through :class:`~repro.cache.soa.SoALevel` lanes and must
leave *identical* observables on every op sequence — hit/miss counters,
``access_counts``, per-set LRU→MRU orders, payloads, dirty bits, the
emitted memory-op stream (order included), and the memory image after
applying it.  Degenerate geometries (single way, single set), duplicate
addresses, and arbitrary epoch boundaries are exactly where a transcription
bug would hide, so the strategies bias hard toward them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import CacheLine
from repro.cache.soa import SoALevel, decompose_sets
from repro.common.config import CacheConfig, MemoryConfig, SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from tests.conftest import examples

LINE = CACHE_LINE_SIZE


def _config(l1_lines: int, l1_ways: int, l2_lines: int, l2_ways: int,
            llc_lines: int, llc_ways: int) -> SystemConfig:
    return SystemConfig(
        l1=CacheConfig("L1", l1_lines * LINE, l1_ways, 2),
        l2=CacheConfig("L2", l2_lines * LINE, l2_ways, 20),
        llc=CacheConfig("LLC", llc_lines * LINE, llc_ways, 32),
        memory=MemoryConfig(size=llc_lines * LINE * 4))


#: Small inclusive geometries, including the degenerate extremes: direct
#: mapped everywhere (1 way) and fully associative everywhere (1 set).
GEOMETRIES = {
    "mixed": _config(4, 2, 8, 2, 16, 4),
    "direct-mapped": _config(2, 1, 4, 1, 8, 1),
    "single-set": _config(2, 2, 4, 4, 8, 8),
}


class _Memory:
    """Memory side that records its op stream in issue order."""

    def __init__(self):
        self.store: dict[int, bytes] = {}
        self.log: list = []

    def fetch(self, address: int) -> bytes:
        data = self.store.get(address, bytes(LINE))
        self.log.append(("r", address))
        return data

    def writeback(self, address: int, data: bytes) -> None:
        self.log.append(("w", address))
        self.store[address] = data


def _attached(config: SystemConfig) -> tuple[CacheHierarchy, _Memory]:
    hierarchy = CacheHierarchy(config)
    memory = _Memory()
    hierarchy.attach(memory.fetch, memory.writeback)
    return hierarchy, memory


def _apply_mem_ops(memory: _Memory, mem_ops) -> list:
    """Run an epoch's deferred memory stream exactly as emitted."""
    fetched = []
    for kind, address, data in mem_ops:
        if kind == "r":
            fetched.append(memory.fetch(address))
        else:
            memory.writeback(address, data)
    return fetched


def _state(hierarchy: CacheHierarchy, memory: _Memory) -> dict:
    return {
        "levels": [(level.name, level.hits, level.misses)
                   for level in hierarchy.levels],
        "access": dict(hierarchy.access_counts),
        "sets": [
            [[(line.address, bytes(line.data), line.dirty)
              for line in cache_set.values()]
             for cache_set in level._sets]
            for level in hierarchy.levels],
        "store": dict(memory.store),
        "log": list(memory.log),
    }


@st.composite
def op_sequences(draw, pool_lines: int, min_size=0, max_size=40):
    """Op tuples over a pool sized to force conflicts and duplicates."""
    pool = [i * LINE for i in range(pool_lines)]
    size = draw(st.integers(min_size, max_size))
    ops = []
    for i in range(size):
        address = draw(st.sampled_from(pool))
        if draw(st.booleans()):
            ops.append(("w", address, bytes([i % 251]) * LINE))
        else:
            ops.append(("r", address, None))
    return ops


def _run_scalar(config: SystemConfig, ops) -> dict:
    hierarchy, memory = _attached(config)
    for kind, address, data in ops:
        if kind == "w":
            hierarchy.write(address, data)
        else:
            hierarchy.read(address)
    return _state(hierarchy, memory)


def _run_epochs(config: SystemConfig, ops, epoch_ops: int) -> dict:
    hierarchy, memory = _attached(config)
    with hierarchy.epoch_session():
        for start in range(0, len(ops), epoch_ops):
            mem_ops, fills = hierarchy.replay_epoch(
                list(ops[start:start + epoch_ops]))
            hierarchy.resolve_pending(fills,
                                      _apply_mem_ops(memory, mem_ops))
    return _state(hierarchy, memory)


class TestEpochMatchesScalar:
    """replay_epoch vs the per-op read/write loop, state for state."""

    @pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
    @given(ops=op_sequences(pool_lines=24), epoch_ops=st.integers(1, 9))
    @settings(max_examples=examples(40), deadline=None)
    def test_identical_observables(self, geometry, ops, epoch_ops):
        config = GEOMETRIES[geometry]
        assert _run_epochs(config, ops, epoch_ops) == \
            _run_scalar(config, ops)

    @given(ops=op_sequences(pool_lines=3, max_size=30))
    @settings(max_examples=examples(25), deadline=None)
    def test_duplicate_heavy_sequences(self, ops):
        """A three-address pool: nearly every op revisits a line, so LRU
        touches, merge-without-touch stores, and same-epoch refills all
        trigger constantly."""
        config = GEOMETRIES["direct-mapped"]
        assert _run_epochs(config, ops, 4) == _run_scalar(config, ops)

    @given(ops=op_sequences(pool_lines=24, min_size=1))
    @settings(max_examples=examples(25), deadline=None)
    def test_session_boundaries_are_invisible(self, ops):
        """Many sessions of one epoch each (materialize/dematerialize
        round trip between every epoch) still match one scalar run."""
        config = GEOMETRIES["mixed"]
        hierarchy, memory = _attached(config)
        for start in range(0, len(ops), 5):
            with hierarchy.epoch_session():
                mem_ops, fills = hierarchy.replay_epoch(
                    list(ops[start:start + 5]))
                hierarchy.resolve_pending(
                    fills, _apply_mem_ops(memory, mem_ops))
        assert _state(hierarchy, memory) == _run_scalar(config, ops)


class TestMaterializeRoundTrip:
    """SoALevel.from_cache / restore preserve every line property."""

    @given(entries=st.lists(
        st.tuples(st.integers(0, 63), st.booleans(),
                  st.integers(0, 255)),
        max_size=32))
    @settings(max_examples=examples(50))
    def test_round_trip_is_identity(self, entries):
        config = CacheConfig("L", 16 * LINE, 4, 1)
        cache = SetAssociativeCache(config)
        for line_index, dirty, fill in entries:
            cache.insert(CacheLine(line_index * LINE,
                                   bytes([fill]) * LINE, dirty=dirty))
        before = [[(line.address, line.data, line.dirty)
                   for line in cache_set.values()]
                  for cache_set in cache._sets]
        payloads = [line.data for cache_set in cache._sets
                    for line in cache_set.values()]

        level = SoALevel.from_cache(cache)
        assert len(cache) == 0, "dematerialize consumes the source sets"
        assert len(level) == sum(len(s) for s in before)
        level.restore(cache)

        after = [[(line.address, line.data, line.dirty)
                  for line in cache_set.values()]
                 for cache_set in cache._sets]
        assert after == before
        restored = [line.data for cache_set in cache._sets
                    for line in cache_set.values()]
        for old, new in zip(payloads, restored):
            assert old is new, "payloads travel by reference"


class TestDecomposeSets:
    @given(addresses=st.lists(st.integers(0, 2**64 - 1), max_size=24),
           geometries=st.lists(
               st.tuples(st.sampled_from([32, 64, 128, 256]),
                         st.sampled_from([1, 2, 8, 64])),
               min_size=1, max_size=3))
    @settings(max_examples=examples(100))
    def test_matches_scalar_formula(self, addresses, geometries):
        assert decompose_sets(addresses, geometries) == [
            [a // line_size % num_sets for a in addresses]
            for line_size, num_sets in geometries]

    def test_oversized_addresses_fall_back(self):
        """Anything numpy u64 cannot hold takes the pure-Python path and
        still decomposes correctly."""
        addresses = [2**70, 5 * LINE, 2**64]
        assert decompose_sets(addresses, [(64, 8)]) == [
            [a // 64 % 8 for a in addresses]]

    def test_empty_and_singleton(self):
        assert decompose_sets([], [(64, 8)]) == [[]]
        assert decompose_sets([128], [(64, 8)]) == [[2]]
