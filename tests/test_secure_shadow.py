"""Anubis-style metadata-cache shadow dump and recovery (lazy scheme)."""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.errors import IntegrityError, RecoveryError
from repro.secure.cache_tree import ShadowRecovery
from repro.secure.schemes import make_scheme
from tests.test_secure_controller import make_controller, payload


def _crashed_lazy_controller(num_writes: int = 20):
    controller = make_controller("lazy")
    for i in range(num_writes):
        controller.write(i * 4096, payload(i))
    controller.flush_metadata()
    controller.drop_volatile_state()
    return controller


class TestShadowDump:
    def test_dump_covers_all_resident_lines_plus_addresses(self):
        controller = make_controller("lazy")
        for i in range(10):
            controller.write(i * 4096, payload(i))
        resident = sum(len(c) for c in controller.metadata_caches)
        before = controller.stats.writes.copy()
        controller.flush_metadata()
        from repro.stats.events import WriteKind
        shadow_writes = controller.stats.writes[WriteKind.SHADOW] \
            - before[WriteKind.SHADOW]
        assert shadow_writes == resident + -(-resident // 8)

    def test_empty_cache_dump_is_a_noop(self):
        controller = make_controller("lazy")
        controller.flush_metadata()
        assert controller.shadow_count == 0
        assert controller.cache_tree_root is None


class TestShadowRecovery:
    def test_restores_metadata_and_data_is_readable(self):
        controller = _crashed_lazy_controller()
        restored = ShadowRecovery(controller).recover()
        assert restored > 0
        for i in range(20):
            assert controller.read(i * 4096) == payload(i)

    def test_restored_lines_are_dirty(self):
        controller = _crashed_lazy_controller()
        ShadowRecovery(controller).recover()
        assert any(line.dirty for line in controller.counter_cache.lines())

    def test_tampered_shadow_image_is_detected(self):
        controller = _crashed_lazy_controller()
        Adversary(controller.nvm).tamper(controller.layout.shadow.block_at(0))
        with pytest.raises(IntegrityError):
            ShadowRecovery(controller).recover()

    def test_recover_without_root_raises(self):
        controller = make_controller("lazy")
        controller.shadow_count = 5
        controller.cache_tree_root = None
        with pytest.raises(RecoveryError):
            ShadowRecovery(controller).recover()

    def test_recover_with_nothing_drained_returns_zero(self):
        controller = make_controller("lazy")
        assert ShadowRecovery(controller).recover() == 0


class TestSchemeFactory:
    def test_known_schemes(self):
        assert make_scheme("lazy").name == "lazy"
        assert make_scheme("eager").name == "eager"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_scheme("bogus")

    def test_writeback_policy_flags(self):
        assert make_scheme("lazy").needs_parent_update_on_writeback()
        assert not make_scheme("eager").needs_parent_update_on_writeback()
