"""The run-time secure memory controller: functional protection, update
schemes, verification, and attack detection at the controller level."""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.config import SystemConfig
from repro.common.errors import IntegrityError
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.secure.controller import SecureMemoryController
from repro.stats.counters import SimStats
from repro.stats.events import MacKind, WriteKind


def make_controller(scheme: str = "lazy", scale: int = 512):
    config = SystemConfig.scaled(scale)
    layout = MemoryLayout(config)
    stats = SimStats()
    nvm = NvmDevice(layout.total_size, stats)
    controller = SecureMemoryController(config, nvm, layout, stats,
                                        scheme=scheme)
    return controller


def payload(tag: int) -> bytes:
    return tag.to_bytes(8, "little") * 8


class TestWriteReadRoundtrip:
    @pytest.mark.parametrize("scheme", ["lazy", "eager"])
    def test_roundtrip(self, scheme):
        controller = make_controller(scheme)
        controller.write(0, payload(1))
        controller.write(4096, payload(2))
        assert controller.read(0) == payload(1)
        assert controller.read(4096) == payload(2)

    def test_overwrite_returns_newest(self):
        controller = make_controller()
        controller.write(0, payload(1))
        controller.write(0, payload(2))
        assert controller.read(0) == payload(2)

    def test_data_in_nvm_is_ciphertext(self):
        controller = make_controller()
        controller.write(0, payload(7))
        assert controller.nvm.peek(0) != payload(7)

    def test_same_plaintext_two_addresses_distinct_ciphertext(self):
        controller = make_controller()
        controller.write(0, payload(7))
        controller.write(64, payload(7))
        assert controller.nvm.peek(0) != controller.nvm.peek(64)

    def test_rewrite_changes_ciphertext(self):
        """Temporal uniqueness: the counter advanced."""
        controller = make_controller()
        controller.write(0, payload(7))
        first = controller.nvm.peek(0)
        controller.write(0, payload(7))
        assert controller.nvm.peek(0) != first

    def test_unwritten_memory_reads_zeros(self):
        controller = make_controller()
        assert controller.read(8192) == bytes(64)


class TestUpdateSchemes:
    def test_lazy_write_leaves_root_stale(self):
        controller = make_controller("lazy")
        root_before = controller.root_mac
        controller.write(0, payload(1))
        assert controller.root_mac == root_before

    def test_eager_write_updates_root(self):
        controller = make_controller("eager")
        root_before = controller.root_mac
        controller.write(0, payload(1))
        assert controller.root_mac != root_before

    def test_lazy_marks_counter_dirty_in_cache(self):
        controller = make_controller("lazy")
        controller.write(0, payload(1))
        cb_address = controller.layout.counter_block_address(0)
        line = controller.counter_cache.lookup(cb_address)
        assert line is not None and line.dirty

    def test_eager_accounts_tree_update_macs(self):
        controller = make_controller("eager")
        controller.write(0, payload(1))
        levels = controller.layout.num_tree_levels
        # counter MAC + one MAC per node level (incl. root register refresh)
        assert controller.stats.macs[MacKind.TREE_UPDATE] == levels + 1

    def test_lazy_accounts_no_tree_update_on_write(self):
        controller = make_controller("lazy")
        controller.write(0, payload(1))
        assert controller.stats.macs[MacKind.TREE_UPDATE] == 0


class TestPersistencePaths:
    def test_eager_flush_then_cold_read(self):
        """Eager: flushing dirty metadata home suffices for recovery."""
        controller = make_controller("eager")
        controller.write(0, payload(1))
        controller.write(16384, payload(2))
        controller.flush_metadata()
        controller.drop_volatile_state()
        assert controller.read(0) == payload(1)
        assert controller.read(16384) == payload(2)

    def test_lazy_crash_without_flush_breaks_verification(self):
        """The paper's premise: lazily-updated metadata lost in a crash makes
        memory unverifiable (hence the metadata-cache flush / Anubis step)."""
        controller = make_controller("lazy")
        controller.write(0, payload(1))
        controller.drop_volatile_state()   # crash with dirty counters lost
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_lazy_flush_dumps_shadow_and_sets_root(self):
        controller = make_controller("lazy")
        controller.write(0, payload(1))
        controller.flush_metadata()
        assert controller.cache_tree_root is not None
        assert controller.shadow_count > 0
        assert controller.stats.writes[WriteKind.SHADOW] > 0
        assert controller.stats.macs[MacKind.CACHE_TREE] > 0


class TestVerificationAgainstAttacks:
    def _flushed_controller(self):
        """An eager controller with everything persisted and caches cold."""
        controller = make_controller("eager")
        controller.write(0, payload(1))
        controller.write(4096, payload(2))
        controller.flush_metadata()
        controller.drop_volatile_state()
        return controller

    def test_data_tamper_detected(self):
        controller = self._flushed_controller()
        Adversary(controller.nvm).tamper(0)
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_data_mac_tamper_detected(self):
        controller = self._flushed_controller()
        Adversary(controller.nvm).tamper(controller.layout.mac_block_address(0))
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_counter_tamper_detected(self):
        controller = self._flushed_controller()
        Adversary(controller.nvm).tamper(
            controller.layout.counter_block_address(0))
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_tree_node_tamper_detected(self):
        controller = self._flushed_controller()
        Adversary(controller.nvm).tamper(
            controller.layout.tree_node_address(1, 0))
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_data_splice_detected(self):
        controller = self._flushed_controller()
        Adversary(controller.nvm).splice(0, 4096)
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_counter_replay_detected(self):
        """Replay a stale-but-authentic counter block: the tree must refuse."""
        controller = make_controller("eager")
        controller.write(0, payload(1))
        controller.flush_metadata()
        adversary = Adversary(controller.nvm)
        stale = adversary.snapshot(controller.layout.counter_block_address(0))
        controller.drop_volatile_state()
        controller.write(0, payload(2))
        controller.flush_metadata()
        controller.drop_volatile_state()
        adversary.replay(controller.layout.counter_block_address(0), stale)
        with pytest.raises(IntegrityError):
            controller.read(0)

    def test_data_replay_detected(self):
        """Replay stale data+MAC pair: the advanced counter must refuse."""
        controller = self._flushed_controller()
        adversary = Adversary(controller.nvm)
        stale_data = adversary.snapshot(0)
        controller.write(0, payload(9))
        controller.flush_metadata()
        controller.drop_volatile_state()
        adversary.replay(0, stale_data)
        with pytest.raises(IntegrityError):
            controller.read(0)


class TestCounterOverflow:
    def test_minor_overflow_triggers_page_reencryption(self):
        controller = make_controller("eager")
        controller.write(0, payload(1))      # neighbour in the same page
        controller.write(64, payload(2))
        ct_before = controller.nvm.peek(0)
        for i in range(130):                 # force minor of slot 1 to wrap
            controller.write(64, payload(i))
        cb = controller.get_counter_line(64).value
        assert cb.major >= 1
        # Neighbour was re-encrypted under the new major counter...
        assert controller.nvm.peek(0) != ct_before
        # ...and still decrypts to the original plaintext.
        assert controller.read(0) == payload(1)
        assert controller.read(64) == payload(129)


class TestVictimBufferConsistency:
    def test_heavy_sparse_traffic_stays_consistent(self):
        """More sparse writes than the counter cache can hold: every fetch,
        eviction cascade, and victim-buffer absorption must preserve
        functional correctness (lazy scheme)."""
        controller = make_controller("lazy")
        config = controller.layout.config
        blocks = (config.security.counter_cache_size // 64) * 4
        addresses = [i * 4096 for i in range(blocks)]
        for i, address in enumerate(addresses):
            controller.write(address, payload(i))
        for i, address in enumerate(addresses):
            assert controller.read(address) == payload(i)

    def test_victim_buffer_is_empty_between_operations(self):
        controller = make_controller("lazy")
        for i in range(64):
            controller.write(i * 4096, payload(i))
        assert len(controller._victims) == 0
