"""Golden sharded traffic: per-shard op counts and NVM images, pinned.

A 4-shard fleet replaying a fixed tenant mix is deterministic shard by
shard: routed op counts, every stats counter, the cache access mix, and
each shard's persisted image are pure functions of (config, scheme, plan).
The exact values for base-eu and horus-dlm at scaled(128) are committed as
``tests/golden/shard_traffic.json``; regenerate deliberately with:

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_shard_traffic.py

Every committed shard entry is additionally cross-checked against the
closed-form replay invariants in :mod:`repro.core.analytic`, so a
regeneration can never silently commit counters the model rejects.
"""

import json
import os
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.core.analytic import validate_replay_counts
from repro.sharding.keys import TenantKeyring
from repro.sharding.pool import make_plan
from repro.sharding.system import ShardedSecureSystem, nvm_image_sha256
from repro.workloads.tenantmix import TenantMixer

GOLDEN_PATH = Path(__file__).parent / "golden" / "shard_traffic.json"
SCALE = 128
NUM_SHARDS = 4
SCHEMES = ("base-eu", "horus-dlm")
TENANTS = 16
TOTAL_OPS = 6000
MASTER_SEED = 87
DRAIN_SEED = 23


def shard_traffic(scheme: str) -> list[dict]:
    config = SystemConfig.scaled(SCALE)
    plan = make_plan(config, NUM_SHARDS, TENANTS, TOTAL_OPS,
                     master_seed=MASTER_SEED)
    fleet = ShardedSecureSystem(config, num_shards=NUM_SHARDS, scheme=scheme,
                                keyring=TenantKeyring(plan.extents()))
    fleet.replay(TenantMixer(plan).mix())
    entries = []
    for observed, system in zip(fleet.observables(), fleet.shards):
        # Replay-time counters first: the analytic cross-check models the
        # replay, not the drain that follows.
        entries.append({
            "ops": observed.ops,
            "op_reads": observed.op_reads,
            "op_writes": observed.op_writes,
            "access_counts": dict(system.hierarchy.access_counts),
            "stats": system.stats.snapshot(),
        })
    # The image is hashed *post-drain*: at this scale the LLC holds the
    # whole working set, so only the drain persists anything observable.
    fleet.crash(seed=DRAIN_SEED)
    for entry, system in zip(entries, fleet.shards):
        entry["nvm_sha256"] = nvm_image_sha256(system)
    return entries


def current() -> dict:
    return {scheme: shard_traffic(scheme) for scheme in SCHEMES}


@pytest.fixture(scope="module")
def golden() -> dict:
    if os.environ.get("REPRO_REGOLDEN") == "1":
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(current(), indent=2, sort_keys=True) + "\n")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenShardTraffic:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fleet_matches_fixture(self, golden, scheme):
        assert shard_traffic(scheme) == golden[scheme], (
            f"4-shard {scheme} traffic drifted from the committed fixture; "
            f"if intentional, regenerate with REPRO_REGOLDEN=1")

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_shard_satisfies_closed_form(self, golden, scheme):
        """Each shard is a solo replay of its routed sub-trace, so each
        committed entry must obey the analytic replay invariants."""
        for entry in golden[scheme]:
            validate_replay_counts(scheme, entry["ops"],
                                   entry["access_counts"], entry["stats"])

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_routing_is_conserved_and_images_distinct(self, golden, scheme):
        entries = golden[scheme]
        assert len(entries) == NUM_SHARDS
        assert sum(entry["ops"] for entry in entries) == TOTAL_OPS
        assert all(entry["ops"] > 0 for entry in entries)
        images = [entry["nvm_sha256"] for entry in entries]
        assert len(set(images)) == NUM_SHARDS

    def test_schemes_persist_different_images(self, golden):
        for ours, theirs in zip(golden["base-eu"], golden["horus-dlm"]):
            assert ours["nvm_sha256"] != theirs["nvm_sha256"]
            # Routing is scheme-independent: same ops either way.
            assert ours["ops"] == theirs["ops"]
