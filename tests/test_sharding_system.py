"""ShardedSecureSystem: routed traffic, tenant isolation, coordinated drain.

The tenant-isolation headline lives here: two tenants at the *same local
address* on different shards.  Under master keys a cross-shard transplant of
one tenant's ciphertext + MAC slot verifies and leaks plaintext; under
per-tenant key schedules the victim shard raises ``IntegrityError``, and the
attack stays invisible to every other shard.
"""

import pytest

from repro.common.constants import MAC_SIZE
from repro.common.errors import ConfigError, IntegrityError
from repro.attacks.adversary import Adversary
from repro.sharding.keys import TenantExtent, TenantKeyring
from repro.sharding.system import ShardedSecureSystem, observe
from repro.workloads.ycsb import ycsb_trace

SECURE_SCHEMES = ("base-lu", "base-eu", "horus-slm", "horus-dlm")

SECRET = b"tenant-zero-secret-payload-0001!" * 2
JUNK = b"tenant-one-innocuous-content-02!" * 2


def two_shard_fleet(config, scheme, tenant_keys):
    """Two shards, one tenant each, both extents at local offset zero.

    ``recovery_mode="writeback"`` keeps the post-recovery hierarchy empty so
    reads must fetch (and verify) the NVM image the adversary can reach —
    ``refill`` would serve them from the restored LLC and hide the medium.
    """
    fleet_probe = ShardedSecureSystem(config, num_shards=2, scheme=scheme)
    shard_size = fleet_probe.router.shard_data_size
    keyring = TenantKeyring((TenantExtent(0, 0, 4 * 64),
                             TenantExtent(1, shard_size, 4 * 64)))
    return ShardedSecureSystem(
        config, num_shards=2, scheme=scheme,
        recovery_mode="writeback",
        keyring=keyring if tenant_keys else None), shard_size


def persist_tenant_blocks(fleet, shard_size):
    """One write per tenant at the same local address, landed *in place* in
    each shard's NVM so subsequent reads verify against the medium.

    Base-EU keeps NVM self-consistent at run time, so the audit pattern
    (controller-level write, flush the MAC metadata, drop volatile state)
    leaves data *and* MAC slots at their home addresses.  The lazy-runtime
    schemes never persist home MAC slots eagerly; for them a full crash +
    writeback-mode recovery is the sequence that parks data lines back in
    NVM (with MAC freshness living in the restored metadata caches)."""
    if fleet.shards[0].scheme == "base-eu":
        for shard, payload in ((0, SECRET), (1, JUNK)):
            controller = fleet.shards[shard].controller
            controller.write(0, payload)
            controller.flush_metadata()
            controller.drop_volatile_state()
        return
    fleet.write(0, SECRET)
    fleet.write(shard_size, JUNK)
    fleet.crash(seed=3)
    for shard in fleet.shards:
        shard.nvm.restore_power()
    fleet.recover()


def transplant(fleet, source_shard, target_shard, local_address=0):
    """Move the source shard's ciphertext AND its MAC slot into the target
    shard at the same local address."""
    layout = fleet.shards[source_shard].layout
    source = Adversary(fleet.shards[source_shard].nvm)
    target = Adversary(fleet.shards[target_shard].nvm)
    block = source.observe(local_address)
    mac_block = layout.mac_block_address(local_address)
    offset = layout.mac_slot(local_address) * MAC_SIZE
    mac = source.observe(mac_block)[offset:offset + MAC_SIZE]
    target.spoof(local_address, block)
    target.graft(mac_block, mac, offset)


class TestRoutedTraffic:
    def test_write_read_roundtrip_across_shards(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=4)
        size = fleet.router.shard_data_size
        for shard in range(4):
            fleet.write(shard * size + 128, bytes([shard + 1]) * 64)
        for shard in range(4):
            assert fleet.read(shard * size + 128) == bytes([shard + 1]) * 64

    def test_replay_returns_global_expected_state(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2)
        trace = ycsb_trace("a", num_ops=300, footprint_blocks=64, seed=9)
        # Spread the trace over both shards by offsetting half of it.
        size = fleet.router.shard_data_size
        shifted = [type(op)(op.kind, op.address + size, op.data)
                   if i % 2 else op for i, op in enumerate(trace)]
        expected = fleet.replay(shifted)
        assert expected
        for address, data in expected.items():
            assert fleet.read(address) == data, hex(address)

    def test_observables_count_routed_ops_per_shard(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2)
        size = fleet.router.shard_data_size
        fleet.write(0, bytes(64))
        fleet.write(size, bytes(64))
        fleet.read(size)
        obs = fleet.observables()
        assert [o.ops for o in obs] == [1, 2]
        assert [o.op_writes for o in obs] == [1, 1]
        assert [o.shard for o in obs] == [0, 1]

    def test_crash_schedules_and_recovery_restores(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2,
                                    scheme="horus-dlm")
        size = fleet.router.shard_data_size
        fleet.write(64, b"a" * 64)
        fleet.write(size + 64, b"b" * 64)
        report = fleet.crash(seed=7)
        assert len(report.reports) == 2
        assert report.schedule.policy == "simultaneous"
        assert report.wall_seconds == \
            max(r.seconds for r in report.reports)
        for shard in fleet.shards:
            shard.nvm.restore_power()
        fleet.recover()
        assert fleet.read(64) == b"a" * 64
        assert fleet.read(size + 64) == b"b" * 64

    def test_cut_after_writes_requires_staggered_policy(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2)
        with pytest.raises(ConfigError, match="staggered"):
            fleet.crash(seed=1, cut_after_writes=10)


class TestTenantIsolation:
    @pytest.mark.parametrize("scheme", SECURE_SCHEMES)
    def test_cross_tenant_transplant_detected_with_tenant_keys(
            self, tiny_config, scheme):
        """Tenant 0's ciphertext + MAC moved to tenant 1's identical local
        address: the victim shard must refuse it."""
        fleet, size = two_shard_fleet(tiny_config, scheme, tenant_keys=True)
        persist_tenant_blocks(fleet, size)
        transplant(fleet, source_shard=0, target_shard=1)
        with pytest.raises(IntegrityError):
            fleet.read(size)

    def test_transplant_leaks_plaintext_under_master_keys(self, tiny_config):
        """The vulnerability tenant keys close: under one master key the
        transplanted block verifies on the victim shard and decrypts to the
        other tenant's secret.

        Base-EU is the scheme where the leak is cleanest: its MAC slots live
        in NVM, so the grafted (ciphertext, MAC) pair is exactly what the
        victim shard verifies against."""
        fleet, size = two_shard_fleet(tiny_config, "base-eu",
                                      tenant_keys=False)
        persist_tenant_blocks(fleet, size)
        transplant(fleet, source_shard=0, target_shard=1)
        assert fleet.read(size) == SECRET

    @pytest.mark.parametrize("scheme", ("base-lu", "horus-slm", "horus-dlm"))
    def test_lazy_schemes_reject_relocation_via_cached_macs(
            self, tiny_config, scheme):
        """Lazy-runtime schemes hold post-recovery MAC freshness in the
        on-chip metadata caches, so even a single-master-key fleet rejects a
        relocated (ciphertext, MAC) pair — the medium's MAC slot is never
        consulted.  A cache artifact, not key isolation: evicted blocks fall
        back to NVM slots, which is what the tenant keys protect."""
        fleet, size = two_shard_fleet(tiny_config, scheme, tenant_keys=False)
        persist_tenant_blocks(fleet, size)
        transplant(fleet, source_shard=0, target_shard=1)
        with pytest.raises(IntegrityError):
            fleet.read(size)

    @pytest.mark.parametrize("scheme", SECURE_SCHEMES)
    def test_attack_is_invisible_to_the_other_shards(self, tiny_config,
                                                     scheme):
        """Tampering inside tenant 1's blocks trips tenant 1's shard only;
        tenant 0's shard still reads cleanly."""
        fleet, size = two_shard_fleet(tiny_config, scheme, tenant_keys=True)
        persist_tenant_blocks(fleet, size)
        Adversary(fleet.shards[1].nvm).tamper(0)
        with pytest.raises(IntegrityError):
            fleet.read(size)
        assert fleet.read(0) == SECRET

    def test_nosec_fleet_rejects_no_transplant(self, tiny_config):
        """nosec keeps no MACs: the transplant lands silently — the contrast
        that motivates the secure schemes' detection."""
        fleet, size = two_shard_fleet(tiny_config, "nosec",
                                      tenant_keys=False)
        persist_tenant_blocks(fleet, size)
        transplant(fleet, source_shard=0, target_shard=1)
        assert fleet.read(size) == SECRET


class TestObservables:
    def test_observe_hashes_the_persistent_image(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2,
                                    scheme="base-eu")
        size = fleet.router.shard_data_size
        fleet.write(0, b"x" * 64)
        fleet.crash(seed=2)
        a, b = fleet.observables()
        assert a.nvm_sha256 != b.nvm_sha256
        assert a.scheme == b.scheme == "base-eu"
        assert a.as_dict()["shard"] == 0

    def test_aggregate_stats_sum_shard_counters(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2,
                                    scheme="base-eu")
        size = fleet.router.shard_data_size
        fleet.write(0, b"x" * 64)
        fleet.write(size, b"y" * 64)
        total = fleet.aggregate_stats()
        per_shard = [shard.stats.total_aes for shard in fleet.shards]
        assert total.total_aes == sum(per_shard)

    def test_observe_solo_system_matches_dataclass_fields(self, tiny_config,
                                                          base_eu_system):
        obs = observe(base_eu_system, shard=3)
        assert obs.shard == 3
        assert obs.ops == obs.op_reads == obs.op_writes == 0
        assert obs.drain_count is None
