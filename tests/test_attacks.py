"""The adversary's toolbox (mechanics; detection is tested with the
controller and recovery suites)."""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.errors import AddressError
from repro.mem.nvm import NvmDevice


@pytest.fixture
def nvm() -> NvmDevice:
    device = NvmDevice(1 << 20)
    device.poke(0, b"\x10" * 64)
    device.poke(64, b"\x20" * 64)
    return device


class TestAdversaryOperations:
    def test_observe_reads_without_accounting(self, nvm):
        adversary = Adversary(nvm)
        assert adversary.observe(0) == b"\x10" * 64
        assert nvm.stats.total_reads == 0

    def test_tamper_flips_selected_byte(self, nvm):
        adversary = Adversary(nvm)
        original = adversary.tamper(0, byte_offset=5, xor_mask=0x0F)
        assert original == b"\x10" * 64
        mutated = nvm.peek(0)
        assert mutated[5] == 0x10 ^ 0x0F
        assert mutated[:5] == b"\x10" * 5

    def test_tamper_rejects_bad_offset(self, nvm):
        with pytest.raises(AddressError):
            Adversary(nvm).tamper(0, byte_offset=64)

    def test_spoof_replaces_content(self, nvm):
        adversary = Adversary(nvm)
        original = adversary.spoof(0, b"\xee" * 64)
        assert original == b"\x10" * 64
        assert nvm.peek(0) == b"\xee" * 64

    def test_snapshot_replay_roundtrip(self, nvm):
        adversary = Adversary(nvm)
        snapshot = adversary.snapshot(0)
        nvm.poke(0, b"\x99" * 64)
        adversary.replay(0, snapshot)
        assert nvm.peek(0) == b"\x10" * 64

    def test_splice_swaps_blocks(self, nvm):
        Adversary(nvm).splice(0, 64)
        assert nvm.peek(0) == b"\x20" * 64
        assert nvm.peek(64) == b"\x10" * 64

    def test_adversary_writes_are_not_accounted(self, nvm):
        adversary = Adversary(nvm)
        adversary.tamper(0)
        adversary.splice(0, 64)
        adversary.spoof(0, bytes(64))
        assert nvm.stats.total_memory_requests == 0


class TestMarkRollback:
    def test_mark_returns_current_content(self, nvm):
        assert Adversary(nvm).mark(0) == b"\x10" * 64

    def test_rollback_restores_marked_content(self, nvm):
        adversary = Adversary(nvm)
        adversary.mark(0)
        nvm.poke(0, b"\x99" * 64)
        displaced = adversary.rollback(0)
        assert displaced == b"\x99" * 64
        assert nvm.peek(0) == b"\x10" * 64

    def test_rollback_without_mark_raises(self, nvm):
        with pytest.raises(AddressError):
            Adversary(nvm).rollback(0)

    def test_rollback_is_per_address(self, nvm):
        adversary = Adversary(nvm)
        adversary.mark(0)
        with pytest.raises(AddressError):
            adversary.rollback(64)

    def test_remark_updates_the_rollback_point(self, nvm):
        adversary = Adversary(nvm)
        adversary.mark(0)
        nvm.poke(0, b"\x55" * 64)
        adversary.mark(0)
        nvm.poke(0, b"\x66" * 64)
        adversary.rollback(0)
        assert nvm.peek(0) == b"\x55" * 64


class TestAttackedLedger:
    """corrupt_block bypasses accounting by design; the attacked_blocks
    ledger is the *oracle's* record of it, so classification can tell an
    attacked block from a write a fault plan lost in flight."""

    def test_mutating_attacks_are_ledgered(self, nvm):
        adversary = Adversary(nvm)
        adversary.tamper(0)
        adversary.spoof(64, bytes(64))
        assert nvm.attacked_blocks == {0, 64}

    def test_splice_ledgers_both_blocks(self, nvm):
        Adversary(nvm).splice(0, 64)
        assert nvm.attacked_blocks == {0, 64}

    def test_replay_and_rollback_are_ledgered(self, nvm):
        adversary = Adversary(nvm)
        snapshot = adversary.snapshot(0)
        adversary.mark(64)
        adversary.replay(0, snapshot)
        adversary.rollback(64)
        assert nvm.attacked_blocks == {0, 64}

    def test_passive_observation_is_not_ledgered(self, nvm):
        adversary = Adversary(nvm)
        adversary.observe(0)
        adversary.snapshot(64)
        adversary.mark(0)
        assert nvm.attacked_blocks == frozenset()

    def test_ledger_is_disjoint_from_lost_writes(self, nvm):
        # An attack is a write the controller never issued; a lost write is
        # one it did.  The ledger never claims simulator accounting.
        Adversary(nvm).tamper(0)
        assert nvm.lost_writes == []
        assert nvm.stats.total_memory_requests == 0
