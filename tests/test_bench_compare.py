"""Unit tests for the perf-regression gate's compare logic.

Regression tests for two silent-failure modes: a zero value in the
baseline used to raise ZeroDivisionError (killing the gate instead of
reporting), and a metric whose kind changed between baseline and current
was compared on whichever fields the *current* kind named — the wrong
field, in the wrong direction.
"""

import pytest

from benchmarks.bench_compare import compare


def _time(normalized: float) -> dict:
    return {"kind": "time", "seconds": normalized * 2.0,
            "normalized": normalized}


def _ratio(value: float) -> dict:
    return {"kind": "ratio", "value": value}


def _run(metrics: dict) -> dict:
    return {"metrics": metrics}


class TestHealthyComparisons:
    def test_within_threshold_passes(self):
        lines, failures = compare(
            _run({"replay": _ratio(3.0), "drain": _time(1.0)}),
            _run({"replay": _ratio(2.9), "drain": _time(1.05)}),
            threshold=0.15)
        assert not failures
        assert len(lines) == 2

    def test_time_regression_fails(self):
        _, failures = compare(
            _run({"drain": _time(1.0)}),
            _run({"drain": _time(1.5)}), threshold=0.15)
        assert len(failures) == 1
        assert "slowed down" in failures[0]

    def test_ratio_regression_fails(self):
        _, failures = compare(
            _run({"replay": _ratio(3.0)}),
            _run({"replay": _ratio(2.0)}), threshold=0.15)
        assert len(failures) == 1
        assert "dropped" in failures[0]

    def test_one_sided_metrics_are_skipped(self):
        lines, failures = compare(
            _run({"old": _time(1.0)}),
            _run({"new": _time(1.0)}), threshold=0.15)
        assert not failures
        assert all(line.startswith("SKIP") for line in lines)


class TestZeroBaseline:
    """A zero in the baseline is a malformed baseline, not a crash."""

    def test_zero_baseline_ratio_fails_instead_of_dividing(self):
        _, failures = compare(
            _run({"replay": _ratio(0.0)}),
            _run({"replay": _ratio(3.0)}), threshold=0.15)
        assert len(failures) == 1
        assert "malformed" in failures[0]

    def test_zero_baseline_time_fails_instead_of_dividing(self):
        _, failures = compare(
            _run({"drain": _time(0.0)}),
            _run({"drain": _time(1.0)}), threshold=0.15)
        assert len(failures) == 1
        assert "malformed" in failures[0]

    def test_zero_baseline_never_raises(self):
        baseline = _run({"a": _ratio(0.0), "b": _time(0.0)})
        current = _run({"a": _ratio(0.0), "b": _time(0.0)})
        lines, failures = compare(baseline, current, threshold=0.15)
        assert len(failures) == 2  # still flagged: the baseline is broken
        assert len(lines) == 2


class TestKindMismatch:
    def test_kind_change_is_a_failure_not_a_silent_compare(self):
        _, failures = compare(
            _run({"replay": _ratio(3.0)}),
            _run({"replay": _time(1.0)}), threshold=0.15)
        assert len(failures) == 1
        assert "changed kind" in failures[0]

    def test_kind_change_does_not_read_mismatched_fields(self):
        # A ratio entry has no "normalized" field; before the guard this
        # raised KeyError (or compared nonsense) depending on direction.
        baseline = _run({"m": _time(1.0)})
        current = _run({"m": _ratio(5.0)})
        lines, failures = compare(baseline, current, threshold=0.15)
        assert len(failures) == 1
        assert lines[0].startswith("FAIL")

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_kind_change_fails_in_both_directions(self, direction):
        a, b = _ratio(2.0), _time(1.0)
        if direction == "backward":
            a, b = b, a
        _, failures = compare(
            _run({"m": a}), _run({"m": b}), threshold=0.15)
        assert failures
