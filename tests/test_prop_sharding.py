"""Property-based sharding invariants.

The router's algebra (route totality, disjointness, the global/local
bijection, split as an order-preserving cross-shard permutation) and the
tenant mixer's seed hygiene must hold for *every* shard count and seed, not
just the handful the example tests pin down — Hypothesis picks the inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from repro.common.rng import spread_seed
from repro.sharding.router import ShardRouter
from repro.workloads.tenantmix import TenantMixer, TenantMixPlan
from repro.workloads.trace import OpKind
from tests.conftest import examples

CONFIG = SystemConfig.scaled(512)
SHARD_COUNTS = (1, 2, 7, 16)

shard_counts = st.sampled_from(SHARD_COUNTS)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def aligned_addresses(router: ShardRouter):
    blocks = router.total_data_size // 64
    return st.integers(min_value=0, max_value=blocks - 1).map(
        lambda block: block * 64)


class TestRouterAlgebra:
    @given(num_shards=shard_counts, data=st.data())
    @settings(max_examples=examples(60), deadline=None)
    def test_route_is_total_and_single_owner(self, num_shards, data):
        router = ShardRouter(CONFIG, num_shards)
        address = data.draw(aligned_addresses(router))
        shard, local = router.route(address)
        owners = [extent.shard for extent in router.extents
                  if extent.contains(address)]
        assert owners == [shard]
        assert 0 <= local < router.shard_data_size

    @given(num_shards=shard_counts, data=st.data())
    @settings(max_examples=examples(60), deadline=None)
    def test_to_global_inverts_route(self, num_shards, data):
        router = ShardRouter(CONFIG, num_shards)
        address = data.draw(aligned_addresses(router))
        shard, local = router.route(address)
        assert router.to_global(shard, local) == address
        assert router.shard_of(address) == shard
        assert router.to_local(address) == local

    @given(num_shards=shard_counts, seed=seeds)
    @settings(max_examples=examples(25), deadline=None)
    def test_split_is_an_order_preserving_partition(self, num_shards, seed):
        router = ShardRouter(CONFIG, num_shards)
        plan = TenantMixPlan(num_tenants=4, total_ops=120,
                             data_size=router.total_data_size,
                             footprint_blocks=8, master_seed=seed)
        trace = TenantMixer(plan).mix()
        parts = router.split(trace)
        assert sum(len(part) for part in parts) == len(trace)
        cursors = [0] * num_shards
        for op in trace:
            shard, local = router.route(op.address)
            routed = parts[shard][cursors[shard]]
            cursors[shard] += 1
            assert (routed.kind, routed.address, routed.data) == \
                (op.kind, local, op.data)


class TestTenantStreams:
    @given(seed=seeds, tenants=st.integers(min_value=1, max_value=12))
    @settings(max_examples=examples(25), deadline=None)
    def test_mix_is_reproducible_and_conserves_ops(self, seed, tenants):
        plan = TenantMixPlan(num_tenants=tenants, total_ops=90,
                             data_size=1 << 20, footprint_blocks=8,
                             master_seed=seed)
        mix = TenantMixer(plan).mix()
        assert mix == TenantMixer(plan).mix()
        assert len(mix) == 90
        for op in mix:
            assert plan.tenant_of(op.address) >= 0
            if op.kind is OpKind.WRITE:
                assert len(op.data) == 64

    @given(seed=seeds)
    @settings(max_examples=examples(25), deadline=None)
    def test_tenant_streams_are_deterministic_slices(self, seed):
        """Each tenant's subsequence of the mix equals its standalone
        trace: interleaving never perturbs a stream."""
        plan = TenantMixPlan(num_tenants=5, total_ops=100,
                             data_size=1 << 20, footprint_blocks=8,
                             master_seed=seed)
        mixer = TenantMixer(plan)
        streams: dict[int, list] = {t: [] for t in range(5)}
        for op in mixer.mix():
            streams[plan.tenant_of(op.address)].append(op)
        for tenant, stream in streams.items():
            assert stream == mixer.tenant_trace(tenant)


class TestSeedSpreading:
    @given(master=seeds, tenant=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=examples(80), deadline=None)
    def test_spread_seed_never_slides_across_masters(self, master, tenant):
        """The seed-collision regression, property form: hashed per-tenant
        seeds must not reproduce under (master±k, tenant∓k) like the old
        additive ``master_seed + i`` scheme did."""
        here = spread_seed(master, "tenant", tenant)
        assert here != spread_seed(master + 1, "tenant", tenant + 1)
        assert here != spread_seed(master + 1, "tenant", max(0, tenant - 1))
        assert here == spread_seed(master, "tenant", tenant)

    @given(master=seeds)
    @settings(max_examples=examples(40), deadline=None)
    def test_spread_seed_labels_are_injective_in_practice(self, master):
        labels = [("tenant", i) for i in range(32)] + \
            [("drain",), ("shard", 0), ("shard", 1)]
        values = [spread_seed(master, *label) for label in labels]
        assert len(set(values)) == len(values)
