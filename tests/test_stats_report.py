"""Report formatting."""

from repro.stats.report import format_breakdown, format_table


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(["name", "count"],
                            [["a", 1], ["long-name", 12345]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert lines[2].index("1") == lines[3].index("12,345")

    def test_formats_ints_with_separators(self):
        text = format_table(["n"], [[1234567]])
        assert "1,234,567" in text

    def test_formats_floats_to_three_places(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatBreakdown:
    def test_includes_title_and_entries(self):
        text = format_breakdown("writes", {"data": 10, "mac": 2})
        assert text.startswith("writes")
        assert "data" in text and "10" in text

    def test_normalization_column(self):
        text = format_breakdown("writes", {"data": 50}, normalize_to=100)
        assert "0.500" in text
