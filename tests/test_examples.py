"""Every shipped example must run to completion (they assert their own
invariants internally, so exit code 0 is a real check)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["256"]),
    ("kvstore_crash_recovery.py", []),
    ("attack_detection.py", []),
    ("battery_sizing.py", ["256"]),
    ("persistence_spectrum.py", ["a", "800"]),
    ("persistent_bank.py", []),
    ("platform_study.py", ["256"]),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs_clean(script, args):
    path = EXAMPLES / script
    assert path.exists(), f"example {script} missing"
    proc = subprocess.run([sys.executable, str(path), *args],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they show"


def test_every_example_file_is_exercised():
    """No example may silently rot outside this test matrix."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert on_disk == covered
