"""Command-line interface and cache hit-rate collection."""

import pytest

from repro.cli import main
from repro.core.system import SecureEpdSystem
from repro.stats.hitrate import collect_cache_stats, hit_rate_rows


class TestCliSubcommands:
    def test_info(self, capsys):
        assert main(["info", "--scale", "128"]) == 0
        out = capsys.readouterr().out
        assert "worst-case flushed blocks" in out
        assert "horus-dlm" in out
        assert "chv" in out

    @pytest.mark.parametrize("scheme", ["nosec", "horus-dlm"])
    def test_simulate(self, capsys, scheme):
        assert main(["simulate", "--scheme", scheme,
                     "--scale", "512"]) == 0
        out = capsys.readouterr().out
        assert "memory requests" in out
        assert "cache hit rates" in out

    def test_audit_clean(self, capsys):
        assert main(["audit", "--scale", "256", "--blocks", "4"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_audit_tampered_fails(self, capsys):
        assert main(["audit", "--scale", "256", "--blocks", "4",
                     "--tamper", "0x1000"]) == 1
        assert "FAILURES" in capsys.readouterr().out

    def test_shards_fleet_summary(self, capsys):
        assert main(["shards", "--shards", "2", "--scheme", "base-eu",
                     "--scale", "128", "--tenants", "4", "--ops", "200",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 shards x base-eu" in out
        assert "fleet totals: 200 routed ops" in out
        assert "simultaneous drain wall" in out

    def test_shards_staggered_policy(self, capsys):
        assert main(["shards", "--shards", "3", "--scheme", "horus-dlm",
                     "--scale", "128", "--tenants", "6", "--ops", "120",
                     "--jobs", "1", "--drain-policy", "staggered"]) == 0
        assert "staggered drain wall" in capsys.readouterr().out

    def test_no_subcommand_runs_experiments(self, capsys):
        assert main(["fig16", "--scale", "128"]) == 0
        assert "fig16" in capsys.readouterr().out

    def test_experiments_subcommand_forwards(self, capsys):
        assert main(["experiments", "fig16", "--scale", "128"]) == 0
        assert "fig16" in capsys.readouterr().out


class TestHitRates:
    def test_collects_all_six_caches_for_secure_scheme(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        names = {rate.name for rate in collect_cache_stats(system)}
        assert names == {"L1", "L2", "LLC", "counter-cache", "mac-cache",
                         "tree-cache"}

    def test_nosec_has_only_data_caches(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        assert len(collect_cache_stats(system)) == 3

    def test_rates_reflect_activity(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        system.write(0, bytes(64))
        system.read(0)
        rates = {r.name: r for r in collect_cache_stats(system)}
        assert rates["L1"].hits >= 1
        assert rates["L1"].hit_rate > 0

    def test_rows_shape(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        rows = hit_rate_rows(system)
        assert all(len(row) == 4 for row in rows)

    def test_empty_cache_rate_is_zero(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        assert all(r.hit_rate == 0.0 for r in collect_cache_stats(system))
