"""Energy model and battery sizing (Tables II & III)."""

import pytest

from repro.energy.battery import battery_volume_cm3, estimate_battery
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.epd.drain import DrainReport
from repro.stats.counters import SimStats
from repro.stats.events import ReadKind, WriteKind


def _report(writes: int, reads: int, seconds: float) -> DrainReport:
    stats = SimStats()
    stats.record_write(WriteKind.DATA, writes)
    stats.record_read(ReadKind.COUNTER, reads)
    return DrainReport(scheme="test", flushed_blocks=writes,
                       metadata_blocks=0, stats=stats,
                       cycles=int(seconds * 4e9), seconds=seconds)


class TestEnergyModel:
    def test_paper_energy_constants(self):
        model = EnergyModel()
        assert model.write_energy_j == pytest.approx(531.8e-9)
        assert model.read_energy_j == pytest.approx(5.5e-9)

    def test_breakdown_arithmetic(self):
        model = EnergyModel(processor_power_w=10.0, write_energy_j=1e-6,
                            read_energy_j=1e-7)
        breakdown = model.breakdown(_report(writes=1000, reads=500,
                                            seconds=2.0))
        assert breakdown.processor_j == pytest.approx(20.0)
        assert breakdown.nvm_write_j == pytest.approx(1e-3)
        assert breakdown.nvm_read_j == pytest.approx(5e-5)
        assert breakdown.total_j == pytest.approx(20.0 + 1e-3 + 5e-5)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            EnergyModel(processor_power_w=-1)

    def test_table2_base_lu_write_energy_reproduces(self):
        """Paper Table II: 0.84 J of write energy implies ~1.58 M writes —
        our full-scale Base-LU lands in that range (checked in benchmarks);
        here we verify the arithmetic direction."""
        model = EnergyModel()
        joules = model.breakdown(_report(1_580_000, 0, 1.0)).nvm_write_j
        assert joules == pytest.approx(0.84, abs=0.01)


class TestBattery:
    def test_volume_formula(self):
        # 3600 J = 1 Wh; at 1e-4 Wh/cm^3 that is 10,000 cm^3.
        assert battery_volume_cm3(3600.0, 1e-4) == pytest.approx(10000.0)

    def test_rejects_non_positive_density(self):
        with pytest.raises(ValueError):
            battery_volume_cm3(1.0, 0.0)

    def test_paper_table3_base_lu(self):
        """11.07 J -> 30.7 cm^3 SuperCap / 0.31 cm^3 Li-thin (Table III)."""
        breakdown = EnergyBreakdown("base-lu", 10.21, 0.84, 0.008)
        estimate = estimate_battery(breakdown)
        assert estimate.supercap_cm3 == pytest.approx(30.7, abs=0.1)
        assert estimate.li_thin_cm3 == pytest.approx(0.31, abs=0.01)

    def test_supercap_is_100x_li_thin(self):
        estimate = estimate_battery(EnergyBreakdown("x", 1.0, 0.1, 0.01))
        assert estimate.supercap_cm3 / estimate.li_thin_cm3 == \
            pytest.approx(100.0)


class TestEndToEndEnergy:
    def test_drain_energy_ordering(self, tiny_config):
        """Baselines must cost several times the Horus energy."""
        from repro.core.system import SecureEpdSystem
        model = EnergyModel()
        totals = {}
        for scheme in ("base-lu", "horus-slm"):
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            system.fill_worst_case(seed=1)
            totals[scheme] = model.breakdown(system.crash(seed=2)).total_j
        assert totals["base-lu"] > 3 * totals["horus-slm"]

    def test_processor_energy_tracks_drain_time(self, tiny_config):
        from repro.core.system import SecureEpdSystem
        model = EnergyModel()
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        breakdown = model.breakdown(report)
        assert breakdown.processor_j == pytest.approx(
            model.processor_power_w * report.seconds)
