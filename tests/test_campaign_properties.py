"""The corruption axiom, property-style: arbitrary tampering is never silent.

The verified-storage shape of the claim: for *any* written NVM block — data
payload, MAC, counter, tree node, CHV slot, or shadow-dump line — and *any*
single-byte corruption (offset × xor mask), a secure scheme's recovery
either restores every line bit-exact or raises a typed
``IntegrityError``/``RecoveryError``.  Wrong bytes without an exception
(``silent-corruption``) must be unreachable for every input, not just the
crash matrix's curated cells.

Example budgets follow the ci/nightly profiles from ``tests/conftest.py``.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.attacks.adversary import Adversary
from repro.campaigns.classify import (
    DETECTED,
    LOST_UNPROTECTED,
    RECOVERED,
    SILENT,
    run_recovery_and_sweep,
)
from repro.campaigns.engine import DRAIN_SEED, fill_lines
from repro.core.chv import MAC_GROUP_DLM, MAC_GROUP_SLM, ChvLayout, VaultRotation
from repro.core.system import SecureEpdSystem

from tests.conftest import examples

LINES = 12

SECURE_VARIANTS = (
    ("base-lu", False),
    ("base-eu", False),
    ("horus-slm", False),
    ("horus-slm", True),
    ("horus-dlm", False),
    ("horus-dlm", True),
)

HORUS_VARIANTS = tuple(v for v in SECURE_VARIANTS
                       if v[0].startswith("horus"))

REGION_NAMES = ("data", "counters", "macs", "tree", "chv", "shadow")


def _crashed_system(config, scheme, rotate):
    system = SecureEpdSystem(config, scheme=scheme, rotate_vault=rotate)
    expected = fill_lines(system, LINES)
    system.crash(seed=DRAIN_SEED)
    system.nvm.restore_power()
    return system, expected


def _written_blocks(system):
    return sorted(system.nvm.backend.written_addresses())


class TestArbitraryCorruptionNeverSilent:
    @given(data=st.data())
    @settings(max_examples=examples(60))
    def test_any_written_block_any_byte_any_mask(self, tiny_config, data):
        scheme, rotate = data.draw(st.sampled_from(SECURE_VARIANTS))
        system, expected = _crashed_system(tiny_config, scheme, rotate)
        written = _written_blocks(system)
        assume(written)
        address = data.draw(st.sampled_from(written))
        offset = data.draw(st.integers(min_value=0, max_value=63))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        Adversary(system.nvm).tamper(address, byte_offset=offset,
                                     xor_mask=mask)
        outcome, detail = run_recovery_and_sweep(system, expected)
        assert outcome != SILENT, (scheme, rotate, hex(address), offset,
                                   mask, detail)
        assert outcome in (RECOVERED, DETECTED)

    @given(data=st.data())
    @settings(max_examples=examples(40))
    def test_kind_targeted_corruption(self, tiny_config, data):
        """Aim at a specific block kind (the issue's {payload, MAC,
        counter, CHV, shadow} axiom) rather than any written block."""
        scheme, rotate = data.draw(st.sampled_from(SECURE_VARIANTS))
        region_name = data.draw(st.sampled_from(REGION_NAMES))
        system, expected = _crashed_system(tiny_config, scheme, rotate)
        region = next(r for r in system.layout.regions
                      if r.name == region_name)
        targets = [a for a in _written_blocks(system) if region.contains(a)]
        assume(targets)
        address = data.draw(st.sampled_from(targets))
        offset = data.draw(st.integers(min_value=0, max_value=63))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        Adversary(system.nvm).tamper(address, byte_offset=offset,
                                     xor_mask=mask)
        outcome, detail = run_recovery_and_sweep(system, expected)
        assert outcome in (RECOVERED, DETECTED), (
            scheme, rotate, region_name, hex(address), offset, mask, detail)

    @given(data=st.data())
    @settings(max_examples=examples(30))
    def test_splice_of_written_blocks_never_silent(self, tiny_config, data):
        scheme, rotate = data.draw(st.sampled_from(SECURE_VARIANTS))
        system, expected = _crashed_system(tiny_config, scheme, rotate)
        written = _written_blocks(system)
        assume(len(written) >= 2)
        first = data.draw(st.sampled_from(written))
        second = data.draw(st.sampled_from(
            [a for a in written if a != first]))
        Adversary(system.nvm).splice(first, second)
        outcome, detail = run_recovery_and_sweep(system, expected)
        assert outcome in (RECOVERED, DETECTED), (
            scheme, rotate, hex(first), hex(second), detail)


class TestChvCorruptionAlwaysDetected:
    """Stronger than never-silent: every *live* vault slot is read and
    verified by recovery, so corrupting one must always be DETECTED."""

    @given(data=st.data())
    @settings(max_examples=examples(40))
    def test_any_live_vault_slot_any_byte(self, tiny_config, data):
        scheme, rotate = data.draw(st.sampled_from(HORUS_VARIANTS))
        system, expected = _crashed_system(tiny_config, scheme, rotate)
        dc = system.drain_counter
        assume(dc is not None and dc.ephemeral > 0)
        position = data.draw(st.integers(min_value=0,
                                         max_value=dc.ephemeral - 1))
        offset = data.draw(st.integers(min_value=0, max_value=63))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        chv = ChvLayout.for_layout(system.layout)
        group = (MAC_GROUP_DLM if scheme == "horus-dlm"
                 else MAC_GROUP_SLM)
        rotation = VaultRotation.for_episode(
            chv, dc.value - dc.ephemeral, rotate, group_align=group)
        address = chv.data_address(rotation.data_slot(position))
        Adversary(system.nvm).tamper(address, byte_offset=offset,
                                     xor_mask=mask)
        outcome, detail = run_recovery_and_sweep(system, expected)
        assert outcome == DETECTED, (scheme, rotate, position, offset,
                                     mask, detail)
        assert detail.startswith("recover:")


class TestNosecIsLostNotSilent:
    """nosec has no integrity machinery: attacks land, but classification
    must call that ``lost-unprotected`` — SILENT is reserved for schemes
    that *claim* protection."""

    @given(data=st.data())
    @settings(max_examples=examples(30))
    def test_nosec_data_corruption_is_lost_unprotected(self, tiny_config,
                                                       data):
        system, expected = _crashed_system(tiny_config, "nosec", False)
        victims = [a for a in _written_blocks(system) if a in expected]
        assume(victims)
        address = data.draw(st.sampled_from(victims))
        offset = data.draw(st.integers(min_value=0, max_value=63))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        Adversary(system.nvm).tamper(address, byte_offset=offset,
                                     xor_mask=mask)
        outcome, detail = run_recovery_and_sweep(system, expected)
        assert outcome == LOST_UNPROTECTED
        # The attacked-blocks ledger splits forensics in the detail line.
        assert "attacked" in detail

    @given(data=st.data())
    @settings(max_examples=examples(20))
    def test_nosec_never_classifies_as_silent(self, tiny_config, data):
        system, expected = _crashed_system(tiny_config, "nosec", False)
        written = _written_blocks(system)
        assume(written)
        address = data.draw(st.sampled_from(written))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        Adversary(system.nvm).tamper(address, xor_mask=mask)
        outcome, _detail = run_recovery_and_sweep(system, expected)
        assert outcome in (RECOVERED, LOST_UNPROTECTED)


class TestTenantSpliceNeverSilent:
    """The cross-tenant transplant cells: for every secure variant and
    every applicable injection window, moving one tenant's (ciphertext,
    MAC slot) pair into another tenant's range is never silent."""

    @given(data=st.data())
    @settings(max_examples=examples(12), deadline=None)
    def test_tenant_splice_cell_any_window(self, tiny_config, data):
        from repro.campaigns.engine import run_campaign_cell
        from repro.campaigns.scenarios import (
            WINDOWS,
            Scenario,
            applicability,
        )

        scheme, rotate = data.draw(st.sampled_from(SECURE_VARIANTS))
        window = data.draw(st.sampled_from(WINDOWS))
        scenario = Scenario("splice", "tenant")
        assume(applicability(scheme, scenario, window) is None)
        cell = run_campaign_cell(tiny_config, scheme, rotate, scenario,
                                 window)
        assert cell.outcome != SILENT, (scheme, rotate, window, cell.detail)

    def test_pre_recovery_tenant_splice_detected_on_base_eu(self,
                                                            tiny_config):
        """Base-EU has no recovery to repair the medium, so the relocated
        pair must be *detected* at first use, not merely not-silent."""
        from repro.campaigns.engine import run_campaign_cell
        from repro.campaigns.scenarios import PRE_RECOVERY, Scenario

        cell = run_campaign_cell(tiny_config, "base-eu", False,
                                 Scenario("splice", "tenant"), PRE_RECOVERY)
        assert cell.outcome == DETECTED, cell.detail
