"""The sharding correctness headline: an N-shard run is byte-identical,
shard for shard, to N independent solo runs over route-filtered sub-traces.

``run_pooled(spec, jobs=1)`` is the solo side (each shard rebuilt from
scratch through :func:`repro.sharding.pool.run_shard`), ``run_inprocess``
the sharded facade; equality is field-by-field over
:class:`~repro.sharding.system.ShardObservables`, which hashes the whole
persisted NVM image and snapshots every stats counter and TCB register.
"""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.sharding.pool import (
    ShardRunSpec,
    make_plan,
    run_inprocess,
    run_pooled,
    run_shard,
)

DRAIN_SEED = 29


def spec_for(config, num_shards, scheme, *, ops=600, tenants=8, seed=13,
             tenant_keys=True):
    plan = make_plan(config, num_shards, tenants, ops, master_seed=seed)
    return ShardRunSpec(config=config, num_shards=num_shards, scheme=scheme,
                        plan=plan, drain_seed=DRAIN_SEED,
                        tenant_keys=tenant_keys)


class TestShardVsSoloIdentity:
    @pytest.mark.parametrize("scheme", ("base-eu", "horus-dlm"))
    @pytest.mark.parametrize("num_shards", (2, 7))
    def test_sharded_run_equals_solo_runs(self, tiny_config, num_shards,
                                          scheme):
        spec = spec_for(tiny_config, num_shards, scheme)
        solo = run_pooled(spec, jobs=1)
        fleet = run_inprocess(spec)
        assert tuple(run.observables for run in solo) == fleet

    def test_identity_holds_without_tenant_keys(self, tiny_config):
        spec = spec_for(tiny_config, 2, "horus-dlm", tenant_keys=False)
        solo = run_pooled(spec, jobs=1)
        assert tuple(run.observables for run in solo) == run_inprocess(spec)

    def test_tenant_keys_change_the_persisted_image(self, tiny_config):
        keyed = run_inprocess(spec_for(tiny_config, 2, "horus-dlm"))
        master = run_inprocess(spec_for(tiny_config, 2, "horus-dlm",
                                        tenant_keys=False))
        assert [o.nvm_sha256 for o in keyed] != \
            [o.nvm_sha256 for o in master]
        # Same routed traffic either way: only the images differ.
        assert [o.ops for o in keyed] == [o.ops for o in master]


class TestPooledExecution:
    def test_process_pool_matches_inline(self, tiny_config):
        """Workers rebuild their shard's world from the picklable spec;
        the fan-out must not perturb a single observable bit."""
        spec = spec_for(tiny_config, 2, "horus-dlm", ops=300)
        assert run_pooled(spec, jobs=2) == run_pooled(spec, jobs=1)

    def test_single_shard_fleet_runs_inline(self, tiny_config):
        spec = spec_for(tiny_config, 1, "base-eu", ops=200)
        results = run_pooled(spec)
        assert len(results) == 1
        assert results[0].observables.ops == 200

    def test_run_shard_rejects_mismatched_plan(self, tiny_config):
        spec = spec_for(tiny_config, 2, "base-eu")
        wrong = ShardRunSpec(config=spec.config, num_shards=4,
                             scheme="base-eu", plan=spec.plan)
        with pytest.raises(ConfigError, match="data"):
            run_shard(wrong, 0)

    def test_run_shard_rejects_bad_index(self, tiny_config):
        spec = spec_for(tiny_config, 2, "base-eu")
        with pytest.raises(ConfigError, match="outside fleet"):
            run_shard(spec, 2)

    def test_run_pooled_rejects_bad_jobs(self, tiny_config):
        with pytest.raises(ConfigError, match="jobs"):
            run_pooled(spec_for(tiny_config, 2, "base-eu"), jobs=0)


class TestHeadlineDifferential:
    def test_four_shard_100k_op_mixed_tenant_differential(self):
        """The acceptance headline: 4 shards, 100k mixed-tenant ops at
        scaled(128), sharded vs solo byte-identical per shard."""
        config = SystemConfig.scaled(128)
        plan = make_plan(config, 4, 32, 100_000, master_seed=87)
        spec = ShardRunSpec(config=config, num_shards=4, scheme="horus-dlm",
                            plan=plan, drain_seed=87)
        solo = run_pooled(spec, jobs=1)
        fleet = run_inprocess(spec)
        assert sum(run.observables.ops for run in solo) == 100_000
        for run, observed in zip(solo, fleet):
            assert run.observables == observed, observed.shard
