"""The adversarial campaign engine: grid shape, invariants, and mechanics.

The module-scoped grid fixture runs the full default lattice once
(variants × scenarios × windows at tiny scale); every invariant test reads
from it.  Mechanics (the injection hooks, the cache, the parallel path, the
CLI) get their own focused cells.
"""

import pytest

from repro.campaigns import (
    CAMPAIGN_LINES,
    DEFAULT_SCENARIOS,
    DETECTED,
    FAULT_CLASSES,
    LOST_UNPROTECTED,
    MID_DRAIN,
    MID_RECOVERY,
    MID_REPLAY,
    RECOVERED,
    SCHEME_VARIANTS,
    SILENT,
    WINDOWS,
    CampaignCell,
    Scenario,
    applicability,
    render_markdown,
    run_campaign,
    run_campaign_cell,
    variant_name,
)
from repro.campaigns.__main__ import main as campaigns_main
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.faults.matrix import run_matrix
from repro.faults.plan import AdversaryAt, FaultPlan

CELL_FLOOR = 200


@pytest.fixture(scope="module")
def grid(tiny_config):
    return run_campaign(tiny_config)


class TestGridShape:
    def test_grid_meets_the_cell_floor(self, grid):
        assert len(grid.cells) >= CELL_FLOOR

    def test_lattice_fully_accounted(self, grid):
        # Every combination is a cell or a skip-with-reason, never dropped.
        lattice = (len(SCHEME_VARIANTS) * len(DEFAULT_SCENARIOS)
                   * len(WINDOWS))
        assert grid.lattice == lattice
        assert len(grid.cells) + len(grid.skips) == lattice

    def test_no_duplicate_coordinates(self, grid):
        coords = [(c.scheme, c.scenario, c.window) for c in grid.cells]
        coords += [(s.scheme, s.scenario, s.window) for s in grid.skips]
        assert len(coords) == len(set(coords))

    def test_every_variant_appears(self, grid):
        schemes = {c.scheme for c in grid.cells}
        for scheme, rotate in SCHEME_VARIANTS:
            assert variant_name(scheme, rotate) in schemes

    def test_every_window_appears(self, grid):
        assert {c.window for c in grid.cells} == set(WINDOWS)

    def test_every_scenario_appears(self, grid):
        assert ({c.scenario for c in grid.cells}
                == {s.name for s in DEFAULT_SCENARIOS})

    def test_every_skip_has_a_reason(self, grid):
        assert all(skip.reason for skip in grid.skips)

    def test_grid_dimensions_meet_the_issue_floor(self):
        # >=5 scheme variants x >=5 attack/fault actions x >=5 windows.
        assert len(SCHEME_VARIANTS) >= 5
        actions = {s.action for s in DEFAULT_SCENARIOS}
        assert len(actions) >= 5
        assert len(WINDOWS) >= 5


class TestZeroSilentCorruption:
    def test_no_silent_cells_anywhere(self, grid):
        assert grid.silent_cells() == ()

    def test_outcome_counts_add_up(self, grid):
        counts = grid.outcome_counts()
        assert sum(counts.values()) == len(grid.cells)
        assert counts.get(SILENT, 0) == 0

    def test_secure_schemes_detect_or_recover(self, grid):
        for cell in grid.cells:
            if cell.scheme.startswith("nosec"):
                continue
            assert cell.outcome in (DETECTED, RECOVERED), cell

    def test_nosec_never_detects(self, grid):
        nosec = [c for c in grid.cells if c.scheme == "nosec"]
        assert nosec
        for cell in nosec:
            assert cell.outcome in (RECOVERED, LOST_UNPROTECTED), cell

    def test_nosec_loses_something_somewhere(self, grid):
        # The motivation column: without integrity machinery, attacks land.
        nosec = [c for c in grid.cells if c.scheme == "nosec"]
        assert any(c.outcome == LOST_UNPROTECTED for c in nosec)

    def test_every_secure_variant_detects_somewhere(self, grid):
        for scheme, rotate in SCHEME_VARIANTS:
            if scheme == "nosec":
                continue
            name = variant_name(scheme, rotate)
            assert any(c.scheme == name and c.outcome == DETECTED
                       for c in grid.cells), name


class TestDetectionCoverage:
    """Representative strong cells: the attacks the schemes exist to stop."""

    def test_chv_attacks_detected_across_crash_window(self, grid):
        for cell in grid.cells:
            if (cell.scheme.startswith("horus")
                    and cell.scenario.endswith("-chv")
                    and cell.window in ("pre-recovery", "mid-recovery")):
                assert cell.outcome == DETECTED, cell

    def test_shadow_tamper_detected_by_base_lu(self, grid):
        cells = [c for c in grid.cells
                 if c.scenario == "tamper-shadow"
                 and c.window == "pre-recovery"]
        assert cells and all(c.outcome == DETECTED for c in cells)

    def test_mid_drain_faults_match_fault_classes(self, grid):
        fault_cells = {(c.scheme, c.scenario) for c in grid.cells
                       if c.scenario in FAULT_CLASSES}
        expected = {(variant_name(s, r), f)
                    for s, r in SCHEME_VARIANTS for f in FAULT_CLASSES}
        assert fault_cells == expected

    def test_runtime_detection_happens_mid_replay(self, grid):
        # At least one mid-replay attack is caught *before* the crash, by
        # the epoch's own reads — the strongest detection channel.
        runtime = [c for c in grid.cells
                   if c.window == MID_REPLAY
                   and c.detail.startswith("runtime:")]
        assert runtime
        for cell in runtime:
            assert cell.outcome == DETECTED


class TestApplicability:
    def test_fault_scenarios_only_mid_drain(self):
        scenario = Scenario("power-cut")
        for window in WINDOWS:
            reason = applicability("horus-slm", scenario, window)
            assert (reason is None) == (window == MID_DRAIN)

    def test_nosec_has_no_metadata_to_attack(self):
        assert applicability("nosec", Scenario("tamper", "mac"),
                             "pre-recovery")
        assert applicability("nosec", Scenario("tamper", "counter"),
                             "pre-recovery")

    def test_chv_is_horus_only(self):
        scenario = Scenario("tamper", "chv")
        assert applicability("base-lu", scenario, "pre-recovery")
        assert applicability("nosec", scenario, "pre-recovery")
        assert applicability("horus-slm", scenario, "pre-recovery") is None

    def test_shadow_is_base_lu_only(self):
        scenario = Scenario("tamper", "shadow")
        assert applicability("horus-slm", scenario, "pre-recovery")
        assert applicability("base-lu", scenario, "pre-recovery") is None

    def test_mid_recovery_needs_a_recovery_phase(self):
        scenario = Scenario("tamper", "data")
        assert applicability("nosec", scenario, MID_RECOVERY)
        assert applicability("base-eu", scenario, MID_RECOVERY)
        assert applicability("base-lu", scenario, MID_RECOVERY) is None
        assert applicability("horus-dlm", scenario, MID_RECOVERY) is None

    def test_run_campaign_cell_rejects_inapplicable(self, tiny_config):
        with pytest.raises(ConfigError, match="not applicable"):
            run_campaign_cell(tiny_config, "nosec", False,
                              Scenario("tamper", "chv"), "pre-recovery")

    def test_run_campaign_rejects_non_functional_config(self, tiny_config):
        from dataclasses import replace
        config = replace(
            tiny_config,
            security=replace(tiny_config.security, functional=False))
        with pytest.raises(ConfigError, match="functional"):
            run_campaign(config)


class TestMatrixParity:
    """One classification path: the 28-cell crash matrix delegates to the
    campaign engine and must report exactly its historical cells."""

    def test_matrix_cells_reproduced_through_engine(self, tiny_config):
        cells = run_matrix(tiny_config, lines=48)
        assert len(cells) == len(SCHEME_VARIANTS) * len(FAULT_CLASSES)
        assert all(not c.silent for c in cells)
        for cell in cells:
            if cell.scheme == "nosec":
                assert cell.outcome == LOST_UNPROTECTED
            else:
                assert cell.outcome in (DETECTED, RECOVERED)

    def test_horus_matrix_detects_at_recover(self, tiny_config):
        cells = run_matrix(tiny_config, lines=48,
                           variants=(("horus-slm", False),
                                     ("horus-dlm", False)))
        for cell in cells:
            assert cell.outcome == DETECTED
            assert cell.detail.startswith("recover:"), cell


class TestParallelAndCache:
    def test_jobs_parallel_matches_serial(self, tiny_config, grid):
        parallel = run_campaign(tiny_config, jobs=2)
        assert parallel.cells == grid.cells
        assert parallel.skips == grid.skips

    def test_cache_roundtrip_is_identical(self, tiny_config, grid,
                                          tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "campaign-test")
        cold = ResultCache(root=tmp_path)
        first = run_campaign(tiny_config, cache=cold)
        assert cold.stores == len(first.cells)
        warm = ResultCache(root=tmp_path)
        second = run_campaign(tiny_config, cache=warm)
        assert warm.hits == len(second.cells)
        assert warm.misses == 0
        assert second.cells == first.cells == grid.cells

    def test_refresh_recomputes_but_stores(self, tiny_config, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "campaign-test")
        scenarios = (Scenario("tamper", "data"),)
        windows = ("pre-recovery",)
        variants = (("horus-slm", False),)
        cache = ResultCache(root=tmp_path)
        run_campaign(tiny_config, variants, scenarios, windows, cache=cache)
        refresh = ResultCache(root=tmp_path, refresh=True)
        run_campaign(tiny_config, variants, scenarios, windows,
                     cache=refresh)
        assert refresh.hits == 0
        assert refresh.stores == 1


class TestInjectionMechanics:
    def test_adversary_at_fires_exactly_once(self):
        fired = []
        fault = AdversaryAt(at_write=2, action=lambda: fired.append(True))
        plan = FaultPlan([fault])
        for _ in range(5):
            plan.filter_write(0, b"\x01" * 64, b"\x00" * 64)
        assert fired == [True]
        events = [e for e in plan.events if e.fault == "adversary"]
        assert len(events) == 1
        assert events[0].effect == "attacked"

    def test_adversary_at_does_not_filter_the_write(self):
        fault = AdversaryAt(at_write=0, action=lambda: None)
        plan = FaultPlan([fault])
        persisted = plan.filter_write(0, b"\x01" * 64, b"\x00" * 64)
        assert persisted == b"\x01" * 64

    def test_adversary_at_rejects_negative_index(self):
        with pytest.raises(ConfigError):
            AdversaryAt(at_write=-1, action=lambda: None)

    def test_op_hook_observes_reads_and_writes(self, horus_system):
        seen = []
        controller = horus_system.controller
        controller.op_hook = lambda kind, address: seen.append(
            (kind, address))
        horus_system.controller.write(0, b"\x42" * 64)
        horus_system.controller.read(0)
        controller.op_hook = None
        assert seen == [("w", 0), ("r", 0)]

    def test_op_hook_forces_scalar_batch_path(self, horus_system):
        controller = horus_system.controller
        controller.op_hook = lambda kind, address: None
        try:
            # The batch path would bypass per-op hook firing; with a hook
            # set it must fall back to the scalar loop.
            results = controller.run_ops_batch(
                [("w", 0, b"\x11" * 64), ("r", 0, None)])
        finally:
            controller.op_hook = None
        assert results == [None, b"\x11" * 64]

    def test_campaign_cell_has_stable_coordinates(self, tiny_config):
        cell = run_campaign_cell(tiny_config, "horus-slm", False,
                                 Scenario("tamper", "chv"), "pre-recovery")
        assert cell == CampaignCell("horus-slm", "tamper-chv",
                                    "pre-recovery", DETECTED, cell.detail)
        assert cell.detail.startswith("recover:")

    def test_attack_cells_need_enough_lines(self, tiny_config):
        with pytest.raises(ConfigError, match="4 lines"):
            run_campaign_cell(tiny_config, "horus-slm", False,
                              Scenario("tamper", "data"), "pre-recovery",
                              lines=2)


class TestRendering:
    def test_render_markdown_has_a_row_per_cell(self, grid):
        table = render_markdown(grid)
        rows = table.splitlines()
        assert len(rows) == len(grid.cells) + 2
        assert rows[0].startswith("| scheme | scenario | window ")


class TestCli:
    def test_cli_runs_and_enforces_the_invariant(self, capsys):
        exit_code = campaigns_main(
            ["--scale", "512", "--no-cache", "--jobs", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "zero silent-corruption cells" in out
        assert "skipped" in out

    def test_cli_markdown_table(self, capsys):
        exit_code = campaigns_main(
            ["--scale", "512", "--no-cache", "--markdown"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "| scheme | scenario | window |" in out

    def test_cli_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            campaigns_main(["--jobs", "0"])
        with pytest.raises(SystemExit):
            campaigns_main(["--lines", "2"])

    def test_default_lines_constant_is_sane(self):
        assert CAMPAIGN_LINES >= 4
