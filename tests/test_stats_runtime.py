"""Run-time performance model and hierarchy access accounting."""

from collections import Counter

import pytest

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from repro.stats.counters import SimStats
from repro.stats.events import MacKind, ReadKind
from repro.stats.runtime import RuntimePerfModel
from repro.workloads.generators import kvstore_trace


@pytest.fixture(scope="module")
def model() -> RuntimePerfModel:
    return RuntimePerfModel(SystemConfig.paper())


class TestAccessCosts:
    def test_hit_costs_accumulate_down_the_hierarchy(self, model):
        # Table I: L1 2cy; an L2 hit paid the L1 probe too (2+20); an LLC
        # hit paid both above it (2+20+32); a miss paid the full traversal.
        b = model.breakdown(Counter({"l1": 1}), SimStats())
        assert b.cache_cycles == 2
        b = model.breakdown(Counter({"l2": 1}), SimStats())
        assert b.cache_cycles == 22
        b = model.breakdown(Counter({"llc": 1}), SimStats())
        assert b.cache_cycles == 54
        b = model.breakdown(Counter({"miss": 1}), SimStats())
        assert b.cache_cycles == 54

    def test_memory_and_crypto_come_from_stats_delta(self, model):
        stats = SimStats()
        stats.record_read(ReadKind.DATA, 2)      # 1200 cycles
        stats.record_mac(MacKind.VERIFY, 1)      # 160 cycles
        b = model.breakdown(Counter(), stats)
        assert b.memory_cycles == 1200
        assert b.crypto_cycles == 160
        assert b.total_cycles == 1360

    def test_cycles_per_access(self, model):
        b = model.breakdown(Counter({"l1": 4}), SimStats())
        assert b.cycles_per_access == pytest.approx(2.0)
        empty = model.breakdown(Counter(), SimStats())
        assert empty.cycles_per_access == 0.0


class TestHierarchyAccounting:
    def test_levels_are_attributed(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        system.write(0, b"\x01" * 64)     # miss (write-allocate)
        system.read(0)                    # L1 hit
        counts = system.hierarchy.access_counts
        assert counts["miss"] == 1
        assert counts["l1"] == 1

    def test_l2_hit_after_l1_eviction(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        # Fill one L1 set beyond capacity so the first line falls to L2.
        stride = tiny_config.l1.num_sets * 64
        lines = tiny_config.l1.ways + 1
        for i in range(lines):
            system.write(i * stride, bytes(64))
        system.hierarchy.access_counts.clear()
        system.read(0)
        assert system.hierarchy.access_counts["l2"] == 1


class TestReplay:
    def test_replay_measures_an_isolated_delta(self, tiny_config):
        model = RuntimePerfModel(tiny_config)
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        trace = kvstore_trace(200, footprint_blocks=64, seed=3)
        first = model.replay(system, trace)
        assert first.accesses == 200
        assert first.total_cycles > 0

    def test_horus_equals_lazy_at_runtime(self, tiny_config):
        """The Section IV-B premise, as a unit test."""
        model = RuntimePerfModel(tiny_config)
        footprint = tiny_config.llc.num_lines * 2
        trace = kvstore_trace(footprint, footprint_blocks=footprint, seed=5)
        totals = {}
        for scheme in ("base-lu", "horus-slm", "horus-dlm"):
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            totals[scheme] = model.replay(system, trace).total_cycles
        assert totals["base-lu"] == totals["horus-slm"] == \
            totals["horus-dlm"]

    def test_runtime_experiment_passes(self):
        from repro.experiments.runtime_overhead import run
        from repro.experiments.suite import DrainSuite
        result = run(DrainSuite(scale=256))
        assert result.all_checks_pass, [c for c in result.checks
                                        if not c.passed]
