"""Sparse backing store."""

import pytest

from repro.common.errors import AddressError, AlignmentError
from repro.mem.backend import SparseMemory


@pytest.fixture
def memory() -> SparseMemory:
    return SparseMemory(1 << 20)


class TestReadWrite:
    def test_unwritten_reads_as_zeros(self, memory):
        assert memory.read_block(0) == bytes(64)
        assert memory.read_block(64 * 100) == bytes(64)

    def test_roundtrip(self, memory):
        payload = bytes(range(64))
        memory.write_block(128, payload)
        assert memory.read_block(128) == payload

    def test_overwrite(self, memory):
        memory.write_block(0, b"\x01" * 64)
        memory.write_block(0, b"\x02" * 64)
        assert memory.read_block(0) == b"\x02" * 64

    def test_is_written_tracks_explicit_writes(self, memory):
        assert not memory.is_written(64)
        memory.write_block(64, bytes(64))
        assert memory.is_written(64)

    def test_touched_blocks(self, memory):
        memory.write_block(0, bytes(64))
        memory.write_block(64, bytes(64))
        memory.write_block(0, bytes(64))  # overwrite, not a new block
        assert memory.touched_blocks == 2


class TestValidation:
    def test_rejects_unaligned_address(self, memory):
        with pytest.raises(AlignmentError):
            memory.read_block(1)

    def test_rejects_out_of_range(self, memory):
        with pytest.raises(AddressError):
            memory.read_block(1 << 20)

    def test_rejects_short_payload(self, memory):
        with pytest.raises(AddressError):
            memory.write_block(0, b"short")

    def test_rejects_bad_size(self):
        with pytest.raises(AddressError):
            SparseMemory(100)
        with pytest.raises(AddressError):
            SparseMemory(0)


class TestAdversarialAndClear:
    def test_corrupt_block_bypasses_nothing_functionally(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        assert memory.read_block(0) == b"\xff" * 64

    def test_clear_resets_to_zeros(self, memory):
        memory.write_block(0, b"\xaa" * 64)
        memory.clear()
        assert memory.read_block(0) == bytes(64)
        assert memory.touched_blocks == 0


class TestAttackedLedger:
    def test_corrupt_block_is_ledgered(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        assert memory.attacked_blocks == {0}

    def test_regular_writes_are_not_ledgered(self, memory):
        memory.write_block(0, b"\x01" * 64)
        assert memory.attacked_blocks == frozenset()

    def test_ledger_is_a_frozen_snapshot(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        before = memory.attacked_blocks
        memory.corrupt_block(64, b"\xee" * 64)
        assert before == {0}
        assert memory.attacked_blocks == {0, 64}

    def test_clear_drops_the_ledger(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        memory.clear()
        assert memory.attacked_blocks == frozenset()
