"""Sparse backing store."""

import pytest

from repro.common.errors import AddressError, AlignmentError
from repro.mem.backend import SparseMemory


@pytest.fixture
def memory() -> SparseMemory:
    return SparseMemory(1 << 20)


class TestReadWrite:
    def test_unwritten_reads_as_zeros(self, memory):
        assert memory.read_block(0) == bytes(64)
        assert memory.read_block(64 * 100) == bytes(64)

    def test_roundtrip(self, memory):
        payload = bytes(range(64))
        memory.write_block(128, payload)
        assert memory.read_block(128) == payload

    def test_overwrite(self, memory):
        memory.write_block(0, b"\x01" * 64)
        memory.write_block(0, b"\x02" * 64)
        assert memory.read_block(0) == b"\x02" * 64

    def test_is_written_tracks_explicit_writes(self, memory):
        assert not memory.is_written(64)
        memory.write_block(64, bytes(64))
        assert memory.is_written(64)

    def test_touched_blocks(self, memory):
        memory.write_block(0, bytes(64))
        memory.write_block(64, bytes(64))
        memory.write_block(0, bytes(64))  # overwrite, not a new block
        assert memory.touched_blocks == 2


class TestValidation:
    def test_rejects_unaligned_address(self, memory):
        with pytest.raises(AlignmentError):
            memory.read_block(1)

    def test_rejects_out_of_range(self, memory):
        with pytest.raises(AddressError):
            memory.read_block(1 << 20)

    def test_rejects_short_payload(self, memory):
        with pytest.raises(AddressError):
            memory.write_block(0, b"short")

    def test_rejects_bad_size(self):
        with pytest.raises(AddressError):
            SparseMemory(100)
        with pytest.raises(AddressError):
            SparseMemory(0)


class TestAdversarialAndClear:
    def test_corrupt_block_bypasses_nothing_functionally(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        assert memory.read_block(0) == b"\xff" * 64

    def test_clear_resets_to_zeros(self, memory):
        memory.write_block(0, b"\xaa" * 64)
        memory.clear()
        assert memory.read_block(0) == bytes(64)
        assert memory.touched_blocks == 0


class TestAttackedLedger:
    def test_corrupt_block_is_ledgered(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        assert memory.attacked_blocks == {0}

    def test_regular_writes_are_not_ledgered(self, memory):
        memory.write_block(0, b"\x01" * 64)
        assert memory.attacked_blocks == frozenset()

    def test_ledger_is_a_frozen_snapshot(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        before = memory.attacked_blocks
        memory.corrupt_block(64, b"\xee" * 64)
        assert before == {0}
        assert memory.attacked_blocks == {0, 64}

    def test_clear_drops_the_ledger(self, memory):
        memory.corrupt_block(0, b"\xff" * 64)
        memory.clear()
        assert memory.attacked_blocks == frozenset()


class TestArenaIo:
    """write_arena/read_arena vs the scalar write_block/read_block spec."""

    def test_write_arena_matches_scalar_writes(self, memory):
        addresses = [0, 4096, 64]
        buffer = b"".join(bytes([i]) * 64 for i in range(3))
        memory.write_arena(addresses, buffer)
        for i, address in enumerate(addresses):
            assert memory.read_block(address) == bytes([i]) * 64

    def test_read_arena_matches_scalar_reads(self, memory):
        memory.write_block(64, b"\x07" * 64)
        out = memory.read_arena([0, 64, 128])
        assert bytes(out) == bytes(64) + b"\x07" * 64 + bytes(64)

    def test_round_trip(self, memory):
        addresses = [4096 * i for i in range(4)]
        buffer = bytes(range(256))
        memory.write_arena(addresses, buffer)
        assert bytes(memory.read_arena(addresses)) == buffer

    def test_duplicate_addresses_last_write_wins(self, memory):
        memory.write_arena([0, 0], b"\x01" * 64 + b"\x02" * 64)
        assert memory.read_block(0) == b"\x02" * 64

    def test_memoryview_buffer_accepted(self, memory):
        memory.write_arena([0], memoryview(b"\x05" * 64))
        assert memory.read_block(0) == b"\x05" * 64

    def test_rejects_ragged_buffer(self, memory):
        with pytest.raises(AddressError):
            memory.write_arena([0, 64], bytes(100))

    def test_validates_every_address_before_writing(self, memory):
        with pytest.raises((AddressError, AlignmentError)):
            memory.write_arena([0, 3], bytes(128))
        # the valid prefix must not have landed
        assert not memory.is_written(0)

    def test_empty_batch(self, memory):
        memory.write_arena([], b"")
        assert bytes(memory.read_arena([])) == b""
