"""Result serialization (JSON / Markdown) and the module CLI."""

import json

import pytest

from repro.experiments.export import (
    result_to_dict,
    to_json,
    to_markdown,
    write_results,
)
from repro.experiments.result import ExperimentResult, ShapeCheck


@pytest.fixture
def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="figX",
        title="Sample",
        headers=["scheme", "count", "ratio"],
        rows=[["horus", 123456, 1.25], ["base", 999999, 10.133]],
        paper_expectation="horus wins",
        checks=[ShapeCheck("horus wins", True, "8.1x"),
                ShapeCheck("something else", False, "0.5x")],
    )


class TestJsonExport:
    def test_dict_shape(self, sample_result):
        d = result_to_dict(sample_result)
        assert d["experiment_id"] == "figX"
        assert d["rows"][0] == ["horus", 123456, 1.25]
        assert d["checks"][0]["passed"] is True
        assert d["all_checks_pass"] is False

    def test_json_document_is_valid_and_counts_checks(self, sample_result):
        document = json.loads(to_json([sample_result], scale=16))
        assert document["scale"] == 16
        assert document["total_checks"] == 2
        assert document["passed_checks"] == 1
        assert len(document["experiments"]) == 1

    def test_non_primitive_cells_stringify(self):
        result = ExperimentResult("id", "t", ["a"], [[object()]], "p")
        document = json.loads(to_json([result], scale=1))
        assert isinstance(document["experiments"][0]["rows"][0][0], str)


class TestMarkdownExport:
    def test_contains_table_and_checkboxes(self, sample_result):
        text = to_markdown([sample_result], scale=16)
        assert "## figX: Sample" in text
        assert "| scheme | count | ratio |" in text
        assert "| horus | 123,456 | 1.250 |" in text
        assert "- [x] horus wins" in text
        assert "- [ ] something else" in text


class TestWriteResults:
    def test_writes_both_files(self, sample_result, tmp_path):
        paths = write_results([sample_result], str(tmp_path), scale=8)
        assert {p.name for p in paths} == {"results.json", "results.md"}
        for path in paths:
            assert path.exists() and path.stat().st_size > 0

    def test_runner_output_flag(self, tmp_path):
        from repro.experiments.runner import main
        code = main(["fig16", "--scale", "128",
                     "--output", str(tmp_path)])
        assert code == 0
        document = json.loads((tmp_path / "results.json").read_text())
        assert document["experiments"][0]["experiment_id"] == "fig16"


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, tmp_path):
        import subprocess
        import sys
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig16", "--scale", "128"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "fig16" in proc.stdout
        assert "[PASS]" in proc.stdout
