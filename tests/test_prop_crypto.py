"""Property-based tests: crypto primitives and split counters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.counters import SplitCounterBlock
from repro.crypto.primitives import (
    decrypt_block,
    encrypt_block,
    generate_pad,
    xor_block,
)

KEY = b"prop-test-key"

blocks64 = st.binary(min_size=64, max_size=64)
addresses = st.integers(min_value=0, max_value=(1 << 48) - 1).map(
    lambda a: a * 64)
counters = st.integers(min_value=0, max_value=(1 << 71) - 1)


class TestEncryptionProperties:
    @given(blocks64, addresses, counters)
    def test_roundtrip(self, plaintext, address, counter):
        ciphertext = encrypt_block(KEY, address, counter, plaintext)
        assert decrypt_block(KEY, address, counter, ciphertext) == plaintext

    @given(blocks64, addresses, counters)
    def test_encryption_changes_content(self, plaintext, address, counter):
        assert encrypt_block(KEY, address, counter, plaintext) != plaintext

    @given(addresses, counters, counters)
    def test_distinct_counters_distinct_pads(self, address, c1, c2):
        if c1 != c2:
            assert generate_pad(KEY, address, c1) != \
                generate_pad(KEY, address, c2)

    @given(addresses, addresses, counters)
    def test_distinct_addresses_distinct_pads(self, a1, a2, counter):
        if a1 != a2:
            assert generate_pad(KEY, a1, counter) != \
                generate_pad(KEY, a2, counter)

    @given(blocks64, blocks64)
    def test_xor_is_an_involution(self, a, b):
        assert xor_block(xor_block(a, b), b) == a

    @given(blocks64)
    def test_xor_identity(self, a):
        assert xor_block(a, bytes(64)) == a


class TestSplitCounterProperties:
    @given(st.integers(0, (1 << 64) - 1),
           st.lists(st.integers(0, 127), min_size=64, max_size=64))
    def test_wire_format_roundtrip(self, major, minors):
        block = SplitCounterBlock(major, minors)
        decoded = SplitCounterBlock.from_bytes(block.to_bytes())
        assert decoded.major == major
        assert decoded.minors == minors

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_counter_stream_never_repeats_per_slot(self, slots):
        """Interleaved increments across slots: each slot's counter sequence
        is strictly increasing (no pad reuse, the CME invariant)."""
        block = SplitCounterBlock()
        last = {slot: block.counter_for(slot) for slot in range(64)}
        for slot in slots:
            block.increment(slot)
            value = block.counter_for(slot)
            assert value > last[slot]
            last[slot] = value

    @given(st.integers(0, 63))
    def test_overflow_resets_all_minors(self, slot):
        block = SplitCounterBlock(minors=[127] * 64)
        assert block.increment(slot)
        assert block.minors == [0] * 64
        assert block.major == 1
