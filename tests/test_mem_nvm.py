"""Timed, accounted NVM device."""

import pytest

from repro.common.errors import AddressError
from repro.mem.nvm import NvmDevice
from repro.stats.events import ReadKind, WriteKind


@pytest.fixture
def device() -> NvmDevice:
    return NvmDevice(1 << 20)


class TestAccounting:
    def test_read_is_accounted_by_kind(self, device):
        device.read(0, ReadKind.COUNTER)
        device.read(0, ReadKind.COUNTER)
        device.read(64, ReadKind.TREE_NODE)
        assert device.stats.reads[ReadKind.COUNTER] == 2
        assert device.stats.reads[ReadKind.TREE_NODE] == 1

    def test_write_is_accounted_by_kind(self, device):
        device.write(0, bytes(64), WriteKind.CHV_DATA)
        assert device.stats.writes[WriteKind.CHV_DATA] == 1

    def test_peek_and_poke_are_not_accounted(self, device):
        device.poke(0, b"\x42" * 64)
        assert device.peek(0) == b"\x42" * 64
        assert device.stats.total_memory_requests == 0

    def test_kind_is_mandatory_and_typed(self, device):
        with pytest.raises(AddressError):
            device.read(0, "counter")
        with pytest.raises(AddressError):
            device.write(0, bytes(64), "data")


class TestDataPath:
    def test_write_then_read_roundtrip(self, device):
        payload = bytes(range(64))
        device.write(4096, payload, WriteKind.DATA)
        assert device.read(4096, ReadKind.DATA) == payload

    def test_unwritten_reads_zeros_but_counts(self, device):
        assert device.read(0, ReadKind.DATA) == bytes(64)
        assert device.stats.total_reads == 1

    def test_shared_stats_object(self):
        from repro.stats.counters import SimStats
        stats = SimStats()
        device = NvmDevice(1 << 16, stats)
        device.write(0, bytes(64), WriteKind.DATA)
        assert stats.total_writes == 1


class TestArenaIo:
    """Grouped arena I/O: same image and stats as the scalar stream."""

    def test_write_arena_single_kind(self, device):
        addresses = [0, 4096]
        device.write_arena(addresses, b"\x01" * 64 + b"\x02" * 64,
                           WriteKind.DATA)
        assert device.peek(0) == b"\x01" * 64
        assert device.peek(4096) == b"\x02" * 64
        assert device.stats.writes[WriteKind.DATA] == 2

    def test_write_arena_per_element_kinds(self, device):
        kinds = [WriteKind.CHV_DATA, WriteKind.CHV_METADATA]
        device.write_arena([0, 64], bytes(128), kinds)
        assert device.stats.writes[WriteKind.CHV_DATA] == 1
        assert device.stats.writes[WriteKind.CHV_METADATA] == 1

    def test_write_arena_kind_counts_fold(self, device):
        device.write_arena([0, 64, 128], bytes(192), WriteKind.CHV_DATA,
                           kind_counts={WriteKind.CHV_DATA: 2,
                                        WriteKind.CHV_METADATA: 1})
        assert device.stats.writes[WriteKind.CHV_DATA] == 2
        assert device.stats.writes[WriteKind.CHV_METADATA] == 1

    def test_write_arena_rejects_untyped_kind(self, device):
        with pytest.raises(AddressError):
            device.write_arena([0], bytes(64), "data")

    def test_read_arena_accounts_and_reads(self, device):
        device.write(64, b"\x09" * 64, WriteKind.DATA)
        out = device.read_arena([0, 64], ReadKind.DATA)
        assert bytes(out) == bytes(64) + b"\x09" * 64
        assert device.stats.reads[ReadKind.DATA] == 2

    def test_read_arena_rejects_untyped_kind(self, device):
        with pytest.raises(AddressError):
            device.read_arena([0], "data")

    def test_grouped_io_reflects_side_channels(self, device):
        assert device.grouped_io
        device.trace = []
        assert not device.grouped_io
        device.trace = None
        assert device.grouped_io

    def test_write_arena_scalar_fallback_under_trace(self, device):
        """With a trace attached the arena degrades to per-request scalar
        issue, so the request log keeps one entry per block."""
        device.trace = []
        device.write_arena([0, 64], b"\x03" * 128, WriteKind.DATA)
        out = device.read_arena([0, 64], ReadKind.DATA)
        assert bytes(out) == b"\x03" * 128
        assert device.trace == [(0, True), (64, True),
                                (0, False), (64, False)]
        assert device.stats.writes[WriteKind.DATA] == 2
        assert device.stats.reads[ReadKind.DATA] == 2

    def test_account_reads_counts_without_touching_backend(self, device):
        device.account_reads(ReadKind.DATA, 5)
        assert device.stats.reads[ReadKind.DATA] == 5

    def test_account_reads_refused_under_trace(self, device):
        device.trace = []
        with pytest.raises(AddressError):
            device.account_reads(ReadKind.DATA, 1)

    def test_arena_equals_scalar_stream(self):
        """Differential: one grouped arena write/read equals the scalar
        per-block stream on image and stats."""
        from repro.stats.counters import SimStats
        addresses = [4096 * i for i in range(8)]
        payload = b"".join(bytes([i]) * 64 for i in range(8))

        grouped = NvmDevice(1 << 20, SimStats())
        grouped.write_arena(addresses, payload, WriteKind.DATA)
        grouped_out = bytes(grouped.read_arena(addresses, ReadKind.DATA))

        scalar = NvmDevice(1 << 20, SimStats())
        for i, address in enumerate(addresses):
            scalar.write(address, payload[i * 64:(i + 1) * 64],
                         WriteKind.DATA)
        scalar_out = b"".join(
            scalar.read(address, ReadKind.DATA) for address in addresses)

        assert grouped_out == scalar_out
        assert grouped.backend.image() == scalar.backend.image()
        assert grouped.stats.snapshot() == scalar.stats.snapshot()
