"""Timed, accounted NVM device."""

import pytest

from repro.common.errors import AddressError
from repro.mem.nvm import NvmDevice
from repro.stats.events import ReadKind, WriteKind


@pytest.fixture
def device() -> NvmDevice:
    return NvmDevice(1 << 20)


class TestAccounting:
    def test_read_is_accounted_by_kind(self, device):
        device.read(0, ReadKind.COUNTER)
        device.read(0, ReadKind.COUNTER)
        device.read(64, ReadKind.TREE_NODE)
        assert device.stats.reads[ReadKind.COUNTER] == 2
        assert device.stats.reads[ReadKind.TREE_NODE] == 1

    def test_write_is_accounted_by_kind(self, device):
        device.write(0, bytes(64), WriteKind.CHV_DATA)
        assert device.stats.writes[WriteKind.CHV_DATA] == 1

    def test_peek_and_poke_are_not_accounted(self, device):
        device.poke(0, b"\x42" * 64)
        assert device.peek(0) == b"\x42" * 64
        assert device.stats.total_memory_requests == 0

    def test_kind_is_mandatory_and_typed(self, device):
        with pytest.raises(AddressError):
            device.read(0, "counter")
        with pytest.raises(AddressError):
            device.write(0, bytes(64), "data")


class TestDataPath:
    def test_write_then_read_roundtrip(self, device):
        payload = bytes(range(64))
        device.write(4096, payload, WriteKind.DATA)
        assert device.read(4096, ReadKind.DATA) == payload

    def test_unwritten_reads_zeros_but_counts(self, device):
        assert device.read(0, ReadKind.DATA) == bytes(64)
        assert device.stats.total_reads == 1

    def test_shared_stats_object(self):
        from repro.stats.counters import SimStats
        stats = SimStats()
        device = NvmDevice(1 << 16, stats)
        device.write(0, bytes(64), WriteKind.DATA)
        assert stats.total_writes == 1
