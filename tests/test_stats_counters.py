"""Operation counters."""

from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind, ReadKind, WriteKind


class TestRecording:
    def test_starts_empty(self):
        stats = SimStats()
        assert stats.total_reads == 0
        assert stats.total_writes == 0
        assert stats.total_macs == 0
        assert stats.total_aes == 0

    def test_record_read_by_kind(self):
        stats = SimStats()
        stats.record_read(ReadKind.COUNTER)
        stats.record_read(ReadKind.COUNTER)
        stats.record_read(ReadKind.TREE_NODE)
        assert stats.reads[ReadKind.COUNTER] == 2
        assert stats.reads[ReadKind.TREE_NODE] == 1
        assert stats.total_reads == 3

    def test_record_with_count(self):
        stats = SimStats()
        stats.record_write(WriteKind.CHV_DATA, 100)
        assert stats.total_writes == 100

    def test_total_memory_requests_sums_reads_and_writes(self):
        stats = SimStats()
        stats.record_read(ReadKind.DATA, 3)
        stats.record_write(WriteKind.DATA, 5)
        assert stats.total_memory_requests == 8

    def test_macs_and_aes_are_not_memory_requests(self):
        stats = SimStats()
        stats.record_mac(MacKind.VERIFY, 10)
        stats.record_aes(AesKind.ENCRYPT, 10)
        assert stats.total_memory_requests == 0
        assert stats.total_macs == 10
        assert stats.total_aes == 10


class TestComposition:
    def _sample(self) -> SimStats:
        stats = SimStats()
        stats.record_read(ReadKind.COUNTER, 2)
        stats.record_write(WriteKind.DATA, 3)
        stats.record_mac(MacKind.DATA_PROTECT, 4)
        stats.record_aes(AesKind.DECRYPT, 5)
        return stats

    def test_merge_accumulates(self):
        a, b = self._sample(), self._sample()
        a.merge(b)
        assert a.total_reads == 4
        assert a.total_writes == 6
        assert b.total_reads == 2  # b untouched

    def test_copy_is_independent(self):
        a = self._sample()
        b = a.copy()
        b.record_read(ReadKind.DATA)
        assert a.total_reads == 2
        assert b.total_reads == 3

    def test_diff_isolates_an_episode(self):
        stats = self._sample()
        before = stats.copy()
        stats.record_write(WriteKind.CHV_DATA, 7)
        stats.record_mac(MacKind.CHV_DATA, 7)
        episode = stats.diff(before)
        assert episode.total_writes == 7
        assert episode.writes[WriteKind.CHV_DATA] == 7
        assert episode.writes[WriteKind.DATA] == 0
        assert episode.total_macs == 7

    def test_diff_of_identical_stats_is_empty(self):
        stats = self._sample()
        episode = stats.diff(stats.copy())
        assert episode.total_memory_requests == 0
        assert episode.total_macs == 0

    def test_reset_clears_everything(self):
        stats = self._sample()
        stats.reset()
        assert stats.total_memory_requests == 0
        assert stats.total_aes == 0


class TestSnapshot:
    def test_snapshot_has_stable_string_keys(self):
        stats = SimStats()
        stats.record_read(ReadKind.CHV, 2)
        stats.record_write(WriteKind.CHV_MAC, 1)
        snap = stats.snapshot()
        assert snap["reads"] == {"chv": 2}
        assert snap["writes"] == {"chv_mac": 1}
        assert snap["total_memory_requests"] == 3
