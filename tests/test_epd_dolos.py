"""Dolos-style ADR: MSU-staged persists off the secure critical path."""

import pytest

from repro.common.errors import ConfigError
from repro.epd.adr import AdrSecureSystem
from repro.epd.dolos import DolosAdrSystem


@pytest.fixture
def dolos(tiny_config) -> DolosAdrSystem:
    return DolosAdrSystem(tiny_config, background_batch=8)


def payload(tag: int) -> bytes:
    return tag.to_bytes(8, "little") * 8


class TestPersistSemantics:
    def test_persisted_data_survives_crash_via_staging(self, dolos):
        dolos.write(0, payload(1))
        dolos.persist(0)
        assert dolos.staged_entries == 1
        dolos.crash()
        assert dolos.recover() == 1
        assert dolos.read(0) == payload(1)

    def test_background_replay_clears_the_staging_ring(self, dolos):
        for i in range(30):
            dolos.write(i * 4096, payload(i))
            dolos.persist(i * 4096)
        assert dolos.background_writes > 0
        assert dolos.staged_entries <= 8 + 1
        dolos.crash()
        dolos.recover()
        for i in range(30):
            assert dolos.read(i * 4096) == payload(i)

    def test_unpersisted_writes_are_lost(self, dolos):
        dolos.write(0, payload(1))
        dolos.crash()
        dolos.recover()
        assert dolos.read(0) == bytes(64)

    def test_staging_ring_wraps_safely(self, tiny_config):
        dolos = DolosAdrSystem(tiny_config, background_batch=4)
        # Far more persists than ring slots: forced background drains keep
        # the ring from overwriting live entries.
        for i in range(200):
            dolos.write((i % 50) * 4096, payload(i))
            dolos.persist((i % 50) * 4096)
        dolos.crash()
        dolos.recover()
        for i in range(150, 200):
            assert dolos.read((i % 50) * 4096) == payload(i)

    def test_rejects_bad_batch(self, tiny_config):
        with pytest.raises(ConfigError):
            DolosAdrSystem(tiny_config, background_batch=0)


class TestCriticalPathAdvantage:
    def test_dolos_persist_is_cheaper_than_plain_adr(self, tiny_config):
        """The Dolos claim: persist-critical-path cycles drop to a small
        constant independent of the tree depth."""
        plain = AdrSecureSystem(tiny_config)
        dolos = DolosAdrSystem(tiny_config, background_batch=64)
        for i in range(32):
            address = i * 65 * 64
            for system in (plain, dolos):
                system.write(address, payload(i))
                system.persist(address)
        assert dolos.persists == plain.persists
        assert dolos.persist_critical_cycles() < \
            0.9 * plain.persist_critical_cycles()

    def test_persist_cost_is_tree_depth_independent(self, tiny_config):
        dolos = DolosAdrSystem(tiny_config, background_batch=64)
        dolos.write(0, payload(1))
        dolos.persist(0)
        single = dolos.persist_critical_cycles()
        # One staging write + 1/8 address write + MAC + AES at Table I
        # latencies — nothing that scales with the memory size.
        t = dolos.timing
        assert single == (t.write_cycles + t.write_cycles // 8
                          + t.mac_cycles + t.aes_cycles)
