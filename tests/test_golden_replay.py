"""Golden replay operation counts, pinned and cross-checked.

Trace replay is deterministic per (config, scheme, trace seed): the cache
access mix, every SimStats counter, and the final NVM image are pure
functions of the inputs.  The exact counters for a YCSB-A trace at two
hierarchy scales on a baseline and a Horus scheme are committed as
``tests/golden/replay_op_counts.json``; a batching rewrite, a cache-policy
tweak, or an accounting slip shows up as a fixture diff that has to be
reviewed and regenerated deliberately:

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_replay.py

The fixture is additionally cross-checked against the closed-form replay
invariants in :mod:`repro.core.analytic`, so a regeneration can never
silently commit counters the model rejects.
"""

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.core.analytic import validate_replay_counts
from repro.core.system import SecureEpdSystem
from repro.workloads.replay import replay
from repro.workloads.ycsb import ycsb_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "replay_op_counts.json"
SCALES = (256, 128)
SCHEMES = ("base-eu", "horus-dlm")
TRACE_SEED = 87


def make_trace(config: SystemConfig):
    footprint = config.llc.num_lines * 4
    return ycsb_trace("a", num_ops=2 * footprint,
                      footprint_blocks=footprint, seed=TRACE_SEED)


def replay_counts(scale: int, scheme: str) -> dict:
    config = SystemConfig.scaled(scale)
    system = SecureEpdSystem(config, scheme=scheme)
    trace = make_trace(config)
    expected = replay(system, trace)
    image = system.nvm.backend.image()
    digest = hashlib.sha256()
    for address in sorted(image):
        digest.update(address.to_bytes(8, "little"))
        digest.update(image[address])
    return {
        "num_ops": len(trace),
        "written_addresses": len(expected),
        "access_counts": dict(system.hierarchy.access_counts),
        "stats": system.stats.snapshot(),
        "nvm_sha256": digest.hexdigest(),
    }


def current_counts() -> dict:
    return {str(scale): {scheme: replay_counts(scale, scheme)
                         for scheme in SCHEMES}
            for scale in SCALES}


@pytest.fixture(scope="module")
def golden() -> dict:
    if os.environ.get("REPRO_REGOLDEN") == "1":
        counts = current_counts()
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(counts, indent=2, sort_keys=True) + "\n")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenReplayCounts:
    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_simulator_matches_fixture(self, golden, scale, scheme):
        assert replay_counts(scale, scheme) == \
            golden[str(scale)][scheme], (
            f"{scheme}@1/{scale} replay drifted from the committed "
            f"counters; if intentional, regenerate with REPRO_REGOLDEN=1")

    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fixture_satisfies_closed_form(self, golden, scale, scheme):
        """The committed counters obey the analytic replay invariants."""
        entry = golden[str(scale)][scheme]
        validate_replay_counts(scheme, entry["num_ops"],
                               entry["access_counts"], entry["stats"])

    def test_closed_form_rejects_corrupt_counters(self, golden):
        """The cross-check has teeth: a fixture with one dropped encryption
        cannot validate."""
        entry = json.loads(json.dumps(golden["128"]["horus-dlm"]))
        entry["stats"]["aes"]["encrypt"] -= 1
        with pytest.raises(AssertionError, match="diverge"):
            validate_replay_counts("horus-dlm", entry["num_ops"],
                                   entry["access_counts"], entry["stats"])
