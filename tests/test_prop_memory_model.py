"""Model-based property tests: the whole memory stack vs a flat reference.

Whatever caching, eviction, inclusion, coherence, encryption, and metadata
machinery does internally, the observable contract is a flat address space:
a read returns the most recent write.  Hypothesis drives random operation
sequences against each system flavour and a plain dict reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from tests.conftest import examples

CONFIG = SystemConfig.scaled(512)

# A small, collision-rich address pool (few distinct sets and counter pages)
# to maximize evictions and metadata churn.
addresses = st.integers(0, 400).map(lambda i: i * 64)
payloads = st.binary(min_size=64, max_size=64)
op_sequences = st.lists(
    st.tuples(st.booleans(), addresses, payloads), min_size=1, max_size=120)

SLOW = settings(max_examples=examples(25))


def _run_against_reference(system, ops):
    reference: dict[int, bytes] = {}
    for is_write, address, payload in ops:
        if is_write:
            system.write(address, payload)
            reference[address] = payload
        else:
            expected = reference.get(address, bytes(64))
            assert system.read(address) == expected, hex(address)
    for address, expected in reference.items():
        assert system.read(address) == expected, hex(address)


class TestFlatMemoryContract:
    @given(ops=op_sequences)
    @SLOW
    def test_nosec_system(self, ops):
        _run_against_reference(SecureEpdSystem(CONFIG, "nosec"), ops)

    @given(ops=op_sequences)
    @SLOW
    def test_lazy_secure_system(self, ops):
        _run_against_reference(SecureEpdSystem(CONFIG, "base-lu"), ops)

    @given(ops=op_sequences)
    @SLOW
    def test_eager_secure_system(self, ops):
        _run_against_reference(SecureEpdSystem(CONFIG, "base-eu"), ops)

    @given(ops=op_sequences)
    @SLOW
    def test_non_inclusive_hierarchy(self, ops):
        system = SecureEpdSystem(CONFIG, "horus-slm", inclusive=False,
                                 recovery_mode="writeback")
        _run_against_reference(system, ops)


class TestContractAcrossCrashes:
    @given(ops=op_sequences, crash_point=st.integers(0, 119))
    @settings(max_examples=examples(20))
    def test_horus_crash_anywhere_preserves_the_map(self, ops, crash_point):
        """Crash after an arbitrary prefix of the workload: the recovered
        system must still satisfy the flat-memory contract."""
        system = SecureEpdSystem(CONFIG, "horus-dlm")
        reference: dict[int, bytes] = {}
        for index, (is_write, address, payload) in enumerate(ops):
            if is_write:
                system.write(address, payload)
                reference[address] = payload
            else:
                system.read(address)
            if index == crash_point:
                report = system.crash(seed=index)
                if report.flushed_blocks + report.metadata_blocks:
                    system.recover()
                # (an all-clean hierarchy drains nothing; nothing to recover)
        for address, expected in reference.items():
            assert system.read(address) == expected, hex(address)
