"""Physical address-space layout."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import AddressError
from repro.mem.regions import MemoryLayout, tree_level_sizes


@pytest.fixture(scope="module")
def layout() -> MemoryLayout:
    return MemoryLayout(SystemConfig.scaled(512))


@pytest.fixture(scope="module")
def paper_layout() -> MemoryLayout:
    return MemoryLayout(SystemConfig.paper())


class TestTreeLevelSizes:
    def test_single_leaf(self):
        assert tree_level_sizes(1) == [1]

    def test_exact_power(self):
        assert tree_level_sizes(64) == [8, 1]
        assert tree_level_sizes(512) == [64, 8, 1]

    def test_rounds_up_partial_levels(self):
        assert tree_level_sizes(9) == [2, 1]
        assert tree_level_sizes(65) == [9, 2, 1]

    def test_paper_scale_tree_depth(self, paper_layout):
        """32 GB / 4 KiB pages = 8M counter blocks; with the counter level
        and the on-chip root that is the paper's 10-level structure."""
        assert paper_layout.num_counter_blocks == 8 * 1024 * 1024
        # node levels: 1M, 128K, 16K, 2K, 256, 32, 4, 1
        assert paper_layout.num_tree_levels == 8
        assert paper_layout.tree_levels[0] == 1024 * 1024
        assert paper_layout.tree_levels[-1] == 1


class TestRegionDisjointness:
    def test_regions_are_contiguous_and_disjoint(self, layout):
        regions = sorted(layout.regions, key=lambda r: r.base)
        for a, b in zip(regions, regions[1:]):
            assert a.end <= b.base or a.end == b.base
        assert regions[0].base == 0
        assert regions[-1].end == layout.total_size

    def test_classify_each_region(self, layout):
        for region in layout.regions:
            if region.size:
                assert layout.classify(region.base) == region.name

    def test_classify_rejects_out_of_range(self, layout):
        with pytest.raises(AddressError):
            layout.classify(layout.total_size)


class TestCounterMapping:
    def test_one_counter_block_per_4k_page(self, layout):
        assert layout.counter_block_address(0) == \
            layout.counter_block_address(4095 // 64 * 64)
        assert layout.counter_block_address(0) != \
            layout.counter_block_address(4096)

    def test_counter_slot_walks_the_page(self, layout):
        assert layout.counter_slot(0) == 0
        assert layout.counter_slot(64) == 1
        assert layout.counter_slot(63 * 64) == 63
        assert layout.counter_slot(4096) == 0

    def test_counter_addresses_land_in_counter_region(self, layout):
        for data in (0, 4096, 1 << 20):
            assert layout.counters.contains(layout.counter_block_address(data))

    def test_rejects_non_data_address(self, layout):
        with pytest.raises(AddressError):
            layout.counter_block_address(layout.counters.base)


class TestMacMapping:
    def test_eight_macs_per_block(self, layout):
        base = layout.mac_block_address(0)
        for i in range(8):
            assert layout.mac_block_address(i * 64) == base
            assert layout.mac_slot(i * 64) == i
        assert layout.mac_block_address(8 * 64) == base + 64

    def test_mac_addresses_land_in_mac_region(self, layout):
        assert layout.macs.contains(layout.mac_block_address(0))


class TestTreeNodeAddressing:
    def test_coords_roundtrip(self, layout):
        for level in range(1, layout.num_tree_levels + 1):
            for index in (0, layout.tree_levels[level - 1] - 1):
                addr = layout.tree_node_address(level, index)
                assert layout.tree_node_coords(addr) == (level, index)

    def test_parent_of_counter_block(self, layout):
        cb0 = layout.counters.base
        cb9 = layout.counters.base + 9 * 64
        assert layout.parent_of_counter_block(cb0) == (1, 0, 0)
        assert layout.parent_of_counter_block(cb9) == (1, 1, 1)

    def test_parent_chain_reaches_root(self, layout):
        level, index = 1, layout.tree_levels[0] - 1
        seen = 0
        while level < layout.num_tree_levels:
            level, index, slot = layout.parent_of_tree_node(level, index)
            assert 0 <= slot < 8
            seen += 1
        assert index == 0  # the root
        assert seen == layout.num_tree_levels - 1

    def test_root_has_no_parent(self, layout):
        with pytest.raises(AddressError):
            layout.parent_of_tree_node(layout.num_tree_levels, 0)

    def test_rejects_bad_level_or_index(self, layout):
        with pytest.raises(AddressError):
            layout.tree_node_address(0, 0)
        with pytest.raises(AddressError):
            layout.tree_node_address(1, layout.tree_levels[0])


class TestChvSizing:
    def test_chv_covers_every_flushable_block(self, layout):
        config = layout.config
        capacity_needed = (config.total_cache_lines
                           + config.metadata_cache_size // 64)
        # data + 1/8 addresses + 1/8 MACs, in bytes
        assert layout.chv.size >= capacity_needed * 80
