"""Three-level inclusive cache hierarchy."""

import pytest

from repro.cache.fill import page_of
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigError


@pytest.fixture
def hierarchy(tiny_config) -> CacheHierarchy:
    return CacheHierarchy(tiny_config)


class _MemoryStub:
    """Minimal memory side for run-time tests."""

    def __init__(self):
        self.store: dict[int, bytes] = {}
        self.fetches = 0
        self.writebacks = 0

    def fetch(self, address: int) -> bytes:
        self.fetches += 1
        return self.store.get(address, bytes(64))

    def writeback(self, address: int, data: bytes) -> None:
        self.writebacks += 1
        self.store[address] = data


@pytest.fixture
def attached(hierarchy):
    stub = _MemoryStub()
    hierarchy.attach(stub.fetch, stub.writeback)
    return hierarchy, stub


class TestWorstCaseFill:
    def test_fill_count_is_sum_of_levels(self, hierarchy, tiny_config):
        filled = hierarchy.fill_worst_case(seed=1)
        assert filled == tiny_config.total_cache_lines
        assert len(hierarchy.l1) == tiny_config.l1.num_lines
        assert len(hierarchy.l2) == tiny_config.l2.num_lines
        assert len(hierarchy.llc) == tiny_config.llc.num_lines

    def test_everything_is_dirty(self, hierarchy, tiny_config):
        hierarchy.fill_worst_case(seed=1)
        assert hierarchy.dirty_line_count() == tiny_config.total_cache_lines

    def test_inclusion_holds(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        for upper in (hierarchy.l1, hierarchy.l2):
            for line in upper.lines():
                assert hierarchy.llc.contains(line.address)

    def test_llc_lines_have_unique_counter_pages(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        pages = [page_of(line.address) for line in hierarchy.llc.lines()]
        assert len(set(pages)) == len(pages)

    def test_fill_is_deterministic_per_seed(self, tiny_config):
        a = CacheHierarchy(tiny_config)
        b = CacheHierarchy(tiny_config)
        a.fill_worst_case(seed=7)
        b.fill_worst_case(seed=7)
        assert ([line.address for line in a.llc.lines()]
                == [line.address for line in b.llc.lines()])


class TestDrainStream:
    def test_drain_covers_every_dirty_line(self, hierarchy, tiny_config):
        hierarchy.fill_worst_case(seed=1)
        drained = list(hierarchy.drain_lines(seed=2))
        assert len(drained) == tiny_config.total_cache_lines

    def test_drain_order_is_shuffled_but_deterministic(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        order_a = [line.address for line in hierarchy.drain_lines(seed=3)]
        order_b = [line.address for line in hierarchy.drain_lines(seed=3)]
        order_c = [line.address for line in hierarchy.drain_lines(seed=4)]
        assert order_a == order_b
        assert order_a != order_c

    def test_duplicates_match_upper_level_content(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        from collections import Counter
        counts = Counter(line.address
                         for line in hierarchy.drain_lines(seed=2))
        extra_flushes = sum(c - 1 for c in counts.values())
        upper_lines = len(hierarchy.l1) + len(hierarchy.l2)
        assert extra_flushes == upper_lines


class TestRuntimePath:
    def test_read_miss_fetches_and_fills_all_levels(self, attached):
        hierarchy, stub = attached
        stub.store[0] = b"\x2a" * 64
        assert hierarchy.read(0) == b"\x2a" * 64
        assert stub.fetches == 1
        assert hierarchy.l1.contains(0)
        assert hierarchy.l2.contains(0)
        assert hierarchy.llc.contains(0)

    def test_read_hit_does_not_fetch_again(self, attached):
        hierarchy, stub = attached
        hierarchy.read(0)
        hierarchy.read(0)
        assert stub.fetches == 1

    def test_write_marks_l1_dirty(self, attached):
        hierarchy, _ = attached
        hierarchy.write(64, b"\x01" * 64)
        line = hierarchy.l1.lookup(64, touch=False)
        assert line.dirty and line.data == b"\x01" * 64

    def test_write_visible_through_read(self, attached):
        hierarchy, _ = attached
        hierarchy.write(128, b"\x07" * 64)
        assert hierarchy.read(128) == b"\x07" * 64

    def test_capacity_pressure_writes_back_dirty_data(self, attached,
                                                      tiny_config):
        hierarchy, stub = attached
        lines = tiny_config.llc.num_lines + tiny_config.llc.num_sets
        for i in range(lines):
            hierarchy.write(i * 64, i.to_bytes(8, "little") * 8)
        assert stub.writebacks > 0
        # Every written-back block must carry the exact data written.
        for address, data in stub.store.items():
            assert data == (address // 64).to_bytes(8, "little") * 8

    def test_detached_hierarchy_raises(self, hierarchy):
        with pytest.raises(ConfigError):
            hierarchy.read(0)


class TestRestore:
    def test_restore_dirty_places_line_in_llc(self, hierarchy):
        hierarchy.restore_dirty(4096, b"\x11" * 64)
        line = hierarchy.llc.lookup(4096, touch=False)
        assert line.dirty and line.data == b"\x11" * 64

    def test_invalidate_all(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        hierarchy.invalidate_all()
        assert len(hierarchy) == 0
