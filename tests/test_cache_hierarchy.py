"""Three-level inclusive cache hierarchy."""

import pytest

from repro.cache.fill import page_of
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigError


@pytest.fixture
def hierarchy(tiny_config) -> CacheHierarchy:
    return CacheHierarchy(tiny_config)


class _MemoryStub:
    """Minimal memory side for run-time tests."""

    def __init__(self):
        self.store: dict[int, bytes] = {}
        self.fetches = 0
        self.writebacks = 0

    def fetch(self, address: int) -> bytes:
        self.fetches += 1
        return self.store.get(address, bytes(64))

    def writeback(self, address: int, data: bytes) -> None:
        self.writebacks += 1
        self.store[address] = data


@pytest.fixture
def attached(hierarchy):
    stub = _MemoryStub()
    hierarchy.attach(stub.fetch, stub.writeback)
    return hierarchy, stub


class TestWorstCaseFill:
    def test_fill_count_is_sum_of_levels(self, hierarchy, tiny_config):
        filled = hierarchy.fill_worst_case(seed=1)
        assert filled == tiny_config.total_cache_lines
        assert len(hierarchy.l1) == tiny_config.l1.num_lines
        assert len(hierarchy.l2) == tiny_config.l2.num_lines
        assert len(hierarchy.llc) == tiny_config.llc.num_lines

    def test_everything_is_dirty(self, hierarchy, tiny_config):
        hierarchy.fill_worst_case(seed=1)
        assert hierarchy.dirty_line_count() == tiny_config.total_cache_lines

    def test_inclusion_holds(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        for upper in (hierarchy.l1, hierarchy.l2):
            for line in upper.lines():
                assert hierarchy.llc.contains(line.address)

    def test_llc_lines_have_unique_counter_pages(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        pages = [page_of(line.address) for line in hierarchy.llc.lines()]
        assert len(set(pages)) == len(pages)

    def test_fill_is_deterministic_per_seed(self, tiny_config):
        a = CacheHierarchy(tiny_config)
        b = CacheHierarchy(tiny_config)
        a.fill_worst_case(seed=7)
        b.fill_worst_case(seed=7)
        assert ([line.address for line in a.llc.lines()]
                == [line.address for line in b.llc.lines()])


class TestDrainStream:
    def test_drain_covers_every_dirty_line(self, hierarchy, tiny_config):
        hierarchy.fill_worst_case(seed=1)
        drained = list(hierarchy.drain_lines(seed=2))
        assert len(drained) == tiny_config.total_cache_lines

    def test_drain_order_is_shuffled_but_deterministic(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        order_a = [line.address for line in hierarchy.drain_lines(seed=3)]
        order_b = [line.address for line in hierarchy.drain_lines(seed=3)]
        order_c = [line.address for line in hierarchy.drain_lines(seed=4)]
        assert order_a == order_b
        assert order_a != order_c

    def test_duplicates_match_upper_level_content(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        from collections import Counter
        counts = Counter(line.address
                         for line in hierarchy.drain_lines(seed=2))
        extra_flushes = sum(c - 1 for c in counts.values())
        upper_lines = len(hierarchy.l1) + len(hierarchy.l2)
        assert extra_flushes == upper_lines


class TestRuntimePath:
    def test_read_miss_fetches_and_fills_all_levels(self, attached):
        hierarchy, stub = attached
        stub.store[0] = b"\x2a" * 64
        assert hierarchy.read(0) == b"\x2a" * 64
        assert stub.fetches == 1
        assert hierarchy.l1.contains(0)
        assert hierarchy.l2.contains(0)
        assert hierarchy.llc.contains(0)

    def test_read_hit_does_not_fetch_again(self, attached):
        hierarchy, stub = attached
        hierarchy.read(0)
        hierarchy.read(0)
        assert stub.fetches == 1

    def test_write_marks_l1_dirty(self, attached):
        hierarchy, _ = attached
        hierarchy.write(64, b"\x01" * 64)
        line = hierarchy.l1.lookup(64, touch=False)
        assert line.dirty and line.data == b"\x01" * 64

    def test_write_visible_through_read(self, attached):
        hierarchy, _ = attached
        hierarchy.write(128, b"\x07" * 64)
        assert hierarchy.read(128) == b"\x07" * 64

    def test_capacity_pressure_writes_back_dirty_data(self, attached,
                                                      tiny_config):
        hierarchy, stub = attached
        lines = tiny_config.llc.num_lines + tiny_config.llc.num_sets
        for i in range(lines):
            hierarchy.write(i * 64, i.to_bytes(8, "little") * 8)
        assert stub.writebacks > 0
        # Every written-back block must carry the exact data written.
        for address, data in stub.store.items():
            assert data == (address // 64).to_bytes(8, "little") * 8

    def test_detached_hierarchy_raises(self, hierarchy):
        with pytest.raises(ConfigError):
            hierarchy.read(0)


class TestRestore:
    def test_restore_dirty_places_line_in_llc(self, hierarchy):
        hierarchy.restore_dirty(4096, b"\x11" * 64)
        line = hierarchy.llc.lookup(4096, touch=False)
        assert line.dirty and line.data == b"\x11" * 64

    def test_invalidate_all(self, hierarchy):
        hierarchy.fill_worst_case(seed=1)
        hierarchy.invalidate_all()
        assert len(hierarchy) == 0


class _OrderedMemory:
    """Memory stub that records the exact ordered op stream it sees."""

    def __init__(self):
        self.store: dict[int, bytes] = {}
        self.calls: list[tuple[str, int, bytes | None]] = []

    def fetch(self, address: int) -> bytes:
        self.calls.append(("r", address, None))
        return self.store.get(address, bytes(64))

    def writeback(self, address: int, data: bytes) -> None:
        self.calls.append(("w", address, data))
        self.store[address] = data


def _mixed_ops(seed: int, num_ops: int, pool_blocks: int):
    import random
    rng = random.Random(seed)
    ops = []
    for i in range(num_ops):
        address = rng.randrange(pool_blocks) * 64
        if rng.random() < 0.4:
            ops.append(("w", address, (i + 1).to_bytes(8, "little") * 8))
        else:
            ops.append(("r", address, None))
    return ops


class TestReplayEpochEquivalence:
    """The fused ``replay_epoch`` path must be indistinguishable from the
    scalar read/write loop — same memory-side op stream (in order), same
    memory contents, same hit/miss counters and resident lines."""

    @staticmethod
    def _observe(hierarchy):
        return {
            "counts": dict(hierarchy.access_counts),
            "levels": [(level.name, level.hits, level.misses)
                       for level in hierarchy.levels],
            "lines": [sorted((line.address, line.data, line.dirty)
                             for line in level.lines())
                      for level in hierarchy.levels],
        }

    def _run_both(self, tiny_config, ops, epoch_ops):
        scalar = CacheHierarchy(tiny_config)
        scalar_mem = _OrderedMemory()
        scalar.attach(scalar_mem.fetch, scalar_mem.writeback)
        for kind, address, data in ops:
            if kind == "w":
                scalar.write(address, data)
            else:
                scalar.read(address)

        batched = CacheHierarchy(tiny_config)
        batched_mem = _OrderedMemory()
        for start in range(0, len(ops), epoch_ops):
            mem_ops, fills = batched.replay_epoch(ops[start:start + epoch_ops])
            fetched = []
            for kind, address, data in mem_ops:
                if kind == "r":
                    fetched.append(batched_mem.fetch(address))
                else:
                    batched_mem.writeback(address, data)
            batched.resolve_pending(fills, fetched)

        assert scalar_mem.calls == batched_mem.calls
        assert scalar_mem.store == batched_mem.store
        assert self._observe(scalar) == self._observe(batched)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_workload_matches_scalar(self, tiny_config, seed):
        self._run_both(tiny_config, _mixed_ops(seed, 3000, 800),
                       epoch_ops=512)

    def test_all_hit_regime(self, tiny_config):
        # Pool far smaller than L1: after warmup every op hits.
        self._run_both(tiny_config, _mixed_ops(6, 2000, 16), epoch_ops=4096)

    def test_thrash_regime_with_tiny_epochs(self, tiny_config):
        # Pool far larger than the LLC: every epoch spills and refills.
        self._run_both(tiny_config, _mixed_ops(7, 2000, 20000), epoch_ops=64)

    def test_degenerate_epochs(self, tiny_config):
        self._run_both(tiny_config, [], epoch_ops=8)
        self._run_both(tiny_config, [("w", 0, b"\x05" * 64)], epoch_ops=8)
