"""Fault classes, FaultPlan mechanics, and NvmDevice integration."""

import pytest

from collections import Counter

from repro.common.errors import ConfigError
from repro.faults import (BitFlip, DroppedWrite, FaultPlan, PowerCut,
                          TornWrite)
from repro.mem.nvm import NvmDevice
from repro.stats.events import WriteKind


class _WearRecorder:
    """Duck-typed stand-in for WearTracker (the device only calls
    record_write)."""

    def __init__(self):
        self.counts = Counter()

    def record_write(self, address: int) -> None:
        self.counts[address] += 1

BLOCK = 64
DATA = bytes(range(BLOCK))
OTHER = bytes(BLOCK - 1 - i for i in range(BLOCK))


def device(size_blocks: int = 64) -> NvmDevice:
    return NvmDevice(size_blocks * BLOCK)


class TestFaultValidation:
    def test_negative_indices_rejected(self):
        with pytest.raises(ConfigError):
            PowerCut(after_writes=-1)
        with pytest.raises(ConfigError):
            DroppedWrite(at_write=-1)
        with pytest.raises(ConfigError):
            TornWrite(at_write=-1)

    def test_torn_prefix_bounds(self):
        with pytest.raises(ConfigError):
            TornWrite(at_write=0, persisted_bytes=BLOCK + 1)
        with pytest.raises(ConfigError):
            TornWrite(at_write=0, persisted_bytes=-1)

    def test_bit_flip_needs_exactly_one_trigger(self):
        with pytest.raises(ConfigError):
            BitFlip()
        with pytest.raises(ConfigError):
            BitFlip(address=0, at_write=0)
        with pytest.raises(ConfigError):
            BitFlip(at_write=0, xor_mask=0)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(ConfigError):
            FaultPlan(["power-cut"])


class TestPowerCut:
    def test_writes_from_budget_on_are_lost(self):
        nvm = device()
        nvm.fault_plan = FaultPlan([PowerCut(after_writes=2)])
        for i in range(4):
            nvm.write(i * BLOCK, DATA, WriteKind.DATA)
        assert nvm.peek(0) == DATA
        assert nvm.peek(BLOCK) == DATA
        assert nvm.peek(2 * BLOCK) == bytes(BLOCK)
        assert nvm.peek(3 * BLOCK) == bytes(BLOCK)
        assert [a for a, _ in nvm.lost_writes] == [2 * BLOCK, 3 * BLOCK]

    def test_write_budget_property_is_a_power_cut(self):
        nvm = device()
        nvm.write_budget = 3
        assert isinstance(nvm.fault_plan.faults[0], PowerCut)
        nvm.write(0, DATA, WriteKind.DATA)
        assert nvm.write_budget == 2
        nvm.write_budget = None
        assert nvm.fault_plan is None

    def test_events_record_every_lost_write(self):
        nvm = device()
        nvm.fault_plan = FaultPlan([PowerCut(after_writes=1)])
        nvm.write(0, DATA, WriteKind.DATA)
        nvm.write(BLOCK, DATA, WriteKind.DATA)
        plan = nvm.restore_power()
        assert len(plan.events) == 1
        assert plan.events[0].write_index == 1
        assert plan.events[0].effect == "lost"


class TestTornDroppedFlip:
    def test_torn_write_persists_prefix_over_old_tail(self):
        nvm = device()
        nvm.poke(0, OTHER)
        nvm.fault_plan = FaultPlan([TornWrite(at_write=0,
                                              persisted_bytes=16)])
        nvm.write(0, DATA, WriteKind.DATA)
        assert nvm.peek(0) == DATA[:16] + OTHER[16:]

    def test_dropped_write_keeps_old_content(self):
        nvm = device()
        nvm.poke(0, OTHER)
        nvm.fault_plan = FaultPlan([DroppedWrite(at_write=1)])
        nvm.write(BLOCK, DATA, WriteKind.DATA)  # index 0: persists
        nvm.write(0, DATA, WriteKind.DATA)      # index 1: dropped
        assert nvm.peek(BLOCK) == DATA
        assert nvm.peek(0) == OTHER
        assert [a for a, _ in nvm.lost_writes] == [0]

    def test_bit_flip_on_write_index(self):
        nvm = device()
        nvm.fault_plan = FaultPlan([BitFlip(at_write=0, byte_offset=5,
                                            xor_mask=0x80)])
        nvm.write(0, DATA, WriteKind.DATA)
        persisted = nvm.peek(0)
        assert persisted[5] == DATA[5] ^ 0x80
        assert persisted[:5] == DATA[:5]
        assert persisted[6:] == DATA[6:]

    def test_bit_flip_on_address_fires_once(self):
        nvm = device()
        nvm.fault_plan = FaultPlan([BitFlip(address=BLOCK, byte_offset=0,
                                            xor_mask=0x01)])
        nvm.write(0, DATA, WriteKind.DATA)
        nvm.write(BLOCK, DATA, WriteKind.DATA)
        nvm.write(BLOCK, DATA, WriteKind.DATA)  # second write: no re-flip
        assert nvm.peek(0) == DATA
        assert nvm.peek(BLOCK) == DATA

    def test_unfired_address_flip_applies_at_power_restore(self):
        """Bit rot while the system is off: the flip lands on the medium
        even though the episode never wrote the target."""
        nvm = device()
        nvm.poke(0, DATA)
        nvm.fault_plan = FaultPlan([BitFlip(address=0, byte_offset=3,
                                            xor_mask=0xFF)])
        nvm.write(BLOCK, DATA, WriteKind.DATA)
        plan = nvm.restore_power()
        assert nvm.peek(0)[3] == DATA[3] ^ 0xFF
        assert plan.events[-1].fault == "bit-flip"
        assert plan.events[-1].effect == "corrupted"


class TestAccountingConsistency:
    """Regression: a lost write must appear in *all three* accounting
    channels (stats, wear, trace) exactly like a persisted one — the
    scheduler/banking ablations replay the trace and must agree with the
    counters even for a dying-power episode."""

    def _run_lossy_episode(self):
        nvm = device()
        nvm.wear = _WearRecorder()
        nvm.trace = []
        nvm.write_budget = 1
        nvm.write(0, DATA, WriteKind.DATA)        # persists
        nvm.write(BLOCK, DATA, WriteKind.DATA)    # lost in flight
        return nvm

    def test_stats_wear_and_trace_all_record_the_lost_write(self):
        nvm = self._run_lossy_episode()
        assert nvm.stats.writes[WriteKind.DATA] == 2
        assert nvm.wear.counts[0] == 1
        assert nvm.wear.counts[BLOCK] == 1
        assert nvm.trace == [(0, True), (BLOCK, True)]

    def test_lost_channel_flags_exactly_the_lost_write(self):
        nvm = self._run_lossy_episode()
        assert nvm.lost_writes == [(BLOCK, WriteKind.DATA)]
        assert nvm.peek(0) == DATA
        assert nvm.peek(BLOCK) == bytes(BLOCK)

    def test_trace_entries_stay_two_tuples(self):
        """Trace consumers unpack (address, is_write); the lost flag lives
        in the separate lost_writes channel, never in the trace shape."""
        nvm = self._run_lossy_episode()
        for entry in nvm.trace:
            address, is_write = entry
            assert isinstance(address, int) and isinstance(is_write, bool)


class TestPlanComposition:
    def test_faults_apply_in_order(self):
        nvm = device()
        nvm.fault_plan = FaultPlan([
            BitFlip(at_write=0, byte_offset=0, xor_mask=0xFF),
            DroppedWrite(at_write=1),
        ])
        nvm.write(0, DATA, WriteKind.DATA)
        nvm.write(BLOCK, DATA, WriteKind.DATA)
        assert nvm.peek(0)[0] == DATA[0] ^ 0xFF
        assert nvm.peek(BLOCK) == bytes(BLOCK)

    def test_remaining_budget_without_power_cut_is_none(self):
        plan = FaultPlan([DroppedWrite(at_write=0)])
        assert plan.remaining_budget() is None
