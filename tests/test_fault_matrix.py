"""The crash matrix and the exhaustive power-cut position sweep.

The matrix pins the qualitative contract (every scheme × fault class either
recovers exactly, detects, or — for nosec only — loses unprotected); the
sweep is the property-style half: a power cut after *every* NVM write index
of a Horus episode, which places the cut at every vault position and every
data/address-block/MAC-block boundary of the coalescing registers.
"""

import pytest

from repro.common.errors import IntegrityError, RecoveryError
from repro.core.system import SecureEpdSystem
from repro.faults.matrix import (DETECTED, FAULT_CLASSES, LOST_UNPROTECTED,
                                 RECOVERED, SCHEME_VARIANTS, fill_lines,
                                 render_markdown, run_cell, run_matrix)

SWEEP_LINES = 10
MATRIX_LINES = 48


@pytest.fixture(scope="module")
def matrix_cells(tiny_config):
    return run_matrix(tiny_config, lines=MATRIX_LINES)


class TestCrashMatrix:
    def test_covers_every_variant_and_fault(self, matrix_cells):
        pairs = {(c.scheme, c.fault) for c in matrix_cells}
        assert len(pairs) == len(matrix_cells)
        for scheme, rotate in SCHEME_VARIANTS:
            name = f"{scheme}+rot" if rotate else scheme
            for fault in FAULT_CLASSES:
                assert (name, fault) in pairs

    def test_zero_silent_corruption_cells(self, matrix_cells):
        assert [c for c in matrix_cells if c.silent] == []

    def test_secure_schemes_detect_or_recover(self, matrix_cells):
        for cell in matrix_cells:
            if cell.scheme.startswith("nosec"):
                continue
            assert cell.outcome in (DETECTED, RECOVERED), cell

    def test_nosec_loses_unprotected(self, matrix_cells):
        nosec = [c for c in matrix_cells if c.scheme == "nosec"]
        assert nosec and all(c.outcome == LOST_UNPROTECTED for c in nosec)

    def test_horus_detects_at_recover_not_first_use(self, matrix_cells):
        """Horus verifies the whole vault before trusting any of it, so the
        error must come from recover(), not from a later read."""
        horus = [c for c in matrix_cells if c.scheme.startswith("horus")]
        assert horus
        for cell in horus:
            assert cell.outcome == DETECTED
            assert cell.detail.startswith("recover:"), cell

    def test_single_cell_runner_matches_matrix(self, tiny_config,
                                               matrix_cells):
        cell = run_cell(tiny_config, "horus-slm", False, "bit-flip",
                        lines=MATRIX_LINES)
        twin = next(c for c in matrix_cells
                    if c.scheme == "horus-slm" and c.fault == "bit-flip")
        assert (cell.outcome, cell.detail) == (twin.outcome, twin.detail)

    def test_markdown_table_has_all_rows(self, matrix_cells):
        table = render_markdown(matrix_cells)
        assert table.count("\n") == len(matrix_cells) + 1
        assert "| horus-dlm+rot | power-cut |" in table


class TestPowerCutSweep:
    """Exhaustive cut-position property: for every write index b of a clean
    episode with W writes, cutting power after b writes must be detected
    (b < W) or recover bit-exact (b = W)."""

    @pytest.mark.parametrize("scheme,rotate", [
        ("horus-slm", False),
        ("horus-slm", True),
        ("horus-dlm", False),
        ("horus-dlm", True),
    ])
    def test_every_cut_position(self, tiny_config, scheme, rotate):
        def episode(budget=None):
            system = SecureEpdSystem(tiny_config, scheme=scheme,
                                     rotate_vault=rotate)
            expected = fill_lines(system, SWEEP_LINES)
            if budget is not None:
                system.nvm.write_budget = budget
            system.crash(seed=7)
            system.nvm.write_budget = None
            return system, expected

        clean, _ = episode()
        total = clean.stats.total_writes
        vaulted = clean.drain_counter.ephemeral
        # The sweep must cross every vault position and the coalesced
        # address/MAC block writes, or it proves less than it claims.
        assert total > vaulted > SWEEP_LINES

        for budget in range(total + 1):
            system, expected = episode(budget)
            if budget == total:
                system.recover()
                for address, data in expected.items():
                    assert system.read(address) == data
            else:
                with pytest.raises((IntegrityError, RecoveryError)):
                    system.recover()
