"""Golden campaign-matrix outcomes, pinned with a weakened-MAC teeth test.

The full variants × scenarios × windows grid is deterministic, so every
cell's outcome (and every skip's reason) at the 1/128 hierarchy scale is
committed as ``tests/golden/campaign_matrix.json``.  A scheme tweak, an
applicability change, or a classification drift shows up as a byte-level
fixture diff that must be reviewed and regenerated deliberately:

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_campaign.py

The teeth test proves the grid can actually move: with the MAC engine
weakened to a constant (every block "verifies"), a tamper cell that the
fixture records as detected degrades to silent-corruption — i.e. the
SILENT classification is reachable and the invariant is doing work.
"""

import json
import os
from pathlib import Path

import pytest

from repro.campaigns.classify import DETECTED, SILENT
from repro.campaigns.engine import (
    CAMPAIGN_LINES,
    run_campaign,
    run_campaign_cell,
)
from repro.campaigns.scenarios import (
    DEFAULT_SCENARIOS,
    PRE_RECOVERY,
    SCHEME_VARIANTS,
    WINDOWS,
)
from repro.crypto.engine import MAC_SIZE, MacEngine

GOLDEN_PATH = Path(__file__).parent / "golden" / "campaign_matrix.json"


def current_matrix(config) -> dict:
    result = run_campaign(config)
    return {
        "lines": result.lines,
        "lattice": result.lattice,
        "outcomes": result.outcome_counts(),
        "cells": {f"{c.scheme}|{c.scenario}|{c.window}": c.outcome
                  for c in result.cells},
        "skips": {f"{s.scheme}|{s.scenario}|{s.window}": s.reason
                  for s in result.skips},
    }


@pytest.fixture(scope="module")
def golden(small_config) -> dict:
    if os.environ.get("REPRO_REGOLDEN") == "1":
        matrix = current_matrix(small_config)
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(matrix, indent=2, sort_keys=True) + "\n")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenCampaignMatrix:
    def test_grid_matches_fixture(self, golden, small_config):
        assert current_matrix(small_config) == golden, (
            "campaign grid drifted from the committed outcomes; "
            "if intentional, regenerate with REPRO_REGOLDEN=1")

    def test_fixture_has_zero_silent_cells(self, golden):
        assert golden["outcomes"].get(SILENT, 0) == 0
        assert all(outcome != SILENT
                   for outcome in golden["cells"].values())

    def test_fixture_is_lattice_complete(self, golden):
        expected = (len(SCHEME_VARIANTS) * len(DEFAULT_SCENARIOS)
                    * len(WINDOWS))
        assert golden["lattice"] == expected
        assert len(golden["cells"]) + len(golden["skips"]) == expected

    def test_fixture_meets_the_cell_floor(self, golden):
        assert len(golden["cells"]) >= 200


class TestWeakenedMacTeeth:
    """Plant the bug the invariant exists to catch and watch a cell flip."""

    @pytest.fixture()
    def weakened_macs(self, monkeypatch):
        constant = b"\xfe" * MAC_SIZE

        def weak_block_mac(self, kind, ciphertext, address, counter,
                           domain=None):
            self._stats.record_mac(kind)
            return constant

        def weak_block_mac_batch(self, kind, buffer, addresses, counters,
                                 domain=None, frames=None):
            self._stats.record_mac(kind, len(addresses))
            return [constant] * len(addresses)

        monkeypatch.setattr(MacEngine, "block_mac", weak_block_mac)
        monkeypatch.setattr(MacEngine, "block_mac_batch",
                            weak_block_mac_batch)

    def _tamper_cell(self, config):
        scenario = next(s for s in DEFAULT_SCENARIOS
                        if s.kind == "attack" and s.action == "tamper"
                        and s.target == "data")
        return run_campaign_cell(config, "base-eu", False, scenario,
                                 PRE_RECOVERY, CAMPAIGN_LINES)

    def test_sound_macs_detect_the_tamper(self, golden, small_config):
        cell = self._tamper_cell(small_config)
        assert cell.outcome == DETECTED
        key = f"{cell.scheme}|{cell.scenario}|{cell.window}"
        assert golden["cells"][key] == DETECTED

    def test_weakened_macs_flip_the_cell_to_silent(self, small_config,
                                                   weakened_macs):
        cell = self._tamper_cell(small_config)
        assert cell.outcome == SILENT, (
            "a constant-MAC engine must turn a detected tamper into "
            f"silent corruption, got {cell.outcome}: {cell.detail}")
