"""Parallel-vs-serial equivalence of the experiment runner.

Every experiment is a pure function of fixed-seed drain episodes
(``FILL_SEED``/``DRAIN_SEED``), so fanning work out across processes must
not change a single payload byte.  These tests pin that, plus the runner's
profile accounting and its episode-prewarm registry.
"""

import pytest

from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    EXPERIMENT_EPISODES,
    EXPERIMENTS,
    run_experiments,
    run_experiments_profiled,
)

# Small but representative: shared-suite consumers, a sweep-free analytic
# experiment, and an ablation that drains through suite.episode().
NAMES = ["headline", "fig11", "fig13", "fig16", "ablation-coalescing"]
SCALE = 128


@pytest.fixture(scope="module")
def serial_results() -> list[ExperimentResult]:
    return run_experiments(NAMES, scale=SCALE, jobs=1)


class TestParallelEquivalence:
    def test_jobs4_payloads_identical_to_jobs1(self, serial_results):
        parallel = run_experiments(NAMES, scale=SCALE, jobs=4)
        assert [r.to_dict() for r in parallel] \
            == [r.to_dict() for r in serial_results]

    def test_results_come_back_in_request_order(self):
        results = run_experiments(list(reversed(NAMES)), scale=SCALE, jobs=2)
        assert [r.experiment_id for r in results] == list(reversed(NAMES))

    def test_jobs2_also_identical(self, serial_results):
        parallel = run_experiments(NAMES, scale=SCALE, jobs=2)
        assert [r.to_dict() for r in parallel] \
            == [r.to_dict() for r in serial_results]


class TestRunProfile:
    def test_serial_profile_records_every_experiment(self):
        results, profile = run_experiments_profiled(
            ["fig16", "ablation-coalescing"], scale=SCALE, jobs=1)
        assert len(results) == 2
        assert profile.jobs == 1
        names = [r.name for r in profile.records
                 if r.kind == "experiment"]
        assert names == ["fig16", "ablation-coalescing"]
        assert all(r.worker == "main" for r in profile.records)
        assert all(r.source == "computed" for r in profile.records)
        assert profile.wall_seconds > 0

    def test_serial_profile_subdivides_episodes_into_phases(self):
        """--profile timelines show where inside an episode time went:
        each computed drain episode contributes fill: and drain: spans."""
        results, profile = run_experiments_profiled(
            ["fig11"], scale=SCALE, jobs=1)
        phases = [r for r in profile.records if r.kind == "phase"]
        stages = {r.name.split(":", 1)[0] for r in phases}
        assert {"fill", "drain"} <= stages
        assert all(r.seconds >= 0 and r.started >= 0 for r in phases)
        assert profile.render()  # phases render in the same timeline

    def test_parallel_profile_tracks_episodes_and_workers(self):
        results, profile = run_experiments_profiled(
            ["fig11"], scale=SCALE, jobs=2)
        assert results[0].experiment_id == "fig11"
        episodes = [r for r in profile.records if r.kind == "episode"]
        assert {r.name for r in episodes} == {
            "drain:nosec", "drain:base-lu", "drain:base-eu",
            "drain:horus-slm", "drain:horus-dlm"}
        assert all(r.worker != "main" for r in episodes)
        assert profile.busy_seconds > 0
        assert profile.render()  # table + timeline render without error

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["bogus"], scale=SCALE, jobs=2)


class TestEpisodeRegistry:
    def test_every_experiment_has_a_prewarm_entry(self):
        assert set(EXPERIMENT_EPISODES) == set(EXPERIMENTS)

    def test_sweep_experiments_prewarm_every_llc_size(self):
        llc_sizes = {llc for _, llc in EXPERIMENT_EPISODES["fig14"]}
        assert len(llc_sizes) == 3
