"""Split counter blocks and the Horus drain counter."""

import pytest

from repro.common.errors import CounterOverflowError
from repro.crypto.counters import DrainCounter, SplitCounterBlock


class TestSplitCounterBlock:
    def test_fresh_block_is_zero(self):
        block = SplitCounterBlock()
        assert block.is_zero()
        assert block.counter_for(0) == 0
        assert block.counter_for(63) == 0

    def test_counter_concatenates_major_and_minor(self):
        block = SplitCounterBlock(major=3, minors=[5] + [0] * 63)
        assert block.counter_for(0) == (3 << 7) | 5

    def test_increment_advances_one_slot(self):
        block = SplitCounterBlock()
        assert block.increment(7) is False
        assert block.minors[7] == 1
        assert block.minors[6] == 0

    def test_minor_overflow_bumps_major_and_resets(self):
        block = SplitCounterBlock(major=0, minors=[127] + [3] * 63)
        assert block.will_overflow(0)
        overflowed = block.increment(0)
        assert overflowed is True
        assert block.major == 1
        assert all(minor == 0 for minor in block.minors)

    def test_counters_never_repeat_across_overflow(self):
        """A block's counter stream must be strictly increasing even through
        a minor-counter wrap (the split-counter security invariant)."""
        block = SplitCounterBlock()
        seen = set()
        for _ in range(300):
            block.increment(0)
            value = block.counter_for(0)
            assert value not in seen
            seen.add(value)

    def test_major_exhaustion_raises(self):
        block = SplitCounterBlock(major=(1 << 64) - 1,
                                  minors=[127] + [0] * 63)
        with pytest.raises(CounterOverflowError):
            block.increment(0)

    def test_rejects_out_of_range_values(self):
        with pytest.raises(CounterOverflowError):
            SplitCounterBlock(major=1 << 64)
        with pytest.raises(CounterOverflowError):
            SplitCounterBlock(minors=[128] + [0] * 63)
        with pytest.raises(ValueError):
            SplitCounterBlock(minors=[0] * 10)

    def test_copy_is_independent(self):
        block = SplitCounterBlock()
        copy = block.copy()
        copy.increment(0)
        assert block.minors[0] == 0


class TestCounterBlockWireFormat:
    def test_zero_block_serializes_to_zeros(self):
        assert SplitCounterBlock().to_bytes() == bytes(64)

    def test_roundtrip(self):
        block = SplitCounterBlock(major=0xDEADBEEF,
                                  minors=[i % 128 for i in range(64)])
        assert SplitCounterBlock.from_bytes(block.to_bytes()) == block

    def test_exactly_64_bytes(self):
        """64-bit major + 64 x 7-bit minors = exactly one cache line."""
        assert len(SplitCounterBlock().to_bytes()) == 64

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            SplitCounterBlock.from_bytes(bytes(63))


class TestDrainCounter:
    def test_next_is_strictly_monotonic(self):
        dc = DrainCounter()
        values = [dc.next() for _ in range(100)]
        assert values == sorted(set(values))

    def test_episode_tracking(self):
        dc = DrainCounter()
        dc.begin_episode()
        for _ in range(10):
            dc.next()
        assert dc.ephemeral == 10
        assert dc.value == 10

    def test_monotonic_across_episodes(self):
        """DC never repeats even across drain episodes — the property that
        makes CHV pads unique without persisted per-block counters."""
        dc = DrainCounter()
        dc.begin_episode()
        first = [dc.next() for _ in range(5)]
        dc.clear_ephemeral()
        dc.begin_episode()
        second = [dc.next() for _ in range(5)]
        assert not set(first) & set(second)

    def test_value_at_reconstructs_episode_counters(self):
        dc = DrainCounter(initial=1000)
        dc.begin_episode()
        used = [dc.next() for _ in range(8)]
        for position, value in enumerate(used):
            assert dc.value_at(position) == value

    def test_value_at_rejects_out_of_episode_positions(self):
        dc = DrainCounter()
        dc.begin_episode()
        dc.next()
        with pytest.raises(CounterOverflowError):
            dc.value_at(1)
        with pytest.raises(CounterOverflowError):
            dc.value_at(-1)

    def test_clear_ephemeral_after_recovery(self):
        dc = DrainCounter()
        dc.begin_episode()
        dc.next()
        dc.clear_ephemeral()
        assert dc.ephemeral == 0
        assert dc.value == 1  # DC itself is never reset

    def test_rejects_negative_initial(self):
        with pytest.raises(CounterOverflowError):
            DrainCounter(initial=-1)
