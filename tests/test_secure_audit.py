"""Full-memory integrity audit."""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.errors import IntegrityError
from repro.secure.audit import audit_memory
from tests.test_secure_controller import make_controller, payload


def _populated_controller(blocks: int = 12):
    controller = make_controller("eager")
    for i in range(blocks):
        controller.write(i * 4096, payload(i))
    controller.flush_metadata()
    controller.drop_volatile_state()
    return controller


class TestCleanAudit:
    def test_untampered_memory_audits_clean(self):
        controller = _populated_controller()
        report = audit_memory(controller)
        assert report.clean
        assert report.blocks_checked == 12

    def test_audit_skips_metadata_regions(self):
        controller = _populated_controller(4)
        report = audit_memory(controller)
        # Counters/tree/MACs were written too, but only data is audited.
        assert report.blocks_checked == 4

    def test_empty_memory_audits_clean(self):
        controller = make_controller("eager")
        report = audit_memory(controller)
        assert report.clean and report.blocks_checked == 0


class TestTamperLocalization:
    def test_single_flip_names_exactly_one_address(self):
        controller = _populated_controller()
        Adversary(controller.nvm).tamper(3 * 4096)
        report = audit_memory(controller)
        assert report.failed_addresses == [3 * 4096]
        assert report.blocks_checked == 12

    def test_multiple_tampered_blocks_all_reported(self):
        controller = _populated_controller()
        adversary = Adversary(controller.nvm)
        for i in (1, 5, 9):
            adversary.tamper(i * 4096)
        report = audit_memory(controller)
        assert report.failed_addresses == [4096, 5 * 4096, 9 * 4096]

    def test_counter_tamper_fails_the_covered_page_only(self):
        controller = _populated_controller()
        Adversary(controller.nvm).tamper(
            controller.layout.counter_block_address(0))
        report = audit_memory(controller)
        assert 0 in report.failed_addresses
        assert 4096 not in report.failed_addresses

    def test_fail_fast_raises(self):
        controller = _populated_controller()
        Adversary(controller.nvm).tamper(0)
        with pytest.raises(IntegrityError):
            audit_memory(controller, fail_fast=True)

    def test_audit_after_horus_recovery_is_clean(self, tiny_config):
        from repro.core.system import SecureEpdSystem
        system = SecureEpdSystem(tiny_config, scheme="horus-slm",
                                 recovery_mode="writeback")
        for i in range(16):
            system.write(i * 4096, payload(i))
        system.crash(seed=2)
        system.recover()
        report = audit_memory(system.controller)
        assert report.clean
        assert report.blocks_checked >= 16
