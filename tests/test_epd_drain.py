"""Drain engines: non-secure reference and the secure baselines."""

import pytest

from repro.core.system import SecureEpdSystem
from repro.epd.power import EADR_MIN_HOLDUP_MS, holdup_budget
from repro.stats.events import MacKind, ReadKind, WriteKind


@pytest.fixture(scope="module")
def reports(tiny_config):
    out = {}
    for scheme in ("nosec", "base-lu", "base-eu"):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        system.fill_worst_case(seed=1)
        out[scheme] = system.crash(seed=2)
    return out


class TestNonSecureDrain:
    def test_one_write_per_flushed_line(self, reports, tiny_config):
        report = reports["nosec"]
        assert report.flushed_blocks == tiny_config.total_cache_lines
        assert report.total_writes == report.flushed_blocks
        assert report.total_reads == 0
        assert report.total_macs == 0

    def test_all_writes_are_plain_data(self, reports):
        stats = reports["nosec"].stats
        assert stats.writes[WriteKind.DATA] == stats.total_writes

    def test_drain_time_is_serialized_writes(self, reports, tiny_config):
        report = reports["nosec"]
        assert report.cycles == report.flushed_blocks * 2000

    def test_crash_empties_the_hierarchy(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        assert len(system.hierarchy) == 0


class TestBaselineSecureDrain:
    def test_flushes_every_line_in_place(self, reports, tiny_config):
        for scheme in ("base-lu", "base-eu"):
            report = reports[scheme]
            assert report.flushed_blocks == tiny_config.total_cache_lines
            assert report.stats.writes[WriteKind.DATA] == report.flushed_blocks

    def test_secure_drain_explodes_memory_requests(self, reports):
        """The paper's motivating observation (Fig. 6)."""
        nosec = reports["nosec"].total_memory_requests
        assert reports["base-lu"].total_memory_requests > 4 * nosec
        assert reports["base-eu"].total_memory_requests > 4 * nosec

    def test_lazy_needs_more_requests_than_eager(self, reports):
        assert reports["base-lu"].total_memory_requests > \
            reports["base-eu"].total_memory_requests

    def test_eager_needs_more_macs_than_lazy(self, reports):
        assert reports["base-eu"].total_macs > reports["base-lu"].total_macs

    def test_metadata_fetches_dominate_reads(self, reports):
        stats = reports["base-lu"].stats
        metadata_reads = (stats.reads[ReadKind.COUNTER]
                          + stats.reads[ReadKind.TREE_NODE]
                          + stats.reads[ReadKind.MAC])
        assert metadata_reads == stats.total_reads

    def test_lazy_flushes_shadow_eager_flushes_home(self, reports):
        assert reports["base-lu"].stats.writes[WriteKind.SHADOW] > 0
        assert reports["base-eu"].stats.writes[WriteKind.SHADOW] == 0
        assert reports["base-eu"].stats.macs[MacKind.CACHE_TREE] == 0

    def test_every_flushed_ciphertext_lands_in_memory(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        system.fill_worst_case(seed=1)
        addresses = [line.address for line in system.hierarchy.llc.lines()]
        system.crash(seed=2)
        for address in addresses:
            assert system.nvm.backend.is_written(address)


class TestDrainReportAndHoldup:
    def test_report_seconds_match_cycles(self, reports, tiny_config):
        report = reports["base-lu"]
        assert report.seconds == pytest.approx(
            report.cycles / tiny_config.frequency_hz)

    def test_holdup_budget_normalization(self, reports):
        budget = holdup_budget(reports["base-lu"], reports["nosec"])
        assert budget.relative_to_nosec == pytest.approx(
            reports["base-lu"].seconds / reports["nosec"].seconds)
        assert budget.memory_operations == \
            reports["base-lu"].total_memory_requests

    def test_holdup_without_reference(self, reports):
        budget = holdup_budget(reports["nosec"])
        assert budget.relative_to_nosec is None
        assert budget.scheme == "nosec"

    def test_eadr_minimum_flag(self, reports):
        budget = holdup_budget(reports["nosec"])
        assert budget.meets_eadr_minimum == \
            (budget.holdup_ms <= EADR_MIN_HOLDUP_MS)
