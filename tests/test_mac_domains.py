"""MAC domain separation, pinned by the attacks it exists to stop.

Every MAC in the system is computed over a (key, inputs) pair that an
adversary can partially steer, so two different *uses* of the engine over
identical inputs must never produce interchangeable tags.  These tests mount
the cross-domain splices directly: forge a tag in one domain, install it
where another domain's tag belongs, and require recovery to refuse it.
"""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.constants import MAC_SIZE
from repro.core.chv import MAC_GROUP_DLM
from repro.core.system import SecureEpdSystem
from repro.common.errors import IntegrityError
from repro.crypto.primitives import MacDomain
from repro.stats.events import MacKind


def _crashed(config, scheme):
    system = SecureEpdSystem(config, scheme=scheme)
    system.fill_worst_case(seed=1)
    system.crash(seed=2)
    return system


def _vault_inputs(system, position):
    """Recover (ciphertext, address, counter) for one vault position from
    the raw medium, exactly as an off-chip adversary would."""
    chv = system.drain_engine._chv
    adversary = Adversary(system.nvm)
    ciphertext = adversary.observe(chv.data_address(position))
    raw = adversary.observe(chv.address_block_address(position // 8))
    slot = position % 8
    address = int.from_bytes(raw[slot * 8:(slot + 1) * 8], "little")
    counter = system.drain_counter.value_at(position)
    return ciphertext, address, counter


class TestVaultMacSplice:
    """A runtime data MAC spliced into a CHV MAC slot must not verify.

    Before domain separation, ``block_mac`` ignored its kind, so the
    DATA_PROTECT tag over the vault's exact (ciphertext, address, counter)
    *equalled* the stored CHV tag and the splice passed recovery."""

    def test_data_domain_tag_differs_from_stored_vault_tag(self, tiny_config):
        system = _crashed(tiny_config, "horus-slm")
        ciphertext, address, counter = _vault_inputs(system, 0)
        mac = system.controller.mac
        stored = Adversary(system.nvm).observe(
            system.drain_engine._chv.mac_block_address(0))[:MAC_SIZE]
        # Same inputs, vault domain: reconstructs the stored tag exactly...
        assert mac.block_mac(MacKind.VERIFY, ciphertext, address, counter,
                             domain=MacDomain.CHV_DATA) == stored
        # ...same inputs, runtime data domain: a different tag.
        assert mac.block_mac(MacKind.DATA_PROTECT, ciphertext, address,
                             counter) != stored

    def test_spliced_data_mac_is_rejected_at_recovery(self, tiny_config):
        system = _crashed(tiny_config, "horus-slm")
        ciphertext, address, counter = _vault_inputs(system, 0)
        forged = system.controller.mac.block_mac(
            MacKind.DATA_PROTECT, ciphertext, address, counter)
        chv = system.drain_engine._chv
        adversary = Adversary(system.nvm)
        block = adversary.observe(chv.mac_block_address(0))
        adversary.spoof(chv.mac_block_address(0),
                        forged + block[MAC_SIZE:])
        with pytest.raises(IntegrityError):
            system.recover()


class TestLevelTwoDigestSplice:
    """DLM second-level MACs live in their own domain: a tree-update digest
    over the same first-level concatenation must not substitute."""

    def _level2_state(self, tiny_config):
        system = _crashed(tiny_config, "horus-dlm")
        mac = system.controller.mac
        concat = b"".join(
            mac.block_mac(MacKind.VERIFY, *_vault_inputs(system, position),
                          domain=MacDomain.CHV_DATA)
            for position in range(8))
        chv = system.drain_engine._chv
        l2_address = chv.mac_block_address(0, MAC_GROUP_DLM)
        stored = Adversary(system.nvm).observe(l2_address)
        return system, concat, l2_address, stored

    def test_node_domain_digest_differs_from_stored_level2(self, tiny_config):
        system, concat, _, stored = self._level2_state(tiny_config)
        mac = system.controller.mac
        assert mac.digest_mac(MacKind.VERIFY, concat,
                              domain=MacDomain.CHV_LEVEL2) \
            == stored[:MAC_SIZE]
        assert mac.digest_mac(MacKind.TREE_UPDATE, concat) \
            != stored[:MAC_SIZE]

    def test_spliced_tree_digest_is_rejected_at_recovery(self, tiny_config):
        system, concat, l2_address, stored = self._level2_state(tiny_config)
        forged = system.controller.mac.digest_mac(MacKind.TREE_UPDATE, concat)
        Adversary(system.nvm).spoof(l2_address,
                                    forged + stored[MAC_SIZE:])
        with pytest.raises(IntegrityError):
            system.recover()


class TestShadowAddressPayloads:
    """The baseline's shadow dump authenticates its address payload blocks:
    re-homing restored metadata by editing an address must be detected."""

    def _crashed_baseline(self, config):
        system = SecureEpdSystem(config, scheme="base-lu")
        for i in range(8):
            system.controller.write(i * 4096, bytes([0x09]) * 64)
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        assert system.controller.shadow_count > 0
        return system

    def test_tampered_address_payload_fails_recovery(self, tiny_config):
        system = self._crashed_baseline(tiny_config)
        shadow = system.controller.layout.shadow
        first_payload = shadow.block_at(system.controller.shadow_count)
        Adversary(system.nvm).tamper(first_payload, byte_offset=0)
        with pytest.raises(IntegrityError):
            system.recover()

    def test_rehomed_address_fails_recovery(self, tiny_config):
        system = self._crashed_baseline(tiny_config)
        shadow = system.controller.layout.shadow
        payload_address = shadow.block_at(system.controller.shadow_count)
        adversary = Adversary(system.nvm)
        raw = bytearray(adversary.observe(payload_address))
        raw[0:8], raw[8:16] = raw[8:16], raw[0:8]   # swap two homes
        adversary.spoof(payload_address, bytes(raw))
        with pytest.raises(IntegrityError):
            system.recover()
