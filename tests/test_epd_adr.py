"""ADR (WPQ-only persistence) system: the pre-EPD world the paper motivates
against."""

import pytest

from repro.common.errors import ConfigError
from repro.epd.adr import AdrSecureSystem


@pytest.fixture
def adr(tiny_config) -> AdrSecureSystem:
    return AdrSecureSystem(tiny_config, wpq_depth=8)


def payload(tag: int) -> bytes:
    return tag.to_bytes(8, "little") * 8


class TestPersistSemantics:
    def test_unpersisted_writes_are_lost_on_crash(self, adr):
        adr.write(0, payload(1))
        adr.crash()
        assert adr.read(0) == bytes(64)   # volatile write vanished

    def test_persisted_writes_survive_crash(self, adr):
        adr.write(0, payload(1))
        adr.persist(0)
        adr.crash()
        assert adr.read(0) == payload(1)

    def test_partial_persistence(self, adr):
        adr.write(0, payload(1))
        adr.write(4096, payload(2))
        adr.persist(0)                     # only the first is durable
        adr.crash()
        assert adr.read(0) == payload(1)
        assert adr.read(4096) == bytes(64)

    def test_is_persisted_tracks_nvm_state(self, adr):
        adr.write(0, payload(1))
        assert not adr.is_persisted(0)
        adr.persist(0)
        assert adr.is_persisted(0)

    def test_persist_of_uncached_line_is_a_noop(self, adr):
        before = adr.persists
        adr.persist(8192)
        assert adr.persists == before


class TestPersistCost:
    def test_each_persist_pays_secure_write_ops(self, adr):
        adr.write(0, payload(1))
        before = adr.stats.total_memory_requests
        adr.persist(0)
        assert adr.stats.total_memory_requests > before

    def test_persist_critical_cycles_grow_with_persists(self, tiny_config):
        adr = AdrSecureSystem(tiny_config)
        costs = []
        for i in range(3):
            adr.write(i * 4096, payload(i))
            adr.persist(i * 4096)
            costs.append(adr.persist_critical_cycles())
        assert costs[0] < costs[1] < costs[2]

    def test_wpq_saturation_counts_stalls(self, tiny_config):
        adr = AdrSecureSystem(tiny_config, wpq_depth=2)
        for i in range(6):
            adr.write(i * 4096, payload(i))
            adr.persist(i * 4096)
        assert adr.persist_stalls == 4   # everything past the 2-deep queue

    def test_rejects_bad_wpq_depth(self, tiny_config):
        with pytest.raises(ConfigError):
            AdrSecureSystem(tiny_config, wpq_depth=0)


class TestAdrVsEpdContrast:
    def test_adr_runtime_requests_exceed_epd(self, tiny_config):
        """The paper's motivation in one assertion."""
        from repro.core.system import SecureEpdSystem
        adr = AdrSecureSystem(tiny_config)
        epd = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        for i in range(32):
            # 65-line stride: distinct counter pages AND distinct cache sets
            # (a pure 4 KiB stride would conflict-thrash the tiny caches).
            address = i * 65 * 64
            adr.write(address, payload(i))
            adr.persist(address)
            epd.write(address, payload(i))
        assert adr.stats.total_memory_requests > \
            4 * epd.stats.total_memory_requests
