"""Metadata caches (counter / MAC / tree-node caches)."""

import pytest

from repro.common.config import CacheConfig
from repro.metadata.cache import MetadataCache, MetaLine


@pytest.fixture
def cache() -> MetadataCache:
    # 4 sets x 2 ways.
    return MetadataCache(CacheConfig("meta", 512, 2, 1))


def _addr(set_index: int, tag: int) -> int:
    return (tag * 4 + set_index) * 64


class TestBasicOperations:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(0) is None
        cache.insert(MetaLine(0, "value"))
        assert cache.lookup(0).value == "value"
        assert cache.hits == 1 and cache.misses == 1

    def test_holds_arbitrary_objects(self, cache):
        payload = bytearray(64)
        cache.insert(MetaLine(0, payload))
        assert cache.lookup(0).value is payload

    def test_lru_eviction_returns_victim(self, cache):
        cache.insert(MetaLine(_addr(0, 0), "a"))
        cache.insert(MetaLine(_addr(0, 1), "b"))
        victim = cache.insert(MetaLine(_addr(0, 2), "c"))
        assert victim.value == "a"

    def test_reinsert_same_address_replaces(self, cache):
        cache.insert(MetaLine(0, "a"))
        assert cache.insert(MetaLine(0, "b")) is None
        assert cache.lookup(0).value == "b"
        assert len(cache) == 1

    def test_lookup_refreshes_lru(self, cache):
        cache.insert(MetaLine(_addr(0, 0), "a"))
        cache.insert(MetaLine(_addr(0, 1), "b"))
        cache.lookup(_addr(0, 0))
        victim = cache.insert(MetaLine(_addr(0, 2), "c"))
        assert victim.value == "b"

    def test_invalidate(self, cache):
        cache.insert(MetaLine(0, "x"))
        assert cache.invalidate(0).value == "x"
        assert cache.invalidate(0) is None
        assert not cache.contains(0)


class TestDirtyTracking:
    def test_dirty_lines(self, cache):
        cache.insert(MetaLine(_addr(0, 0), "a", dirty=True))
        cache.insert(MetaLine(_addr(1, 0), "b", dirty=False))
        assert [line.value for line in cache.dirty_lines()] == ["a"]

    def test_mutating_resident_line_state(self, cache):
        cache.insert(MetaLine(0, "a"))
        cache.lookup(0).dirty = True
        assert list(cache.dirty_lines())[0].address == 0

    def test_clear(self, cache):
        cache.insert(MetaLine(0, "a"))
        cache.clear()
        assert len(cache) == 0
        assert list(cache.lines()) == []
