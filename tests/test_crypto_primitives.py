"""Counter-mode encryption and MAC primitives."""

import pytest

from repro.crypto import primitives

KEY = b"unit-test-key"


class TestPadGeneration:
    def test_pad_is_block_sized(self):
        assert len(primitives.generate_pad(KEY, 0, 0)) == 64

    def test_pad_is_deterministic(self):
        assert primitives.generate_pad(KEY, 64, 7) == \
            primitives.generate_pad(KEY, 64, 7)

    def test_spatial_uniqueness(self):
        """Same counter, different address -> different pad (Fig. 2)."""
        assert primitives.generate_pad(KEY, 0, 5) != \
            primitives.generate_pad(KEY, 64, 5)

    def test_temporal_uniqueness(self):
        """Same address, different counter -> different pad."""
        assert primitives.generate_pad(KEY, 0, 5) != \
            primitives.generate_pad(KEY, 0, 6)

    def test_key_separation(self):
        assert primitives.generate_pad(b"k1", 0, 0) != \
            primitives.generate_pad(b"k2", 0, 0)


class TestEncryption:
    def test_roundtrip(self):
        plaintext = bytes(range(64))
        ciphertext = primitives.encrypt_block(KEY, 4096, 9, plaintext)
        assert ciphertext != plaintext
        assert primitives.decrypt_block(KEY, 4096, 9, ciphertext) == plaintext

    def test_wrong_counter_fails_to_decrypt(self):
        plaintext = bytes(64)
        ciphertext = primitives.encrypt_block(KEY, 0, 1, plaintext)
        assert primitives.decrypt_block(KEY, 0, 2, ciphertext) != plaintext

    def test_wrong_address_fails_to_decrypt(self):
        plaintext = bytes(64)
        ciphertext = primitives.encrypt_block(KEY, 0, 1, plaintext)
        assert primitives.decrypt_block(KEY, 64, 1, ciphertext) != plaintext

    def test_identical_plaintexts_have_distinct_ciphertexts(self):
        """The property CHV encryption must keep across drain episodes."""
        plaintext = b"\xaa" * 64
        c1 = primitives.encrypt_block(KEY, 0, 1, plaintext)
        c2 = primitives.encrypt_block(KEY, 0, 2, plaintext)
        c3 = primitives.encrypt_block(KEY, 64, 1, plaintext)
        assert len({c1, c2, c3}) == 3

    def test_xor_block_involution(self):
        a, b = bytes(range(64)), b"\x5c" * 64
        assert primitives.xor_block(primitives.xor_block(a, b), b) == a


class TestMac:
    def test_mac_is_8_bytes(self):
        assert len(primitives.compute_mac(KEY, b"data")) == 8

    def test_mac_depends_on_every_part(self):
        base = primitives.compute_mac(KEY, b"aa", b"bb")
        assert primitives.compute_mac(KEY, b"aa", b"bc") != base
        assert primitives.compute_mac(KEY, b"ab", b"bb") != base

    def test_mac_depends_on_key(self):
        assert primitives.compute_mac(b"k1", b"x") != \
            primitives.compute_mac(b"k2", b"x")

    def test_int_field_is_fixed_width(self):
        assert primitives.int_field(0) == bytes(8)
        assert primitives.int_field(1, 16) == b"\x01" + bytes(15)
        with pytest.raises(OverflowError):
            primitives.int_field(1 << 64)
