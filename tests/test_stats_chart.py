"""ASCII bar-chart rendering."""

import pytest

from repro.experiments.result import ExperimentResult
from repro.stats.chart import chart_experiment, render_bars, render_grouped


class TestRenderBars:
    def test_largest_value_spans_full_width(self):
        text = render_bars(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_are_printed(self):
        text = render_bars(["x"], [1.25])
        assert "1.250" in text

    def test_labels_align(self):
        text = render_bars(["a", "longer"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_nonzero_values_get_at_least_one_cell(self):
        text = render_bars(["tiny", "huge"], [0.001, 100.0], width=10)
        assert text.splitlines()[0].count("#") == 1

    def test_zero_value_gets_no_bar(self):
        text = render_bars(["zero", "one"], [0.0, 1.0], width=10)
        assert text.splitlines()[0].count("#") == 0

    def test_explicit_reference_scaling(self):
        text = render_bars(["a"], [5.0], width=10, reference=10.0)
        assert text.count("#") == 5

    def test_values_above_reference_clamp(self):
        text = render_bars(["a"], [20.0], width=10, reference=10.0)
        assert text.count("#") == 10

    def test_empty_input(self):
        assert render_bars([], []) == ""

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0], width=0)


class TestRenderGrouped:
    def test_groups_share_a_scale(self):
        text = render_grouped({
            "8MB": {"base": 10.0, "horus": 1.0},
            "16MB": {"base": 20.0, "horus": 2.0},
        }, width=10)
        assert "8MB:" in text and "16MB:" in text
        lines = [l for l in text.splitlines() if "#" in l]
        # base@16MB is the global peak: 10 cells; base@8MB half: 5.
        assert lines[0].count("#") == 5
        assert lines[2].count("#") == 10


class TestChartExperiment:
    def test_charts_last_numeric_column(self):
        result = ExperimentResult(
            "figN", "t", ["scheme", "count", "x nosec"],
            [["nosec", 100, 1.0], ["base", 1000, 10.1],
             ["note", "n/a", "skip-me"]],
            "p")
        text = chart_experiment(result, width=10)
        assert text.startswith("figN — x nosec")
        assert "nosec" in text and "base" in text
        assert "skip-me" not in text

    def test_end_to_end_with_real_experiment(self):
        from repro.experiments.fig16_recovery_time import run
        from repro.experiments.suite import DrainSuite
        result = run(DrainSuite(scale=128))
        text = chart_experiment(result, value_column=1)
        assert "#" in text
