"""Persistent queue and counter array (single-block commit points)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.system import SecureEpdSystem
from repro.pmlib.structures import PersistentCounterArray, PersistentQueue

QUEUE_BASE = 1 << 21
ARRAY_BASE = 1 << 22


@pytest.fixture
def system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="horus-dlm")


def item(tag: int) -> bytes:
    return tag.to_bytes(8, "little") * 8


class TestPersistentQueue:
    def test_fifo_order(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=8)
        for i in range(5):
            queue.enqueue(item(i))
        assert [queue.dequeue() for _ in range(5)] == \
            [item(i) for i in range(5)]

    def test_len_and_peek(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=4)
        assert len(queue) == 0 and queue.peek() is None
        queue.enqueue(item(7))
        assert len(queue) == 1
        assert queue.peek() == item(7)
        assert len(queue) == 1              # peek does not consume

    def test_wraparound(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=3)
        for i in range(10):
            queue.enqueue(item(i))
            assert queue.dequeue() == item(i)

    def test_full_and_empty_guards(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=2)
        with pytest.raises(ConfigError):
            queue.dequeue()
        queue.enqueue(item(1))
        queue.enqueue(item(2))
        assert queue.is_full
        with pytest.raises(ConfigError):
            queue.enqueue(item(3))

    def test_contents_survive_crash(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=8)
        for i in range(4):
            queue.enqueue(item(i))
        queue.dequeue()
        system.crash(seed=2)
        system.recover()
        recovered = PersistentQueue(system, QUEUE_BASE, capacity=8)
        assert len(recovered) == 3
        assert recovered.dequeue() == item(1)

    def test_reattach_preserves_existing_header(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=8)
        queue.enqueue(item(1))
        again = PersistentQueue(system, QUEUE_BASE, capacity=8)
        assert len(again) == 1

    def test_item_size_enforced(self, system):
        queue = PersistentQueue(system, QUEUE_BASE, capacity=2)
        with pytest.raises(ConfigError):
            queue.enqueue(b"short")

    def test_crash_between_slot_and_header_loses_nothing_visible(
            self, system):
        """Simulate the crash window: the slot write landed, the header
        write did not — the element simply is not visible."""
        queue = PersistentQueue(system, QUEUE_BASE, capacity=4)
        queue.enqueue(item(1))
        # Write a slot manually without publishing it.
        system.write(queue._slot_address(1), item(99))
        system.crash(seed=2)
        system.recover()
        recovered = PersistentQueue(system, QUEUE_BASE, capacity=4)
        assert len(recovered) == 1
        assert recovered.dequeue() == item(1)


class TestPersistentCounterArray:
    def test_counters_start_at_zero(self, system):
        counters = PersistentCounterArray(system, ARRAY_BASE, count=20)
        assert all(counters.get(i) == 0 for i in range(20))

    def test_add_and_get(self, system):
        counters = PersistentCounterArray(system, ARRAY_BASE, count=20)
        assert counters.add(3, 5) == 5
        assert counters.add(3) == 6
        assert counters.get(3) == 6
        assert counters.get(2) == 0

    def test_counters_pack_eight_per_block(self, system):
        counters = PersistentCounterArray(system, ARRAY_BASE, count=16)
        assert counters.size_blocks == 2
        counters.add(7, 1)
        counters.add(8, 2)          # first counter of the second block
        assert counters.get(7) == 1
        assert counters.get(8) == 2

    def test_survives_crash(self, system):
        counters = PersistentCounterArray(system, ARRAY_BASE, count=8)
        counters.add(0, 41)
        counters.add(0)
        system.crash(seed=2)
        system.recover()
        fresh = PersistentCounterArray(system, ARRAY_BASE, count=8)
        assert fresh.get(0) == 42

    def test_guards(self, system):
        counters = PersistentCounterArray(system, ARRAY_BASE, count=4)
        with pytest.raises(ConfigError):
            counters.get(4)
        with pytest.raises(ConfigError):
            counters.add(0, -1)
        with pytest.raises(ConfigError):
            PersistentCounterArray(system, ARRAY_BASE, count=0)
