"""The differential oracle: sampling semantics and zero divergence.

The headline acceptance check for the batched hot paths: across every
scheme variant the fault matrix sweeps (including vault rotation and
writeback recovery), running the same seeded episode scalar and batched
produces zero observable divergence — and when a divergence *is* planted,
the oracle catches it and names the field.
"""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import OracleDivergenceError
from repro.core import oracle
from repro.crypto import batch
from repro.faults.matrix import SCHEME_VARIANTS

CONFIG = SystemConfig.scaled(512)


def variant_id(variant):
    scheme, rotate = variant
    return f"{scheme}+rot" if rotate else scheme


class TestZeroDivergence:
    @pytest.mark.parametrize("variant", SCHEME_VARIANTS, ids=variant_id)
    def test_fault_matrix_schemes_never_diverge(self, variant):
        scheme, rotate = variant
        kwargs = {"rotate_vault": True} if rotate else {}
        outcome = oracle.run_differential(CONFIG, scheme, recover=True,
                                          **kwargs)
        assert outcome.drain is not None
        assert outcome.checks >= 7

    @pytest.mark.parametrize("fill", ["sparse", "sequential"])
    def test_fill_modes_never_diverge(self, fill):
        outcome = oracle.run_differential(CONFIG, "horus-slm", fill=fill,
                                          recover=True)
        assert outcome.drain is not None

    def test_writeback_recovery_never_diverges(self):
        outcome = oracle.run_differential(CONFIG, "horus-dlm", recover=True,
                                          recovery_mode="writeback")
        assert outcome.recovery is not None

    def test_planted_divergence_is_caught(self, monkeypatch):
        """Corrupt one batched MAC: the oracle must refuse the episode and
        name a diverging observable."""
        real = batch.compute_block_macs

        def corrupted(key, buffer, addresses, counters, domain,
                      frames=None):
            macs = real(key, buffer, addresses, counters, domain, frames)
            if macs:
                macs[-1] = bytes(len(macs[-1]))
            return macs

        monkeypatch.setattr(batch, "compute_block_macs", corrupted)
        with pytest.raises(OracleDivergenceError, match="diverged on"):
            oracle.run_differential(CONFIG, "horus-slm", recover=True)


class TestReplayZeroDivergence:
    """Runtime twin of the drain sweep: scalar vs epoch-batched replay."""

    SCHEMES = ("base-lu", "base-eu", "horus-slm", "horus-dlm")

    @staticmethod
    def _trace(workload: str, num_ops: int = 1200):
        from repro.workloads.ycsb import ycsb_trace
        return ycsb_trace(workload, num_ops=num_ops,
                          footprint_blocks=CONFIG.llc.num_lines * 2,
                          seed=87)

    @pytest.mark.parametrize("workload", list("abcdef"))
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_ycsb_sweep_never_diverges(self, scheme, workload):
        outcome = oracle.run_replay_differential(
            CONFIG, scheme, self._trace(workload), epoch_ops=256)
        assert outcome.expected is not None
        assert outcome.checks >= 8

    def test_nosec_replay_never_diverges(self):
        """The grouped-NVM (controller-less) path is held equal too."""
        outcome = oracle.run_replay_differential(
            CONFIG, "nosec", self._trace("a"), epoch_ops=256)
        assert outcome.expected is not None

    def test_planted_divergence_is_caught(self, monkeypatch):
        """Corrupt one batched MAC: a later read of that address fails
        verification only on the batched side, and the oracle names it."""
        real = batch.compute_block_macs

        def corrupted(key, buffer, addresses, counters, domain,
                      frames=None):
            macs = real(key, buffer, addresses, counters, domain, frames)
            if macs:
                macs[-1] = bytes(len(macs[-1]))
            return macs

        monkeypatch.setattr(batch, "compute_block_macs", corrupted)
        with pytest.raises(OracleDivergenceError, match="diverged on"):
            oracle.run_replay_differential(CONFIG, "horus-dlm",
                                           self._trace("a"), epoch_ops=256)


class TestSampling:
    @pytest.fixture(autouse=True)
    def _reset_counter(self, monkeypatch):
        monkeypatch.setattr(oracle, "_EPISODES_SEEN", 0)

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        assert oracle.oracle_interval() == 0
        assert not oracle.should_check()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "0")
        assert not any(oracle.should_check() for _ in range(5))

    def test_one_checks_every_episode(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "1")
        assert all(oracle.should_check() for _ in range(5))

    def test_interval_checks_every_nth(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "3")
        decisions = [oracle.should_check() for _ in range(9)]
        assert decisions == [False, False, True] * 3

    def test_non_integer_means_every_episode(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE", "yes")
        assert oracle.oracle_interval() == 1


class TestRunEpisodeIntegration:
    def test_sampled_episode_substitutes_transparently(self, monkeypatch):
        """A differential run returns the same report a plain run would."""
        from repro.experiments.suite import run_episode

        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        plain = run_episode(CONFIG, "horus-dlm")
        monkeypatch.setenv("REPRO_ORACLE", "1")
        monkeypatch.setattr(oracle, "_EPISODES_SEEN", 0)
        checked = run_episode(CONFIG, "horus-dlm")
        assert checked.flushed_blocks == plain.flushed_blocks
        assert checked.metadata_blocks == plain.metadata_blocks
        assert checked.cycles == plain.cycles
        assert checked.stats.snapshot() == plain.stats.snapshot()

    def test_sampled_replay_substitutes_transparently(self, monkeypatch):
        """A differential replay returns the same contents and stats a
        plain one would."""
        from repro.experiments.suite import run_replay_episode
        from repro.workloads.ycsb import ycsb_trace

        trace = ycsb_trace("a", num_ops=600,
                           footprint_blocks=CONFIG.llc.num_lines * 2,
                           seed=87)
        monkeypatch.delenv("REPRO_ORACLE", raising=False)
        plain_system, plain_expected = run_replay_episode(
            CONFIG, "horus-slm", trace, epoch_ops=128)
        monkeypatch.setenv("REPRO_ORACLE", "1")
        monkeypatch.setattr(oracle, "_EPISODES_SEEN", 0)
        checked_system, checked_expected = run_replay_episode(
            CONFIG, "horus-slm", trace, epoch_ops=128)
        assert checked_expected == plain_expected
        assert (checked_system.stats.snapshot()
                == plain_system.stats.snapshot())
        assert (checked_system.nvm.backend.image()
                == plain_system.nvm.backend.image())
