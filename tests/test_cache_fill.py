"""Worst-case fill patterns: the property that drives the whole paper."""

import pytest

from repro.cache.fill import (
    PageAllocator,
    make_allocator,
    page_of,
    sequential_addresses,
    strided_addresses,
    worst_case_addresses,
    worst_case_addresses_bulk,
)
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError


class TestPageAllocator:
    def test_never_repeats(self):
        allocator = PageAllocator(1000)
        pages = [allocator.allocate() for _ in range(100)]
        assert len(set(pages)) == 100

    def test_congruence_is_honored(self):
        allocator = PageAllocator(10000)
        for _ in range(20):
            assert allocator.allocate(residue=3, period=8) % 8 == 3

    def test_mixed_periods_never_collide(self):
        allocator = PageAllocator(10000)
        pages = [allocator.allocate(0, 1) for _ in range(50)]
        pages += [allocator.allocate(0, 8) for _ in range(50)]
        pages += [allocator.allocate(2, 4) for _ in range(50)]
        assert len(set(pages)) == 150

    def test_exhaustion_raises(self):
        allocator = PageAllocator(4)
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(ConfigError):
            allocator.allocate()


class TestWorstCaseAddresses:
    @pytest.fixture(scope="class", params=[512, 128])
    def config(self, request) -> SystemConfig:
        return SystemConfig.scaled(request.param)

    def test_fills_every_set_exactly(self, config):
        cache = config.llc
        addresses = list(worst_case_addresses(cache, make_allocator(config)))
        assert len(addresses) == cache.num_lines
        per_set: dict[int, int] = {}
        for addr in addresses:
            s = (addr // 64) % cache.num_sets
            per_set[s] = per_set.get(s, 0) + 1
        assert set(per_set.values()) == {cache.ways}
        assert len(per_set) == cache.num_sets

    def test_every_line_in_its_own_counter_page(self, config):
        """THE worst-case property: no two lines share a 4 KiB counter page,
        so every flushed line misses in the counter cache."""
        addresses = list(worst_case_addresses(config.llc,
                                              make_allocator(config)))
        pages = [page_of(a) for a in addresses]
        assert len(set(pages)) == len(pages)

    def test_addresses_stay_in_data_region(self, config):
        for addr in worst_case_addresses(config.llc, make_allocator(config)):
            assert 0 <= addr < config.memory.size
            assert addr % 64 == 0

    def test_shared_allocator_keeps_levels_disjoint(self, config):
        allocator = make_allocator(config)
        llc = set(worst_case_addresses(config.llc, allocator))
        l2 = set(worst_case_addresses(config.l2, allocator))
        assert not llc & l2
        assert len({page_of(a) for a in llc | l2}) == len(llc) + len(l2)


class TestOtherPatterns:
    def test_sequential_is_contiguous(self):
        config = SystemConfig.scaled(512)
        addresses = list(sequential_addresses(config.llc))
        assert addresses[0] == 0
        assert addresses[1] - addresses[0] == 64
        assert len(addresses) == config.llc.num_lines

    def test_sequential_shares_counter_pages(self):
        config = SystemConfig.scaled(512)
        addresses = list(sequential_addresses(config.llc))
        pages = {page_of(a) for a in addresses}
        assert len(pages) == len(addresses) // 64

    def test_strided_spacing(self):
        config = SystemConfig.scaled(512)
        addresses = list(strided_addresses(config.llc, 16384))
        assert addresses[1] - addresses[0] == 16384

    def test_strided_rejects_unaligned(self):
        config = SystemConfig.scaled(512)
        with pytest.raises(ConfigError):
            list(strided_addresses(config.llc, 100))


class TestWorstCaseAddressesBulk:
    """The closed-form bulk fill vs the scalar generator spec."""

    @pytest.mark.parametrize("scale", [512, 128, 16])
    @pytest.mark.parametrize("level", ["l1", "l2", "llc"])
    def test_bulk_equals_generator(self, scale, level):
        config = SystemConfig.scaled(scale)
        scalar_alloc = make_allocator(config)
        bulk_alloc = make_allocator(config)
        level_config = getattr(config, level)
        expected = list(worst_case_addresses(level_config, scalar_alloc))
        got = worst_case_addresses_bulk(level_config, bulk_alloc)
        assert got == expected
        assert bulk_alloc.used == scalar_alloc.used
        assert bulk_alloc._taken == scalar_alloc._taken
        assert bulk_alloc._next_free == scalar_alloc._next_free

    def test_used_allocator_falls_back_and_stays_identical(self):
        """A non-fresh allocator has cursors the closed form cannot
        reconstruct; the bulk form must still match the generator."""
        config = SystemConfig.scaled(128)
        scalar_alloc = make_allocator(config)
        bulk_alloc = make_allocator(config)
        for allocator in (scalar_alloc, bulk_alloc):
            allocator.allocate(0, 1)
        assert not bulk_alloc.fresh
        expected = list(worst_case_addresses(config.llc, scalar_alloc))
        assert worst_case_addresses_bulk(config.llc, bulk_alloc) == expected
        assert bulk_alloc._taken == scalar_alloc._taken

    def test_pure_python_leg_matches(self, monkeypatch):
        """REPRO_ARENA=0 (the numpy-less CI leg) produces the same fill."""
        config = SystemConfig.scaled(128)
        fast = worst_case_addresses_bulk(config.llc, make_allocator(config))
        monkeypatch.setenv("REPRO_ARENA", "0")
        pure = worst_case_addresses_bulk(config.llc, make_allocator(config))
        assert pure == fast

    def test_fresh_flag(self):
        allocator = make_allocator(SystemConfig.scaled(128))
        assert allocator.fresh
        allocator.allocate()
        assert not allocator.fresh
