"""Rotating-vault wear-leveling extension (beyond paper, Section IV-D)."""

import pytest

from repro.core.chv import ChvLayout, VaultRotation
from repro.core.system import SecureEpdSystem
from repro.mem.regions import MemoryLayout
from repro.mem.wear import WearTracker


@pytest.fixture(scope="module")
def chv(tiny_config) -> ChvLayout:
    return ChvLayout.for_layout(MemoryLayout(tiny_config))


class TestVaultRotationArithmetic:
    def test_disabled_rotation_is_identity(self, chv):
        rotation = VaultRotation.for_episode(chv, 12345, enabled=False)
        assert rotation.offset == 0
        assert rotation.data_slot(17) == 17
        assert rotation.address_group(2) == 2

    def test_offset_is_group_aligned(self, chv):
        for dc in (0, 1, 63, 64, 65, 1000, chv.capacity + 7):
            rotation = VaultRotation.for_episode(chv, dc, enabled=True)
            assert rotation.offset % 64 == 0
            assert 0 <= rotation.offset < chv.capacity

    def test_slots_stay_unique_and_in_range(self, chv):
        rotation = VaultRotation.for_episode(chv, 777, enabled=True)
        slots = {rotation.data_slot(p) for p in range(chv.capacity)}
        assert len(slots) == chv.capacity
        assert min(slots) == 0 and max(slots) == chv.capacity - 1

    def test_group_rotation_tracks_data_rotation(self, chv):
        """Position p's address group must contain p's rotated slot."""
        rotation = VaultRotation.for_episode(chv, 2048, enabled=True)
        for position in (0, 7, 8, 63, 64, 100):
            slot = rotation.data_slot(position)
            group = rotation.address_group(position // 8)
            assert slot // 8 == group

    def test_capacity_is_dlm_group_aligned(self, chv):
        assert chv.capacity % 64 == 0


class TestRotatedSystem:
    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_crash_recover_with_rotation(self, tiny_config, scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme,
                                 rotate_vault=True)
        system.fill_worst_case(seed=1)
        expected = {line.address: line.data
                    for line in system.hierarchy.llc.lines()}
        system.crash(seed=2)
        system.recover()
        restored = {line.address: line.data
                    for line in system.hierarchy.llc.lines()}
        assert restored == expected

    def test_multiple_episodes_recover_correctly(self, tiny_config):
        """Each episode rotates differently (DC advanced); every one must
        still recover bit-exactly."""
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm",
                                 rotate_vault=True)
        for cycle in range(3):
            system.write(cycle * 4096, bytes([cycle + 1]) * 64)
            system.crash(seed=10 + cycle)
            system.recover()
        for cycle in range(3):
            assert system.read(cycle * 4096) == bytes([cycle + 1]) * 64

    def test_rotation_spreads_wear_across_episodes(self, tiny_config):
        """The point of the extension: with a small episode (a few dirty
        lines), repeated drains must not hammer the same CHV blocks."""
        def chv_max_wear(rotate: bool) -> int:
            system = SecureEpdSystem(tiny_config, scheme="horus-slm",
                                     rotate_vault=rotate)
            system.nvm.wear = WearTracker(system.layout)
            for cycle in range(6):
                system.write(0, bytes([cycle]) * 64)
                system.crash(seed=20 + cycle)
                system.recover()
            return system.nvm.wear.wear_of("chv").max_writes_per_block

        assert chv_max_wear(rotate=False) > chv_max_wear(rotate=True)

    def test_tamper_detection_survives_rotation(self, tiny_config):
        """Rotation must not open a relocation hole: tampering the rotated
        slot of any position still trips its MAC check."""
        from repro.attacks.adversary import Adversary
        from repro.common.errors import IntegrityError
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm",
                                 rotate_vault=True)
        system.write(0, b"\x31" * 64)
        system.crash(seed=1)
        system.recover()
        system.write(64, b"\x32" * 64)   # second episode: non-zero offset
        system.crash(seed=2)
        rotation = system.drain_engine._rotation
        assert rotation.offset != 0
        chv = system.drain_engine._chv
        Adversary(system.nvm).tamper(
            chv.data_address(rotation.data_slot(0)))
        with pytest.raises(IntegrityError):
            system.recover()

    def test_rotation_cost_is_zero(self, tiny_config):
        """Rotation is pure address arithmetic: operation counts match the
        fixed-base vault exactly."""
        def drain_stats(rotate: bool):
            system = SecureEpdSystem(tiny_config, scheme="horus-dlm",
                                     rotate_vault=rotate)
            system.fill_worst_case(seed=1)
            return system.crash(seed=2)

        fixed = drain_stats(False)
        rotated = drain_stats(True)
        assert rotated.total_memory_requests == fixed.total_memory_requests
        assert rotated.total_macs == fixed.total_macs
