"""Shared fixtures: scaled-down configurations and ready-made systems.

``tiny`` configurations keep whole-system tests in the millisecond range
while preserving the paper's structure (same stride ratio, same tree arity,
same cache organization).

Hypothesis is configured here once, through settings profiles, instead of
per-file ``settings(deadline=None, ...)`` copies:

``ci`` (the default)
    no deadline (whole-system examples legitimately take tens of
    milliseconds) and the ``too_slow`` health check suppressed;
``nightly``
    same, plus every :func:`examples` budget multiplied by 10 — select it
    with ``HYPOTHESIS_PROFILE=nightly`` on scheduled runs.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem

HYPOTHESIS_PROFILE = os.environ.get("HYPOTHESIS_PROFILE", "ci")

settings.register_profile(
    "ci", deadline=None, suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "nightly", deadline=None, max_examples=1000,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(HYPOTHESIS_PROFILE)


def examples(count: int) -> int:
    """Per-test example budget: ``count`` in CI, 10x on ``nightly``."""
    return count * (10 if HYPOTHESIS_PROFILE == "nightly" else 1)


@pytest.fixture(scope="session")
def tiny_config() -> SystemConfig:
    """1/512-scale Table I configuration (~600 flushed lines)."""
    return SystemConfig.scaled(512)


@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """1/128-scale Table I configuration (~2300 flushed lines)."""
    return SystemConfig.scaled(128)


@pytest.fixture
def horus_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="horus-slm")


@pytest.fixture
def horus_dlm_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="horus-dlm")


@pytest.fixture
def base_lu_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="base-lu")


@pytest.fixture
def base_eu_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="base-eu")


@pytest.fixture
def nosec_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="nosec")
