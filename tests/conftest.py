"""Shared fixtures: scaled-down configurations and ready-made systems.

``tiny`` configurations keep whole-system tests in the millisecond range
while preserving the paper's structure (same stride ratio, same tree arity,
same cache organization).
"""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem


@pytest.fixture(scope="session")
def tiny_config() -> SystemConfig:
    """1/512-scale Table I configuration (~600 flushed lines)."""
    return SystemConfig.scaled(512)


@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """1/128-scale Table I configuration (~2300 flushed lines)."""
    return SystemConfig.scaled(128)


@pytest.fixture
def horus_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="horus-slm")


@pytest.fixture
def horus_dlm_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="horus-dlm")


@pytest.fixture
def base_lu_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="base-lu")


@pytest.fixture
def base_eu_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="base-eu")


@pytest.fixture
def nosec_system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="nosec")
