"""Property-based tests: set-associative LRU cache vs a reference model."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.line import CacheLine
from repro.common.config import CacheConfig

NUM_SETS = 4
WAYS = 2
CONFIG = CacheConfig("prop", NUM_SETS * WAYS * 64, WAYS, 1)

addresses = st.integers(0, 31).map(lambda i: i * 64)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]), addresses),
    max_size=200)


class _ReferenceLru:
    """An obviously-correct LRU model: one OrderedDict per set."""

    def __init__(self):
        self.sets = [OrderedDict() for _ in range(NUM_SETS)]

    def _set(self, address):
        return self.sets[(address // 64) % NUM_SETS]

    def insert(self, address):
        s = self._set(address)
        if address in s:
            s.move_to_end(address)
            return None
        victim = None
        if len(s) >= WAYS:
            victim, _ = s.popitem(last=False)
        s[address] = True
        return victim

    def lookup(self, address):
        s = self._set(address)
        if address in s:
            s.move_to_end(address)
            return True
        return False

    def invalidate(self, address):
        return self._set(address).pop(address, None) is not None

    def contents(self):
        return [list(s.keys()) for s in self.sets]


class TestLruEquivalence:
    @given(operations)
    @settings(max_examples=100)
    def test_matches_reference_model(self, ops):
        cache = SetAssociativeCache(CONFIG)
        model = _ReferenceLru()
        for op, address in ops:
            if op == "insert":
                victim = cache.insert(CacheLine(address))
                expected = model.insert(address)
                assert (victim.address if victim else None) == expected
            elif op == "lookup":
                assert (cache.lookup(address) is not None) == \
                    model.lookup(address)
            else:
                assert (cache.invalidate(address) is not None) == \
                    model.invalidate(address)
        # Final state: same lines, same LRU order, per set.
        actual = [[line.address
                   for line in cache._sets[i].values()]
                  for i in range(NUM_SETS)]
        assert actual == model.contents()

    @given(operations)
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_ways(self, ops):
        cache = SetAssociativeCache(CONFIG)
        for op, address in ops:
            if op == "insert":
                cache.insert(CacheLine(address))
            for i in range(NUM_SETS):
                assert cache.set_occupancy(i) <= WAYS

    @given(st.lists(addresses, min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_most_recent_insert_is_always_resident(self, addrs):
        cache = SetAssociativeCache(CONFIG)
        for address in addrs:
            cache.insert(CacheLine(address))
            assert cache.contains(address)
