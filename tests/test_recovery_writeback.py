"""Horus recovery option 2 (Section IV-C3): write recovered blocks back
through the main security metadata instead of refilling the LLC."""

import pytest

from repro.common.errors import ConfigError
from repro.core.system import SecureEpdSystem
from repro.workloads.generators import kvstore_trace, replay


@pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
class TestWritebackRecovery:
    def test_data_lands_in_memory_not_the_llc(self, tiny_config, scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme,
                                 recovery_mode="writeback")
        system.fill_worst_case(seed=1)
        addresses = [line.address
                     for line in list(system.hierarchy.llc.lines())[:32]]
        system.crash(seed=2)
        system.recover()
        assert len(system.hierarchy.llc) == 0
        for address in addresses:
            assert system.nvm.backend.is_written(address)

    def test_recovered_data_readable_through_secure_path(self, tiny_config,
                                                         scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme,
                                 recovery_mode="writeback")
        trace = kvstore_trace(200, footprint_blocks=64, seed=41)
        expected = replay(system, trace)
        system.crash(seed=3)
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data

    def test_writeback_recovery_costs_more_than_refill(self, tiny_config,
                                                       scheme):
        """Option 2 replays every block through the secure write path, so it
        must issue strictly more operations than option 1."""
        def recover_with(mode):
            system = SecureEpdSystem(tiny_config, scheme=scheme,
                                     recovery_mode=mode)
            system.fill_worst_case(seed=1)
            system.crash(seed=2)
            return system.recover()

        refill = recover_with("refill")
        writeback = recover_with("writeback")
        assert writeback.stats.total_memory_requests > \
            refill.stats.total_memory_requests
        assert writeback.blocks_restored == refill.blocks_restored

    def test_survives_repeat_cycles(self, tiny_config, scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme,
                                 recovery_mode="writeback")
        system.write(0, b"\x61" * 64)
        system.crash(seed=2)
        system.recover()
        system.write(64, b"\x62" * 64)
        system.crash(seed=3)
        system.recover()
        assert system.read(0) == b"\x61" * 64
        assert system.read(64) == b"\x62" * 64


class TestModeValidation:
    def test_unknown_mode_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            SecureEpdSystem(tiny_config, scheme="horus-slm",
                            recovery_mode="teleport")
