"""The SecureEpdSystem facade."""

import pytest

from repro.common.errors import ConfigError, DrainStateError
from repro.core.system import SCHEMES, SecureEpdSystem


class TestConstruction:
    def test_all_five_schemes_construct(self, tiny_config):
        for scheme in SCHEMES:
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            assert system.scheme == scheme

    def test_unknown_scheme_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            SecureEpdSystem(tiny_config, scheme="horus")

    def test_nosec_has_no_controller(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        assert system.controller is None
        assert system.drain_counter is None

    def test_runtime_scheme_selection(self, tiny_config):
        assert SecureEpdSystem(tiny_config, "base-lu").controller.scheme.name \
            == "lazy"
        assert SecureEpdSystem(tiny_config, "base-eu").controller.scheme.name \
            == "eager"
        # Horus runs recovery-oblivious lazy at run time (Section IV-B).
        assert SecureEpdSystem(tiny_config, "horus-slm").controller.scheme.name \
            == "lazy"

    def test_default_config_is_paper(self):
        system = SecureEpdSystem(scheme="nosec")
        assert system.config.total_cache_lines == 295936


class TestRuntimeInterface:
    @pytest.mark.parametrize("scheme", ["nosec", "base-lu", "horus-slm"])
    def test_write_read_roundtrip(self, tiny_config, scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        system.write(0, b"\x11" * 64)
        system.write(4096, b"\x22" * 64)
        assert system.read(0) == b"\x11" * 64
        assert system.read(4096) == b"\x22" * 64

    def test_rejects_non_data_addresses(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        with pytest.raises(Exception):
            system.write(system.layout.counters.base, bytes(64))

    def test_writes_survive_in_cache_without_memory_traffic(self,
                                                            tiny_config):
        """The EPD premise: persistence = cache residency; once a line is
        resident, writes issue no NVM requests (no flush/fence needed)."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.write(0, b"\x33" * 64)   # write-allocate fetch happens here
        before = system.stats.total_memory_requests
        for _ in range(100):
            system.write(0, b"\x34" * 64)
        assert system.stats.total_memory_requests == before


class TestCrashRecoverLifecycle:
    def test_recover_before_crash_raises(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        with pytest.raises(DrainStateError):
            system.recover()

    def test_nosec_and_eu_recover_return_none(self, tiny_config):
        for scheme in ("nosec", "base-eu"):
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            system.fill_worst_case(seed=1)
            system.crash(seed=2)
            assert system.recover() is None

    def test_reports_are_recorded(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        assert system.last_drain is report
        recovery = system.recover()
        assert system.last_recovery is recovery

    def test_runtime_crash_recover_runtime_cycle(self, tiny_config):
        """Full life cycle: run, crash, recover, keep running."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.write(0, b"\x44" * 64)
        system.write(4096, b"\x55" * 64)
        system.crash(seed=2)
        system.recover()
        assert system.read(0) == b"\x44" * 64
        assert system.read(4096) == b"\x55" * 64
        system.write(8192, b"\x66" * 64)
        assert system.read(8192) == b"\x66" * 64

    def test_two_full_cycles(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        system.write(0, b"\x01" * 64)
        system.crash(seed=2)
        system.recover()
        system.write(64, b"\x02" * 64)
        system.crash(seed=3)
        system.recover()
        assert system.read(0) == b"\x01" * 64
        assert system.read(64) == b"\x02" * 64


class TestBaseLuRecovery:
    def test_base_lu_shadow_recovery_report(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        recovery = system.recover()
        assert recovery is not None
        assert recovery.blocks_restored > 0
        assert recovery.seconds > 0
