"""Banked-memory queueing model."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.banking import (
    BankGeometry,
    MakespanResult,
    parallel_speedup,
    replay_makespan,
)

CONFIG = SystemConfig.scaled(512)


def writes(addresses):
    return [(a, True) for a in addresses]


class TestBankGeometry:
    def test_block_interleaving(self):
        geometry = BankGeometry(channels=1, banks_per_channel=4)
        assert [geometry.bank_of(i * 64) for i in range(5)] == [0, 1, 2, 3, 0]

    def test_total_banks(self):
        assert BankGeometry(channels=4, banks_per_channel=8).total_banks == 32

    def test_validation(self):
        with pytest.raises(ConfigError):
            BankGeometry(channels=0)
        with pytest.raises(ConfigError):
            BankGeometry(command_slot_ns=-1)


class TestMakespan:
    def test_single_bank_serializes(self):
        geometry = BankGeometry(channels=1, banks_per_channel=1,
                                command_slot_ns=0)
        result = replay_makespan(writes([0, 0, 0]), CONFIG, geometry)
        assert result.makespan_ns == pytest.approx(3 * 500)

    def test_perfect_interleave_parallelizes(self):
        geometry = BankGeometry(channels=1, banks_per_channel=4,
                                command_slot_ns=0)
        trace = writes([i * 64 for i in range(4)])
        result = replay_makespan(trace, CONFIG, geometry)
        assert result.makespan_ns == pytest.approx(500)

    def test_reads_and_writes_use_their_latencies(self):
        geometry = BankGeometry(1, 1, command_slot_ns=0)
        result = replay_makespan([(0, False), (0, True)], CONFIG, geometry)
        assert result.makespan_ns == pytest.approx(150 + 500)

    def test_command_bus_bounds_issue_rate(self):
        geometry = BankGeometry(channels=8, banks_per_channel=8,
                                command_slot_ns=100.0)
        trace = writes([i * 64 for i in range(64)])
        result = replay_makespan(trace, CONFIG, geometry)
        # 64 issues x 100 ns dominates once banks are plentiful.
        assert result.makespan_ns >= 63 * 100.0

    def test_bank_conflicts_create_skew(self):
        geometry = BankGeometry(1, 4, command_slot_ns=0)
        conflicting = writes([0] * 8)           # all bank 0
        spread = writes([i * 64 for i in range(8)])
        skewed = replay_makespan(conflicting, CONFIG, geometry)
        balanced = replay_makespan(spread, CONFIG, geometry)
        assert skewed.makespan_ns > balanced.makespan_ns
        assert skewed.busiest_bank_requests == 8
        assert balanced.busiest_bank_requests == 2

    def test_empty_trace(self):
        result = replay_makespan([], CONFIG, BankGeometry())
        assert result == MakespanResult(0, 0.0, 0)


class TestSpeedup:
    def test_speedup_bounded_by_bank_count(self):
        geometry = BankGeometry(1, 8, command_slot_ns=0)
        trace = writes([i * 64 for i in range(256)])
        speedup = parallel_speedup(trace, CONFIG, geometry)
        assert 7.9 <= speedup <= 8.0

    def test_single_bank_speedup_is_one(self):
        geometry = BankGeometry(1, 1, command_slot_ns=0)
        trace = writes([i * 64 for i in range(16)])
        assert parallel_speedup(trace, CONFIG, geometry) == pytest.approx(1.0)

    def test_empty_trace_speedup(self):
        assert parallel_speedup([], CONFIG, BankGeometry()) == 1.0


class TestTraceCapture:
    def test_nvm_trace_capture(self):
        from repro.mem.nvm import NvmDevice
        from repro.stats.events import ReadKind, WriteKind
        nvm = NvmDevice(1 << 16)
        nvm.trace = []
        nvm.write(0, bytes(64), WriteKind.DATA)
        nvm.read(64, ReadKind.COUNTER)
        assert nvm.trace == [(0, True), (64, False)]

    def test_trace_off_by_default(self):
        from repro.mem.nvm import NvmDevice
        from repro.stats.events import WriteKind
        nvm = NvmDevice(1 << 16)
        nvm.write(0, bytes(64), WriteKind.DATA)
        assert nvm.trace is None

    def test_parallelism_ablation_passes(self):
        from repro.experiments.parallelism import run
        from repro.experiments.suite import DrainSuite
        result = run(DrainSuite(scale=256))
        assert result.all_checks_pass, [c for c in result.checks
                                        if not c.passed]
