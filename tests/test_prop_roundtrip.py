"""Property-based end-to-end roundtrips: arbitrary dirty contents survive a
Horus crash/recover cycle bit-exactly, and the secure controller stores any
payload faithfully."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from tests.conftest import examples

CONFIG = SystemConfig.scaled(512)

payloads = st.binary(min_size=64, max_size=64)
block_indices = st.integers(0, 2000)


@st.composite
def dirty_contents(draw):
    """A small map of distinct line addresses to payloads."""
    indices = draw(st.lists(block_indices, min_size=1, max_size=24,
                            unique=True))
    return {i * 64: draw(payloads) for i in indices}


class TestHorusRoundtripProperties:
    @given(contents=dirty_contents(),
           scheme=st.sampled_from(["horus-slm", "horus-dlm"]))
    @settings(max_examples=examples(30))
    def test_arbitrary_dirty_state_survives_crash(self, contents, scheme):
        system = SecureEpdSystem(CONFIG, scheme=scheme)
        for address, data in contents.items():
            system.hierarchy.restore_dirty(address, data)
        system.crash(seed=1)
        system.recover()
        restored = {line.address: line.data
                    for line in system.hierarchy.llc.lines()}
        assert restored == contents

    @given(contents=dirty_contents())
    @settings(max_examples=examples(20))
    def test_vault_never_stores_plaintext(self, contents):
        system = SecureEpdSystem(CONFIG, scheme="horus-slm")
        for address, data in contents.items():
            system.hierarchy.restore_dirty(address, data)
        system.crash(seed=1)
        chv = system.drain_engine._chv
        vaulted = {system.nvm.peek(chv.data_address(i))
                   for i in range(len(contents))}
        assert not vaulted & set(contents.values())


class TestControllerRoundtripProperties:
    @given(contents=dirty_contents())
    @settings(max_examples=examples(20))
    def test_secure_writes_read_back(self, contents):
        from tests.test_secure_controller import make_controller
        controller = make_controller("lazy")
        for address, data in contents.items():
            controller.write(address, data)
        for address, data in contents.items():
            assert controller.read(address) == data
