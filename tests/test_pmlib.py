"""Persistent heap, undo log, and failure-atomic transactions."""

import pytest

from repro.common.errors import ConfigError
from repro.core.system import SecureEpdSystem
from repro.pmlib.heap import PersistentHeap
from repro.pmlib.log import TxState, UndoLog
from repro.pmlib.transaction import TransactionManager

HEAP_BASE = 0
HEAP_BLOCKS = 128
LOG_BASE = 1 << 20


@pytest.fixture
def system(tiny_config) -> SecureEpdSystem:
    return SecureEpdSystem(tiny_config, scheme="horus-dlm")


@pytest.fixture
def heap(system) -> PersistentHeap:
    return PersistentHeap(system, HEAP_BASE, HEAP_BLOCKS)


@pytest.fixture
def tx(system) -> TransactionManager:
    return TransactionManager(system, LOG_BASE)


class TestPersistentHeap:
    def test_alloc_returns_distinct_line_addresses(self, heap):
        addresses = [heap.alloc() for _ in range(10)]
        assert len(set(addresses)) == 10
        assert all(a % 64 == 0 and a >= heap.data_base for a in addresses)

    def test_free_makes_block_reusable(self, heap):
        first = heap.alloc()
        heap.free(first)
        assert heap.alloc() == first

    def test_double_free_rejected(self, heap):
        address = heap.alloc()
        heap.free(address)
        with pytest.raises(ConfigError):
            heap.free(address)

    def test_exhaustion(self, system):
        heap = PersistentHeap(system, 0, 8)   # 1 bitmap + 7 data blocks
        for _ in range(heap.capacity):
            heap.alloc()
        with pytest.raises(MemoryError):
            heap.alloc()

    def test_allocated_count(self, heap):
        for _ in range(5):
            heap.alloc()
        assert heap.allocated_count() == 5

    def test_heap_state_survives_crash(self, system, heap):
        kept = [heap.alloc() for _ in range(4)]
        heap.free(kept.pop())
        system.crash(seed=2)
        system.recover()
        fresh = PersistentHeap(system, HEAP_BASE, HEAP_BLOCKS)
        assert fresh.allocated_count() == 3
        for address in kept:
            assert fresh.is_allocated(address)

    def test_validation(self, system):
        with pytest.raises(ConfigError):
            PersistentHeap(system, 1, 64)      # unaligned
        with pytest.raises(ConfigError):
            PersistentHeap(system, 0, 1)       # no room


class TestUndoLog:
    def test_fresh_log_reads_idle(self, system):
        log = UndoLog(system, LOG_BASE)
        assert log.read_header() == (TxState.IDLE, 0)

    def test_append_and_read_entries(self, system):
        log = UndoLog(system, LOG_BASE)
        log.begin()
        log.append(0, 4096, b"\x11" * 64)
        log.append(1, 8192, b"\x22" * 64)
        assert log.read_header() == (TxState.ACTIVE, 2)
        assert log.read_entry(0) == (4096, b"\x11" * 64)
        assert log.read_entry(1) == (8192, b"\x22" * 64)

    def test_abort_restores_in_reverse(self, system):
        log = UndoLog(system, LOG_BASE)
        system.write(4096, b"old-".ljust(64, b"\0"))
        log.begin()
        log.append(0, 4096, system.read(4096))
        system.write(4096, b"new-".ljust(64, b"\0"))
        log.abort()
        assert system.read(4096).startswith(b"old-")
        assert log.read_header()[0] is TxState.IDLE

    def test_capacity_enforced(self, system):
        log = UndoLog(system, LOG_BASE, capacity=1)
        log.begin()
        log.append(0, 0, bytes(64))
        with pytest.raises(ConfigError):
            log.append(1, 64, bytes(64))

    def test_double_begin_rejected(self, system):
        log = UndoLog(system, LOG_BASE)
        log.begin()
        with pytest.raises(ConfigError):
            log.begin()


class TestTransactions:
    def test_commit_applies_all_writes(self, system, tx):
        with tx.transaction() as t:
            t.write(0, b"\x0a" * 64)
            t.write(4096, b"\x0b" * 64)
        assert system.read(0) == b"\x0a" * 64
        assert system.read(4096) == b"\x0b" * 64
        assert not tx.in_flight

    def test_exception_rolls_back_everything(self, system, tx):
        system.write(0, b"\x01" * 64)
        with pytest.raises(RuntimeError):
            with tx.transaction() as t:
                t.write(0, b"\x02" * 64)
                t.write(4096, b"\x03" * 64)
                raise RuntimeError("app bug")
        assert system.read(0) == b"\x01" * 64
        assert system.read(4096) == bytes(64)

    def test_pre_image_logged_once_per_block(self, system, tx):
        system.write(0, b"\x01" * 64)
        with pytest.raises(RuntimeError):
            with tx.transaction() as t:
                t.write(0, b"\x02" * 64)
                t.write(0, b"\x03" * 64)   # same block again
                raise RuntimeError
        assert system.read(0) == b"\x01" * 64

    def test_crash_mid_transaction_is_atomic(self, system, tx):
        """The headline property: crash between the two halves of a
        transfer, recover, and observe neither half."""
        system.write(0, (100).to_bytes(8, "little").ljust(64, b"\0"))
        system.write(4096, (50).to_bytes(8, "little").ljust(64, b"\0"))

        tx.log.begin()
        from repro.pmlib.transaction import Transaction
        t = Transaction(system, tx.log)
        t.write(0, (70).to_bytes(8, "little").ljust(64, b"\0"))
        # --- power fails before the matching credit ---
        system.crash(seed=2)
        system.recover()
        rolled_back = tx.recover()

        assert rolled_back == 1
        assert int.from_bytes(system.read(0)[:8], "little") == 100
        assert int.from_bytes(system.read(4096)[:8], "little") == 50

    def test_crash_after_commit_preserves_writes(self, system, tx):
        with tx.transaction() as t:
            t.write(0, b"\x42" * 64)
        system.crash(seed=2)
        system.recover()
        assert tx.recover() == 0
        assert system.read(0) == b"\x42" * 64

    def test_transactions_on_baseline_scheme_too(self, tiny_config):
        """pmlib is scheme-agnostic: it runs on Base-LU identically."""
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        tx = TransactionManager(system, LOG_BASE)
        with tx.transaction() as t:
            t.write(0, b"\x55" * 64)
        system.crash(seed=2)
        system.recover()
        assert tx.recover() == 0
        assert system.read(0) == b"\x55" * 64
