"""reprolint: the simulator-invariant static-analysis pass.

Each rule gets fixtures that trigger it and near-misses that must not;
suppression comments are exercised in both forms; the CLI contract (exit
codes, JSON shape) is pinned; and a meta-test lints the real tree so the
repository itself is guaranteed clean, with suppressions confined to the
documented oracle exemption.  The typing gate's pyproject/baseline split is
checked for consistency too.
"""

import json
import textwrap
import tomllib
from pathlib import Path

import pytest

from repro.lint import RULES, lint_paths
from repro.lint.core import module_name_for
from repro.lint.runner import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_lint(tmp_path, files, rules=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint the tree."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], root=tmp_path, rules=rules)


def rules_hit(result):
    return sorted({f.rule for f in result.findings})


class TestFramework:
    def test_module_names_anchor_at_repro(self, tmp_path):
        root = tmp_path
        assert module_name_for(
            root / "src/repro/core/horus.py", root) == "repro.core.horus"
        assert module_name_for(
            root / "src/repro/common/__init__.py", root) == "repro.common"
        assert module_name_for(
            root / "tests/test_lint.py", root) == "tests.test_lint"

    def test_every_rule_is_registered_with_metadata(self):
        assert sorted(RULES) == ["F1", "F2", "F3", "F4", "F5",
                                 "R0", "R1", "R2", "R3", "R4", "R5", "R6"]
        for rule in RULES.values():
            assert rule.title
            assert rule.rationale

    def test_deep_rules_are_exactly_the_flow_family(self):
        deep = sorted(name for name, rule in RULES.items() if rule.deep)
        assert deep == ["F1", "F2", "F3", "F4", "F5"]

    def test_unknown_rule_is_an_error_not_a_crash(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/a.py": "x = 1\n"},
                          rules=["R1", "R99"])
        assert result.exit_code == 2
        assert "R99" in result.errors[0]

    def test_syntax_error_file_is_reported(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/broken.py": "def f(:\n"})
        assert result.exit_code == 2
        assert "broken.py" in result.errors[0]

    def test_clean_tree_exits_zero(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/ok.py": "x = 1\n"})
        assert result.exit_code == 0
        assert result.files_checked == 1


class TestR0SuppressionHygiene:
    def test_unknown_rule_id_is_flagged_and_suppresses_nothing(
            self, tmp_path):
        # The bug class: a typo'd id looks like a vetted exemption but the
        # real finding still fires — now both halves are visible.  (The
        # fixture strings are concatenated so this test file's own raw
        # source does not register the typo'd suppressions.)
        result = run_lint(tmp_path, {
            "repro/core/clock.py":
                "import time  # reprolint: " "disable=R99\n"},
            rules=["R0", "R1"])
        assert rules_hit(result) == ["R0", "R1"]
        r0 = [f for f in result.findings if f.rule == "R0"][0]
        assert "R99" in r0.message
        assert r0.line == 1

    def test_known_rule_ids_are_clean(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/core/clock.py":
                "import time  # reprolint: disable=R1\n"},
            rules=["R0", "R1"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["R1"]

    def test_mixed_list_reports_only_the_unknown_ids(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/core/clock.py":
                "# reprolint: " "disable-next-line=R1,F9\n"
                "import time\n"}, rules=["R0", "R1"])
        assert rules_hit(result) == ["R0"]
        assert "F9" in result.findings[0].message
        assert "R1" not in result.findings[0].message
        assert [f.rule for f in result.suppressed] == ["R1"]


class TestR1Determinism:
    def test_time_import_in_core_is_flagged(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/core/clock.py": "import time\n"}, rules=["R1"])
        assert rules_hit(result) == ["R1"]
        assert "time" in result.findings[0].message

    def test_from_import_and_submodule_forms_are_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/crypto/bad.py": """\
            from random import randint
            import datetime.timezone
        """}, rules=["R1"])
        assert len(result.findings) == 2

    def test_harness_may_use_time(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/experiments/profile.py": "import time\n"}, rules=["R1"])
        assert result.findings == []


class TestR2MacDomains:
    def test_default_domain_call_is_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/secure/ctrl.py": """\
            def f(engine, kind, ct, addr, ctr):
                return engine.block_mac(kind, ct, addr, ctr)
        """}, rules=["R2"])
        assert rules_hit(result) == ["R2"]
        assert "default MacDomain" in result.findings[0].message

    def test_positional_domain_is_flagged_differently(self, tmp_path):
        result = run_lint(tmp_path, {"repro/crypto/prim.py": """\
            def f(key, data):
                return compute_mac(key, data, MacDomain.DATA)
        """}, rules=["R2"])
        assert len(result.findings) == 1
        assert "positionally" in result.findings[0].message

    def test_explicit_keyword_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"repro/secure/ctrl.py": """\
            def f(engine, kind, ct, addr, ctr):
                return engine.block_mac(kind, ct, addr, ctr,
                                        domain=MacDomain.DATA)
        """}, rules=["R2"])
        assert result.findings == []

    def test_kwargs_forwarding_is_not_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/crypto/wrap.py": """\
            def f(key, data, **kw):
                return compute_mac(key, data, **kw)
        """}, rules=["R2"])
        assert result.findings == []


class TestR3BatchParity:
    def test_batch_method_without_scalar_twin_is_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/mem/dev.py": """\
            class Device:
                def read_batch(self, addresses):
                    return [None for _ in addresses]
        """}, rules=["R3"])
        assert rules_hit(result) == ["R3"]
        assert "no scalar counterpart" in result.findings[0].message

    def test_scalar_twin_satisfies_parity(self, tmp_path):
        result = run_lint(tmp_path, {"repro/mem/dev.py": """\
            class Device:
                def read(self, address):
                    return None

                def read_batch(self, addresses):
                    return [self.read(a) for a in addresses]
        """}, rules=["R3"])
        assert result.findings == []

    def test_block_suffixed_twin_counts(self, tmp_path):
        result = run_lint(tmp_path, {"repro/crypto/eng.py": """\
            class Engine:
                def mac_block(self, data):
                    return data

                def mac_batch(self, items):
                    return [self.mac_block(i) for i in items]
        """}, rules=["R3"])
        assert result.findings == []

    def test_private_and_property_batch_names_are_skipped(self, tmp_path):
        result = run_lint(tmp_path, {"repro/mem/dev.py": """\
            class Device:
                def _fill_batch(self, addresses):
                    return addresses

                @property
                def dirty_blocks(self):
                    return []
        """}, rules=["R3"])
        assert result.findings == []

    def test_coverage_map_gap_is_flagged(self, tmp_path):
        files = {
            "src/repro/crypto/eng.py": """\
                class Engine:
                    def encrypt(self, block):
                        return block

                    def encrypt_batch(self, blocks):
                        return [self.encrypt(b) for b in blocks]

                    def decrypt(self, block):
                        return block

                    def decrypt_batch(self, blocks):
                        return [self.decrypt(b) for b in blocks]
            """,
            "tests/test_prop_batch.py": """\
                BATCH_COVERAGE = {"Engine.encrypt_batch": "test_roundtrip"}
            """,
        }
        result = run_lint(tmp_path, files, rules=["R3"])
        assert len(result.findings) == 1
        assert "Engine.decrypt_batch" in result.findings[0].message
        assert "BATCH_COVERAGE" in result.findings[0].message

    def test_epoch_method_requires_both_override_twins(self, tmp_path):
        # replay_epoch's scalar specification is the read/write pair
        # (TWIN_OVERRIDES), not a replay()/replay_block() method; with only
        # read() present the conjunction fails.
        result = run_lint(tmp_path, {"repro/cache/hier.py": """\
            class Hierarchy:
                def read(self, address):
                    return None

                def replay_epoch(self, ops):
                    return [], []
        """}, rules=["R3"])
        assert rules_hit(result) == ["R3"]
        assert "read() and write()" in result.findings[0].message

    def test_epoch_method_with_scalar_pair_is_clean(self, tmp_path):
        result = run_lint(tmp_path, {"repro/cache/hier.py": """\
            class Hierarchy:
                def read(self, address):
                    return None

                def write(self, address, data):
                    pass

                def replay_epoch(self, ops):
                    return [], []
        """}, rules=["R3"])
        assert result.findings == []

    def test_coverage_half_skipped_without_map_or_oracle(self, tmp_path):
        # Scalar twin present, no tests/test_prop_batch.py and no oracle in
        # the fixture tree: only the twin half runs, so the tree is clean.
        result = run_lint(tmp_path, {"repro/mem/dev.py": """\
            class Device:
                def write(self, a, d):
                    pass

                def write_batch(self, pairs):
                    pass
        """}, rules=["R3"])
        assert result.findings == []


class TestR4ExceptionHygiene:
    def test_swallowing_broad_except_is_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/experiments/run.py": """\
            def f():
                try:
                    g()
                except Exception:
                    return None
        """}, rules=["R4"])
        assert rules_hit(result) == ["R4"]

    def test_bare_except_and_tuple_forms_are_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/cli.py": """\
            def f():
                try:
                    g()
                except:
                    pass

            def h():
                try:
                    g()
                except (ValueError, Exception):
                    pass
        """}, rules=["R4"])
        assert len(result.findings) == 2

    def test_reraising_broad_handler_is_allowed(self, tmp_path):
        result = run_lint(tmp_path, {"repro/pmlib/tx.py": """\
            def f(tx):
                try:
                    tx.commit()
                except BaseException:
                    tx.abort()
                    raise
        """}, rules=["R4"])
        assert result.findings == []

    def test_specific_exceptions_are_fine(self, tmp_path):
        result = run_lint(tmp_path, {"repro/experiments/run.py": """\
            def f():
                try:
                    g()
                except (OSError, ValueError):
                    return None
        """}, rules=["R4"])
        assert result.findings == []


class TestR5MagicNumbers:
    def test_table_latency_literal_is_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/timing.py": """\
            def cost(n):
                return n * 500
        """}, rules=["R5"])
        assert rules_hit(result) == ["R5"]
        assert "NVM_WRITE_LATENCY_NS" in result.findings[0].message

    def test_energy_literal_is_flagged_in_energy_package(self, tmp_path):
        result = run_lint(tmp_path, {"repro/energy/model.py": """\
            def joules(n):
                return n * 531.8e-9
        """}, rules=["R5"])
        assert rules_hit(result) == ["R5"]

    def test_constants_module_is_the_authoritative_copy(self, tmp_path):
        result = run_lint(tmp_path, {"repro/common/constants.py": """\
            NVM_WRITE_LATENCY_NS = 500
            HASH_LATENCY_CYCLES = 160
        """}, rules=["R5"])
        assert result.findings == []

    def test_out_of_scope_and_non_table_values_are_ignored(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/experiments/plot.py": "WIDTH = 500\n",
            "repro/core/ok.py": "BLOCK = 64\nFLAG = True\n",
        }, rules=["R5"])
        assert result.findings == []


class TestR6StatsAccounting:
    def test_raw_backend_write_is_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/secure/ctrl.py": """\
            def flush(self, address, data):
                self.nvm.backend.write_block(address, data)
        """}, rules=["R6"])
        assert rules_hit(result) == ["R6"]
        assert "SimStats" in result.findings[0].message

    def test_private_backend_attribute_is_also_flagged(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/sys.py": """\
            def peek(self, address):
                return self.device._backend.read_block(address)
        """}, rules=["R6"])
        assert len(result.findings) == 1

    def test_device_itself_and_attacker_are_exempt(self, tmp_path):
        source = """\
            def access(self, address):
                return self._backend.read_block(address)
        """
        result = run_lint(tmp_path, {
            "repro/mem/nvm.py": source,
            "repro/attacks/splice.py": source,
        }, rules=["R6"])
        assert result.findings == []

    def test_accounted_device_calls_are_fine(self, tmp_path):
        result = run_lint(tmp_path, {"repro/secure/ctrl.py": """\
            def flush(self, address, data):
                self.nvm.write(address, data)
        """}, rules=["R6"])
        assert result.findings == []


class TestSuppressions:
    def test_same_line_disable_moves_finding_to_suppressed(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/core/clock.py":
                "import time  # reprolint: disable=R1\n"}, rules=["R1"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["R1"]
        assert result.exit_code == 0

    def test_disable_next_line(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/clock.py": """\
            # reprolint: disable-next-line=R1
            import time
        """}, rules=["R1"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_suppression_is_per_rule(self, tmp_path):
        # An R4 disable does not silence R1 on the same line.
        result = run_lint(tmp_path, {
            "repro/core/clock.py":
                "import time  # reprolint: disable=R4\n"}, rules=["R1"])
        assert [f.rule for f in result.findings] == ["R1"]

    def test_multi_rule_disable_list(self, tmp_path):
        result = run_lint(tmp_path, {"repro/core/timing.py": """\
            def f(n):
                return n * 500  # reprolint: disable=R5,R2
        """}, rules=["R5"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_suppressed_findings_still_reported(self, tmp_path):
        result = run_lint(tmp_path, {
            "repro/core/clock.py":
                "import time  # reprolint: disable=R1\n"}, rules=["R1"])
        assert "(suppressed)" in result.suppressed[0].format()


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        target = tmp_path / "repro" / "core" / "clock.py"
        target.write_text("import time\n")
        assert main([str(target), "--root", str(tmp_path)]) == 1
        target.write_text("x = 1\n")
        assert main([str(target), "--root", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_human_output_names_rule_and_location(self, tmp_path, capsys):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        target = tmp_path / "repro" / "core" / "clock.py"
        target.write_text("import time\n")
        main([str(target), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert "repro/core/clock.py:1:1: R1:" in out
        assert "1 finding(s)" in out

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "core" / "clock.py").write_text("import time\n")
        code = main([str(tmp_path), "--root", str(tmp_path),
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "R1"
        assert payload["findings"][0]["line"] == 1

    def test_rules_flag_restricts_the_run(self, tmp_path, capsys):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "core" / "clock.py").write_text("import time\n")
        assert main([str(tmp_path), "--root", str(tmp_path),
                     "--rules", "r5"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out


class TestRepositoryIsClean:
    """The meta-tests: the linter's verdict on this repository itself."""

    @pytest.fixture(scope="class")
    def repo_result(self):
        return lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"],
                          root=REPO_ROOT)

    def test_zero_findings(self, repo_result):
        assert repo_result.errors == []
        formatted = "\n".join(f.format() for f in repo_result.findings)
        assert repo_result.findings == [], f"reprolint found:\n{formatted}"

    def test_suppressions_confined_to_oracle_exemption(self, repo_result):
        # The differential oracle's compare-then-reraise handlers are the
        # only documented broad-except exemption in the tree.
        locations = {(f.path, f.rule) for f in repo_result.suppressed}
        assert locations <= {("src/repro/core/oracle.py", "R4")}, locations

    def test_whole_tree_was_actually_scanned(self, repo_result):
        assert repo_result.files_checked > 100


class TestTypingBaseline:
    """pyproject's strict set and mypy-baseline.txt must partition src/repro."""

    STRICT = {"repro.cache", "repro.campaigns", "repro.common",
              "repro.crypto", "repro.energy", "repro.metadata",
              "repro.sharding", "repro.stats", "repro.workloads"}

    @staticmethod
    def all_packages():
        src = REPO_ROOT / "src" / "repro"
        names = set()
        for entry in src.iterdir():
            if entry.is_dir() and (entry / "__init__.py").is_file():
                names.add(f"repro.{entry.name}")
            elif (entry.suffix == ".py"
                  and entry.stem not in ("__init__", "__main__")):
                names.add(f"repro.{entry.stem}")
        return names

    @staticmethod
    def baseline_packages():
        lines = (REPO_ROOT / "mypy-baseline.txt").read_text().splitlines()
        return {line.strip() for line in lines
                if line.strip() and not line.startswith("#")}

    def test_pyproject_strict_set_matches_contract(self):
        with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
            config = tomllib.load(handle)
        files = config["tool"]["mypy"]["files"]
        assert {f.replace("src/", "").replace("/", ".")
                for f in files} == self.STRICT
        assert config["tool"]["mypy"]["strict"] is True

    def test_baseline_and_strict_set_partition_the_tree(self):
        baseline = self.baseline_packages()
        assert baseline & self.STRICT == set(), \
            "a strict package may not also appear in the baseline"
        assert baseline | self.STRICT == self.all_packages(), \
            "every src/repro package must be strict or baselined"

    def test_baseline_only_shrinks(self):
        # The seed of this contract: the packages baselined when the gate
        # landed.  Adding a line here is a typing regression by definition.
        initial = {
            "repro.attacks", "repro.cache", "repro.cli", "repro.core",
            "repro.energy", "repro.epd", "repro.experiments", "repro.faults",
            "repro.lint", "repro.mem", "repro.pmlib", "repro.secure",
            "repro.workloads",
        }
        assert self.baseline_packages() <= initial
