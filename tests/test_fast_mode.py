"""Counting-only (non-functional) mode must count exactly like the real
thing — it skips crypto values, never operations."""

from dataclasses import replace

import pytest

from repro.common.config import SystemConfig
from repro.core.system import SCHEMES, SecureEpdSystem


def _fast(config: SystemConfig) -> SystemConfig:
    return replace(config,
                   security=replace(config.security, functional=False))


class TestCountingOnlyMode:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_drain_counts_match_functional_mode(self, tiny_config, scheme):
        """The paper-relevant quantities are operation counts; disabling
        real crypto must not change a single one of them."""
        reports = {}
        for functional in (True, False):
            config = tiny_config if functional else _fast(tiny_config)
            system = SecureEpdSystem(config, scheme=scheme)
            system.fill_worst_case(seed=1)
            reports[functional] = system.crash(seed=2)
        real, fast = reports[True], reports[False]
        assert fast.stats.reads == real.stats.reads
        assert fast.stats.writes == real.stats.writes
        assert fast.stats.macs == real.stats.macs
        assert fast.stats.aes == real.stats.aes
        assert fast.cycles == real.cycles

    def test_fast_mode_skips_verification(self, tiny_config):
        from repro.attacks.adversary import Adversary
        system = SecureEpdSystem(_fast(tiny_config), scheme="base-eu")
        system.controller.write(0, None)
        system.controller.flush_metadata()
        system.controller.drop_volatile_state()
        Adversary(system.nvm).tamper(0)
        system.controller.read(0)   # counting-only: no IntegrityError

    def test_runner_fast_flag(self):
        from repro.experiments.runner import run_experiments
        results = run_experiments(["fig16"], scale=256, functional=False)
        assert results[0].all_checks_pass

    def test_fast_suite_produces_same_shape(self):
        from repro.experiments.fig06_motivation import run
        from repro.experiments.suite import DrainSuite
        real = run(DrainSuite(scale=256, functional=True))
        fast = run(DrainSuite(scale=256, functional=False))
        assert [row[-1] for row in real.rows] == \
            [row[-1] for row in fast.rows]
