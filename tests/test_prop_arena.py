"""Property-based equivalence: arena kernels vs the scalar primitives.

The arena substrate (:mod:`repro.crypto.arena`) promises *value
transparency*: whether the numpy u64 lanes or the pure-Python fallback
ran, every kernel's output is byte-identical to the scalar spelling it
replaces.  This suite holds each kernel to that promise — over empty,
singleton and N-element inputs, duplicate addresses, counters past the
u64 range (which must transparently fall back), and both kernel flavors
(``REPRO_ARENA=0`` forces the pure path) — and pins the arena-backed
``generate_pads`` / ``encrypt_blocks`` / ``compute_block_macs`` forms to
the scalar primitives across every MacDomain.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

# The 'kernel' fixture only sets REPRO_ARENA for the duration of the test,
# identically for every generated example — not resetting it between
# examples is exactly the intent.
_KERNEL_SETTINGS = {
    "suppress_health_check": [HealthCheck.function_scoped_fixture]}

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE
from repro.crypto import arena, batch
from repro.crypto.arena import (
    FRAME_SIZE,
    BlockArena,
    arena_accelerated,
    frame_buffer,
    frame_views,
    pack_u64,
    tile_u64,
    unpack_u64,
    xor_bytes,
)
from repro.crypto.primitives import (
    MacDomain,
    compute_mac,
    encrypt_block,
    generate_pad,
    int_field,
)
from tests.conftest import examples

u64s = st.integers(0, 2**64 - 1)
wide = st.integers(0, 2**128 - 1)
blocks = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)
keys = st.binary(min_size=1, max_size=64)
domains = st.sampled_from(MacDomain)


@st.composite
def work_lists(draw, min_size=0, max_size=12, counter_strategy=wide):
    """(addresses, counters) with duplicate-heavy addresses (cf.
    test_prop_batch.work_lists)."""
    pool = draw(st.lists(u64s, min_size=1, max_size=3))
    size = draw(st.integers(min_size, max_size))
    addr_list = draw(st.lists(st.sampled_from(pool), min_size=size,
                              max_size=size))
    ctr_list = draw(st.lists(counter_strategy, min_size=size,
                             max_size=size))
    return addr_list, ctr_list


@pytest.fixture(params=["lanes", "pure"])
def kernel(request, monkeypatch):
    """Run the test under both kernel flavors (numpy lanes, pure Python).

    The pure leg always runs; the lanes leg is exercised when numpy is
    importable, otherwise it degenerates to the pure path (matching a
    numpy-less install).
    """
    monkeypatch.setenv("REPRO_ARENA",
                       "1" if request.param == "lanes" else "0")
    return request.param


class TestPackU64:
    @given(values=st.lists(u64s, max_size=12))
    @settings(max_examples=examples(100))
    def test_matches_scalar_to_bytes(self, values):
        assert pack_u64(values) == b"".join(
            v.to_bytes(8, "little") for v in values)

    @given(values=st.lists(u64s, min_size=2, max_size=12))
    @settings(max_examples=examples(100))
    def test_round_trips_through_unpack(self, values):
        assert unpack_u64(pack_u64(values)) == values

    @given(values=st.lists(u64s, max_size=6),
           oversize=st.integers(2**64, 2**128))
    @settings(max_examples=examples(50))
    def test_oversize_value_raises_like_to_bytes(self, values, oversize):
        with pytest.raises(OverflowError):
            pack_u64(values + [oversize])

    @given(extra=st.integers(1, 7))
    @settings(max_examples=examples(20))
    def test_unpack_rejects_unaligned_buffers(self, extra):
        with pytest.raises(ValueError):
            unpack_u64(b"\x00" * (8 + extra))

    def test_empty(self):
        assert pack_u64([]) == b""
        assert unpack_u64(b"") == []


class TestTileU64:
    @given(values=st.lists(u64s, max_size=8), lanes=st.integers(1, 8))
    @settings(max_examples=examples(100))
    def test_matches_scalar_repeat(self, values, lanes):
        assert tile_u64(values, lanes) == b"".join(
            v.to_bytes(8, "little") * lanes for v in values)

    @given(values=st.lists(u64s, min_size=1, max_size=8))
    @settings(max_examples=examples(50))
    def test_eight_lanes_is_the_pattern_block(self, values):
        tiled = tile_u64(values, 8)
        assert len(tiled) == CACHE_LINE_SIZE * len(values)


class TestFrameBuffer:
    @given(work=work_lists())
    @settings(max_examples=examples(100))
    def test_matches_counter_frames(self, work):
        addrs, ctrs = work
        assert frame_buffer(addrs, ctrs) == b"".join(
            batch.counter_frames(addrs, ctrs))

    @given(start=st.integers(0, 2**128 - 13), count=st.integers(0, 12),
           pool=st.lists(u64s, min_size=1, max_size=3))
    @settings(max_examples=examples(100))
    def test_range_counters_match_list_counters(self, start, count, pool):
        """Range counters (the drain's shape) — including ranges that
        cross 2**64 and must take the fallback — equal explicit lists."""
        addrs = (pool * count)[:count]
        ctrs = range(start, start + count)
        assert frame_buffer(addrs, ctrs) == \
            frame_buffer(addrs, list(ctrs))

    @given(work=work_lists(min_size=1))
    @settings(max_examples=examples(50))
    def test_views_slice_the_buffer(self, work):
        addrs, ctrs = work
        frames = frame_buffer(addrs, ctrs)
        views = list(frame_views(frames, len(addrs)))
        assert [bytes(v) for v in views] == batch.counter_frames(addrs, ctrs)
        assert all(len(v) == FRAME_SIZE for v in views)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            frame_buffer([1, 2], [3])

    @given(count=st.integers(0, 4), extra=st.integers(1, 23))
    @settings(max_examples=examples(20))
    def test_views_reject_unaligned_buffers(self, count, extra):
        with pytest.raises(ValueError):
            frame_views(b"\x00" * (FRAME_SIZE * count + extra), count)


class TestXorBytes:
    @given(pair=st.integers(0, 256).flatmap(
        lambda n: st.tuples(st.binary(min_size=n, max_size=n),
                            st.binary(min_size=n, max_size=n))))
    @settings(max_examples=examples(100))
    def test_matches_bigint_xor(self, pair):
        a, b = pair
        expected = (int.from_bytes(a, "little")
                    ^ int.from_bytes(b, "little")).to_bytes(len(a), "little")
        assert xor_bytes(a, b) == expected

    @given(pair=st.integers(0, 64).flatmap(
        lambda n: st.tuples(st.binary(min_size=n, max_size=n),
                            st.binary(min_size=n, max_size=n))))
    @settings(max_examples=examples(100))
    def test_involution(self, pair):
        a, b = pair
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00" * 8, b"\x00" * 9)


class TestBlockArena:
    @given(payload=st.lists(blocks, max_size=8))
    @settings(max_examples=examples(100))
    def test_from_blocks_round_trips(self, payload):
        built = BlockArena.from_blocks(payload)
        assert len(built) == len(payload)
        assert built.blocks() == payload
        assert [bytes(v) for v in built.views()] == payload
        assert built.tobytes() == b"".join(payload)

    @given(payload=blocks)
    @settings(max_examples=examples(50))
    def test_from_block_is_the_scalar_twin(self, payload):
        assert BlockArena.from_block(payload).blocks() == \
            BlockArena.from_blocks([payload]).blocks()

    @given(payload=st.lists(blocks, min_size=1, max_size=8),
           data=st.data())
    @settings(max_examples=examples(100))
    def test_block_view_store(self, payload, data):
        built = BlockArena.from_blocks(payload)
        index = data.draw(st.integers(0, len(payload) - 1))
        assert built.block(index) == payload[index]
        assert bytes(built.view(index)) == payload[index]
        replacement = data.draw(blocks)
        writable = BlockArena.from_buffer(bytearray(built.tobytes()))
        writable.store(index, replacement)
        assert writable.block(index) == replacement
        untouched = [i for i in range(len(payload)) if i != index]
        for i in untouched:
            assert writable.block(i) == payload[i]

    @given(extra=st.integers(1, CACHE_LINE_SIZE - 1),
           count=st.integers(0, 4))
    @settings(max_examples=examples(30))
    def test_unaligned_buffers_raise(self, extra, count):
        ragged = b"\x00" * (count * CACHE_LINE_SIZE + extra)
        with pytest.raises(ValueError):
            BlockArena.from_buffer(ragged)
        with pytest.raises(ValueError):
            BlockArena(count, ragged)

    @given(count=st.integers(0, 4), delta=st.integers(1, 8))
    @settings(max_examples=examples(30))
    def test_out_of_range_index_raises(self, count, delta):
        built = BlockArena(count)
        with pytest.raises(IndexError):
            built.view(count + delta - 1)
        with pytest.raises(IndexError):
            built.block(-1)

    def test_zero_block_arena(self):
        empty = BlockArena(0)
        assert len(empty) == 0
        assert empty.blocks() == []
        assert empty.tobytes() == b""

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            BlockArena(-1)


class TestArenaBackedBatchParity:
    """The arena-fed batch forms equal the scalar primitives byte for
    byte, under both kernel flavors."""

    @given(key=keys, work=work_lists())
    @settings(max_examples=examples(60), **_KERNEL_SETTINGS)
    def test_generate_pads_with_frame_buffer(self, kernel, key, work):
        addrs, ctrs = work
        frames = frame_buffer(addrs, ctrs)
        pads = batch.generate_pads(key, addrs, ctrs, frames)
        for i, (address, counter) in enumerate(zip(addrs, ctrs)):
            assert pads[i * 64:(i + 1) * 64] == \
                generate_pad(key, address, counter)

    @given(key=keys, work=work_lists(), data=st.data())
    @settings(max_examples=examples(60), **_KERNEL_SETTINGS)
    def test_encrypt_blocks_from_arena(self, kernel, key, work, data):
        addrs, ctrs = work
        payload = [data.draw(blocks) for _ in addrs]
        built = BlockArena.from_blocks(payload)
        ciphertext = batch.encrypt_blocks(
            key, addrs, ctrs, built.buffer(),
            frame_buffer(addrs, ctrs))
        assert len(ciphertext) == CACHE_LINE_SIZE * len(addrs)
        for i, (address, counter) in enumerate(zip(addrs, ctrs)):
            assert ciphertext[i * 64:(i + 1) * 64] == encrypt_block(
                key, address, counter, payload[i])

    @given(key=keys, work=work_lists(), domain=domains, data=st.data())
    @settings(max_examples=examples(60), **_KERNEL_SETTINGS)
    def test_compute_block_macs_from_arena(self, kernel, key, work,
                                           domain, data):
        addrs, ctrs = work
        payload = [data.draw(blocks) for _ in addrs]
        built = BlockArena.from_blocks(payload)
        macs = batch.compute_block_macs(
            key, built.buffer(), addrs, ctrs, domain=domain,
            frames=frame_buffer(addrs, ctrs))
        assert len(macs) == len(addrs)
        for mac, address, counter, block in zip(macs, addrs, ctrs, payload):
            assert len(mac) == MAC_SIZE
            assert mac == compute_mac(
                key, block + int_field(address, 8) + int_field(counter, 16),
                domain=domain)

    @given(work=work_lists())
    @settings(max_examples=examples(40), **_KERNEL_SETTINGS)
    def test_kernels_are_value_transparent(self, monkeypatch, work):
        """Pure vs lanes output is identical for every kernel (the
        REPRO_ARENA=0 CI leg holds the same oracle)."""
        addrs, ctrs = work
        outputs = {}
        for flavor, env in (("lanes", "1"), ("pure", "0")):
            monkeypatch.setenv("REPRO_ARENA", env)
            outputs[flavor] = (
                pack_u64(addrs),
                tile_u64(addrs, 8),
                frame_buffer(addrs, ctrs),
                xor_bytes(pack_u64(addrs), pack_u64(addrs[::-1])),
            )
        assert outputs["lanes"] == outputs["pure"]

    def test_accelerated_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA", "0")
        assert arena_accelerated() is False
        monkeypatch.delenv("REPRO_ARENA", raising=False)
        assert arena_accelerated() is (arena._np is not None)
        assert arena_accelerated(override=False) is False
