"""Property-based equivalence: batched crypto primitives vs the scalar spec.

The scalar primitives in :mod:`repro.crypto.primitives` are the
specification; everything in :mod:`repro.crypto.batch` (and the batch
methods of the timed engines) must match them byte for byte on every input
— including the awkward ones: empty batches, singletons, and work lists
that repeat the same address (the drain never produces those, but the
primitives must not care).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE
from repro.crypto import batch
from repro.crypto.engine import AesEngine, MacEngine
from repro.crypto.primitives import (
    MacDomain,
    compute_mac,
    encrypt_block,
    generate_pad,
    int_field,
    xor_block,
)
from repro.stats.counters import SimStats
from repro.stats.events import MacKind
from tests.conftest import examples

BATCH_COVERAGE = {
    # Every public *_batch/*_blocks method in src/repro must appear here
    # (reprolint rule R3), naming the scalar-equivalence evidence that holds
    # it to its scalar twin.  The differential oracle (repro/core/oracle.py)
    # additionally compares whole batched-vs-scalar episodes end to end.
    "AesEngine.encrypt_batch": "TestEngineEquivalence.test_aes_engine_batch",
    "AesEngine.decrypt_batch": "TestEngineEquivalence.test_aes_engine_batch",
    "MacEngine.block_mac_batch":
        "TestEngineEquivalence.test_mac_engine_batch (all MacDomains)",
    "MacEngine.digest_mac_batch":
        "TestEngineEquivalence.test_mac_engine_batch (all MacDomains)",
    "NvmDevice.read_batch":
        "oracle drain/recovery stats + tests/test_mem_nvm.py",
    "NvmDevice.write_batch":
        "oracle NVM image + fault-plan scalar fallback tests",
    "SparseMemory.read_blocks": "oracle NVM image + tests/test_mem_backend.py",
    "SparseMemory.write_blocks":
        "oracle NVM image + tests/test_mem_backend.py",
    "SecureMemoryController.run_ops_batch":
        "TestRunOpsEquivalence + oracle replay "
        "(repro.core.oracle.run_replay_differential)",
    "CacheHierarchy.replay_epoch":
        "tests/test_prop_soa.py (SoA-vs-dict identity over arbitrary op "
        "sequences) + oracle replay + tests/test_golden_replay.py",
    "TenantKeyedAes.encrypt_batch":
        "tests/test_sharding_keys.py::TestTenantKeyedAes"
        "::test_batch_matches_scalar_across_tenant_runs",
    "TenantKeyedAes.decrypt_batch":
        "tests/test_sharding_keys.py::TestTenantKeyedAes"
        "::test_batch_matches_scalar_across_tenant_runs",
    "TenantKeyedMac.block_mac_batch":
        "tests/test_sharding_keys.py::TestTenantKeyedMac"
        "::test_block_mac_batch_matches_scalar",
    "BlockArena.from_blocks":
        "tests/test_prop_arena.py::TestBlockArena (round-trip vs from_block)",
    "NvmDevice.read_arena":
        "oracle drain/recovery stats + tests/test_mem_nvm.py arena tests",
    "NvmDevice.write_arena":
        "oracle NVM image + tests/test_mem_nvm.py scalar-fallback tests",
    "SparseMemory.read_arena":
        "oracle NVM image + tests/test_mem_backend.py arena tests",
    "SparseMemory.write_arena":
        "oracle NVM image + tests/test_mem_backend.py arena tests",
}

keys = st.binary(min_size=1, max_size=64)
addresses = st.integers(0, 2**64 - 1)
counters = st.integers(0, 2**128 - 1)
blocks = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)
domains = st.sampled_from(MacDomain)


@st.composite
def work_lists(draw, min_size=0, max_size=12):
    """(addresses, counters) of equal length; duplicates are likely.

    Addresses draw from a tiny pool so that most multi-element lists
    repeat at least one address — the degenerate case the batch forms must
    handle identically to scalar iteration.
    """
    pool = draw(st.lists(addresses, min_size=1, max_size=3))
    size = draw(st.integers(min_size, max_size))
    addr_list = draw(st.lists(st.sampled_from(pool), min_size=size,
                              max_size=size))
    ctr_list = draw(st.lists(counters, min_size=size, max_size=size))
    return addr_list, ctr_list


class TestPadEquivalence:
    @given(key=keys, work=work_lists())
    @settings(max_examples=examples(100))
    def test_generate_pads_matches_scalar(self, key, work):
        addrs, ctrs = work
        pads = batch.generate_pads(key, addrs, ctrs)
        assert len(pads) == CACHE_LINE_SIZE * len(addrs)
        for i, (address, counter) in enumerate(zip(addrs, ctrs)):
            assert pads[i * 64:(i + 1) * 64] == \
                generate_pad(key, address, counter)

    @given(key=keys, work=work_lists())
    @settings(max_examples=examples(50))
    def test_shared_frames_change_nothing(self, key, work):
        addrs, ctrs = work
        frames = batch.counter_frames(addrs, ctrs)
        assert batch.generate_pads(key, addrs, ctrs, frames) == \
            batch.generate_pads(key, addrs, ctrs)

    @given(a=blocks, b=blocks)
    @settings(max_examples=examples(100))
    def test_xor_buffers_matches_xor_block(self, a, b):
        assert batch.xor_buffers(a, b) == xor_block(a, b)

    @given(buffers=st.integers(0, 8).flatmap(
        lambda n: st.tuples(st.binary(min_size=n, max_size=n),
                            st.binary(min_size=n, max_size=n))))
    @settings(max_examples=examples(100))
    def test_xor_buffers_is_an_involution(self, buffers):
        a, b = buffers
        assert batch.xor_buffers(batch.xor_buffers(a, b), b) == a


class TestEncryptionEquivalence:
    @given(key=keys, work=work_lists(), data=st.data())
    @settings(max_examples=examples(100))
    def test_encrypt_blocks_matches_scalar(self, key, work, data):
        addrs, ctrs = work
        plain = [data.draw(blocks) for _ in addrs]
        ciphertext = batch.encrypt_blocks(key, addrs, ctrs, b"".join(plain))
        for i, (address, counter) in enumerate(zip(addrs, ctrs)):
            assert ciphertext[i * 64:(i + 1) * 64] == \
                encrypt_block(key, address, counter, plain[i])

    @given(key=keys, work=work_lists(), data=st.data())
    @settings(max_examples=examples(50))
    def test_decrypt_inverts_encrypt(self, key, work, data):
        addrs, ctrs = work
        plain = b"".join(data.draw(blocks) for _ in addrs)
        ciphertext = batch.encrypt_blocks(key, addrs, ctrs, plain)
        assert batch.decrypt_blocks(key, addrs, ctrs, ciphertext) == plain


class TestMacEquivalence:
    @given(key=keys, domain=domains, work=work_lists(), data=st.data())
    @settings(max_examples=examples(100))
    def test_compute_block_macs_matches_scalar(self, key, domain, work,
                                               data):
        addrs, ctrs = work
        buffer = b"".join(data.draw(blocks) for _ in addrs)
        macs = batch.compute_block_macs(key, buffer, addrs, ctrs, domain)
        assert len(macs) == len(addrs)
        for i, (address, counter) in enumerate(zip(addrs, ctrs)):
            assert macs[i] == compute_mac(
                key, buffer[i * 64:(i + 1) * 64], int_field(address),
                int_field(counter, 16), domain=domain)

    @given(key=keys, domain=domains,
           items=st.lists(st.lists(st.binary(max_size=80), max_size=3)
                          .map(tuple), max_size=8))
    @settings(max_examples=examples(100))
    def test_compute_macs_matches_scalar(self, key, domain, items):
        macs = batch.compute_macs(key, items, domain=domain)
        assert macs == [compute_mac(key, *parts, domain=domain)
                        for parts in items]

    @given(key=keys, domain=domains, address=addresses, counter=counters,
           block=blocks)
    @settings(max_examples=examples(50))
    def test_domains_separate_batched_macs(self, key, domain, address,
                                           counter, block):
        """Equal inputs under different domains never collide (the scalar
        guarantee, preserved by the batch form)."""
        values = {batch.compute_block_macs(key, block, [address], [counter],
                                           d)[0]
                  for d in MacDomain}
        assert len(values) == len(MacDomain)


class TestEngineBatchEquivalence:
    """The timed engines' batch methods: same bytes, same accounting."""

    @given(work=work_lists(), data=st.data())
    @settings(max_examples=examples(50))
    def test_aes_engine_batch_matches_scalar(self, work, data):
        addrs, ctrs = work
        plain = [data.draw(blocks) for _ in addrs]
        scalar_stats, batch_stats = SimStats(), SimStats()
        scalar_engine = AesEngine(scalar_stats)
        batch_engine = AesEngine(batch_stats)
        expected = [scalar_engine.encrypt(a, c, p)
                    for a, c, p in zip(addrs, ctrs, plain)]
        ciphertext = batch_engine.encrypt_batch(addrs, ctrs,
                                                b"".join(plain))
        assert batch.split_blocks(ciphertext or b"") == expected
        assert batch_stats.snapshot() == scalar_stats.snapshot()

    @given(kind=st.sampled_from([MacKind.CHV_DATA, MacKind.DATA_PROTECT]),
           work=work_lists(), data=st.data())
    @settings(max_examples=examples(50))
    def test_mac_engine_batch_matches_scalar(self, kind, work, data):
        addrs, ctrs = work
        cipher = [data.draw(blocks) for _ in addrs]
        scalar_stats, batch_stats = SimStats(), SimStats()
        scalar_engine = MacEngine(scalar_stats)
        batch_engine = MacEngine(batch_stats)
        expected = [scalar_engine.block_mac(kind, block, a, c)
                    for block, a, c in zip(cipher, addrs, ctrs)]
        macs = batch_engine.block_mac_batch(kind, b"".join(cipher),
                                            addrs, ctrs)
        assert macs == expected
        assert batch_stats.snapshot() == scalar_stats.snapshot()

    @given(work=work_lists(min_size=1), data=st.data())
    @settings(max_examples=examples(25))
    def test_non_functional_batch_matches_scalar(self, work, data):
        addrs, ctrs = work
        cipher = [data.draw(blocks) for _ in addrs]
        scalar_engine = MacEngine(SimStats(), functional=False)
        batch_engine = MacEngine(SimStats(), functional=False)
        expected = [scalar_engine.block_mac(MacKind.CHV_DATA, block, a, c)
                    for block, a, c in zip(cipher, addrs, ctrs)]
        assert batch_engine.block_mac_batch(
            MacKind.CHV_DATA, b"".join(cipher), addrs, ctrs) == expected
        assert expected == [bytes(MAC_SIZE)] * len(addrs)


class TestSplitBlocks:
    @given(parts=st.lists(blocks, max_size=8))
    @settings(max_examples=examples(50))
    def test_split_inverts_join(self, parts):
        assert batch.split_blocks(b"".join(parts)) == parts


# -- run_ops_batch vs the scalar op loop --------------------------------------

def _make_controller(batched: bool, scheme: str):
    from repro.common.config import SystemConfig
    from repro.mem.nvm import NvmDevice
    from repro.mem.regions import MemoryLayout
    from repro.secure.controller import SecureMemoryController

    config = SystemConfig.scaled(512)
    layout = MemoryLayout(config)
    stats = SimStats()
    nvm = NvmDevice(layout.total_size, stats)
    return SecureMemoryController(config, nvm, layout, stats,
                                  scheme=scheme, batched=batched)


def _controller_state(controller) -> dict:
    return {
        "image": controller.nvm.backend.image(),
        "stats": controller.stats.snapshot(),
        "hit rates": [(cache.name, cache.hits, cache.misses)
                      for cache in controller.metadata_caches],
        "meta lines": [
            sorted((line.address, bytes(controller.line_bytes(line)),
                    line.dirty) for line in cache.lines())
            for cache in controller.metadata_caches],
        "root": controller.root_mac,
        "lost": list(controller.nvm.lost_writes),
    }


# Addresses draw from a pool spanning several counter/MAC blocks but small
# enough that most op lists revisit an address — the duplicate and
# read-after-write cases the epoch batching must phase correctly.
_OP_ADDRESSES = tuple(i * CACHE_LINE_SIZE for i in range(0, 260, 13))


@st.composite
def op_lists(draw, min_size=0, max_size=24):
    pool = draw(st.lists(st.sampled_from(_OP_ADDRESSES), min_size=1,
                         max_size=4, unique=True))
    size = draw(st.integers(min_size, max_size))
    ops = []
    for i in range(size):
        address = draw(st.sampled_from(pool))
        if draw(st.booleans()):
            ops.append(("w", address, bytes([i % 251]) * CACHE_LINE_SIZE))
        else:
            ops.append(("r", address, None))
    return ops


class TestRunOpsEquivalence:
    """The controller's epoch entry point: same results, same state.

    ``run_ops`` (the scalar per-op loop) is the specification;
    ``run_ops_batch`` phases the same stream through the batched crypto and
    grouped NVM paths, so every observable — read results, NVM image, stats,
    metadata-cache hit/miss/LRU/content, tree root — must match on every op
    list, including empty ones, singletons, duplicate addresses, and
    read-after-write within one epoch.
    """

    @pytest.mark.parametrize("scheme", ["lazy", "eager"])
    @given(ops=op_lists())
    @settings(max_examples=examples(25), deadline=None)
    def test_batch_matches_scalar(self, scheme, ops):
        scalar = _make_controller(False, scheme)
        batched = _make_controller(True, scheme)
        assert scalar.run_ops(list(ops)) == batched.run_ops_batch(list(ops))
        assert _controller_state(scalar) == _controller_state(batched)

    @pytest.mark.parametrize("size", [0, 1])
    def test_degenerate_batch_sizes(self, size):
        ops = [("w", 0, bytes(64))][:size]
        scalar = _make_controller(False, "lazy")
        batched = _make_controller(True, "lazy")
        assert scalar.run_ops(list(ops)) == batched.run_ops_batch(list(ops))
        assert _controller_state(scalar) == _controller_state(batched)

    def test_read_after_write_within_one_batch(self):
        """A read of an address written earlier in the same op list must
        return the new ciphertext's plaintext on both paths."""
        data = bytes(range(64))
        ops = [("w", 128, data), ("r", 128, None), ("w", 128, data[::-1]),
               ("r", 128, None), ("r", 64, None)]
        scalar = _make_controller(False, "lazy")
        batched = _make_controller(True, "lazy")
        results_s = scalar.run_ops(list(ops))
        results_b = batched.run_ops_batch(list(ops))
        assert results_s == results_b
        assert results_b[1] == data
        assert results_b[3] == data[::-1]
        assert results_b[4] == bytes(CACHE_LINE_SIZE)  # never written

    @given(ops=op_lists(min_size=1))
    @settings(max_examples=examples(25), deadline=None)
    def test_fetches_stream_aligns_with_reads(self, ops):
        """``fetches=True`` returns exactly the read results, in op order —
        the fill-aligned stream ``resolve_pending`` consumes directly.
        Regression pin for the epoch replay path, which used to re-filter
        the full result stream against the op list (a misalignment hazard
        once writes stopped producing entries)."""
        scalar = _make_controller(False, "lazy")
        batched = _make_controller(True, "lazy")
        reference = scalar.run_ops(list(ops))
        fetched = batched.run_ops_batch(list(ops), fetches=True)
        assert fetched == [result for op, result in zip(ops, reference)
                           if op[0] == "r"]

    def test_fetches_alignment_survives_overflow_fallback(self):
        """The mid-segment scalar fallback (minor-counter overflow) must
        keep the fetches stream aligned too."""
        from repro.crypto.counters import SplitCounterBlock

        scalar = _make_controller(False, "lazy")
        batched = _make_controller(True, "lazy")
        for controller in (scalar, batched):
            block: SplitCounterBlock = controller.get_counter_line(0).value
            block.minors[0] = 126
        ops = [("w", 0, bytes([i]) * 64) for i in range(4)] \
            + [("r", 0, None), ("w", 64, bytes(64)), ("r", 64, None),
               ("r", 128, None)]
        reference = scalar.run_ops(list(ops))
        fetched = batched.run_ops_batch(list(ops), fetches=True)
        assert fetched == [result for op, result in zip(ops, reference)
                           if op[0] == "r"]

    @pytest.mark.parametrize("scheme", ["lazy", "eager"])
    def test_minor_counter_overflow_stays_equivalent(self, scheme):
        """Force a minor-counter overflow mid-batch: the batch must fall
        back to the scalar overflow path with identical observables."""
        from repro.crypto.counters import SplitCounterBlock

        scalar = _make_controller(False, scheme)
        batched = _make_controller(True, scheme)
        for controller in (scalar, batched):
            block: SplitCounterBlock = controller.get_counter_line(0).value
            block.minors[0] = 126
        ops = [("w", 0, bytes([i]) * 64) for i in range(4)] \
            + [("r", 0, None), ("w", 64, bytes(64)), ("r", 64, None)]
        assert scalar.run_ops(list(ops)) == batched.run_ops_batch(list(ops))
        assert _controller_state(scalar) == _controller_state(batched)
