"""TenantMixer: seeded multi-tenant interleaving, containment, seed hygiene."""

from collections import defaultdict

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import spread_seed
from repro.workloads.tenantmix import TenantMixer, TenantMixPlan
from repro.workloads.trace import OpKind

LINE = 64


def make_plan(**overrides):
    defaults = dict(num_tenants=8, total_ops=400,
                    data_size=1 << 20, footprint_blocks=16,
                    master_seed=42)
    defaults.update(overrides)
    return TenantMixPlan(**defaults)


class TestPlanValidation:
    def test_rejects_zero_tenants(self):
        with pytest.raises(ConfigError, match="at least one tenant"):
            make_plan(num_tenants=0)

    def test_rejects_negative_ops(self):
        with pytest.raises(ConfigError, match="negative"):
            make_plan(total_ops=-1)

    def test_rejects_unknown_workload_letter(self):
        with pytest.raises(ConfigError, match="unknown YCSB"):
            make_plan(workloads=("a", "x"))

    def test_rejects_tenants_that_do_not_fit(self):
        with pytest.raises(ConfigError, match="do not fit"):
            make_plan(num_tenants=64, data_size=64 * 16 * LINE,
                      footprint_blocks=32)


class TestPlanGeometry:
    def test_tenants_spread_over_the_whole_space(self):
        """Bases cover the full data space (not packed from zero), so a
        sharded fleet sees traffic on every shard."""
        plan = make_plan()
        assert plan.tenant_base(0) == 0
        assert plan.tenant_base(plan.num_tenants - 1) >= \
            plan.data_size - plan.tenant_stride
        assert plan.tenant_stride % LINE == 0

    def test_extents_are_disjoint_and_owned(self):
        plan = make_plan()
        extents = plan.extents()
        assert len(extents) == plan.num_tenants
        for extent in extents:
            assert extent.size == plan.footprint_bytes
            assert plan.tenant_of(extent.base) == extent.tenant_id
            assert plan.tenant_of(extent.end - LINE) == extent.tenant_id
        for earlier, later in zip(extents, extents[1:]):
            assert earlier.end <= later.base

    def test_tenant_of_rejects_gaps_and_negatives(self):
        plan = make_plan(footprint_blocks=4)
        assert plan.tenant_of(-LINE) == -1
        assert plan.tenant_of(plan.tenant_base(0)
                              + plan.footprint_bytes) == -1
        assert plan.tenant_of(plan.data_size) == -1


class TestMixing:
    def test_mix_conserves_op_counts(self):
        mixer = TenantMixer(make_plan())
        mix = mixer.mix()
        assert len(mix) == mixer.plan.total_ops
        assert sum(mixer.tenant_ops) == mixer.plan.total_ops

    def test_mix_is_deterministic_in_the_master_seed(self):
        assert TenantMixer(make_plan()).mix() == \
            TenantMixer(make_plan()).mix()
        assert TenantMixer(make_plan(master_seed=43)).mix() != \
            TenantMixer(make_plan()).mix()

    def test_every_address_stays_in_its_tenants_extent(self):
        plan = make_plan()
        mixer = TenantMixer(plan)
        for op in mixer.mix():
            assert plan.tenant_of(op.address) >= 0, hex(op.address)

    def test_per_tenant_subsequence_equals_standalone_trace(self):
        """Stream determinism: the interleave permutes across tenants,
        never within one."""
        plan = make_plan()
        mixer = TenantMixer(plan)
        by_tenant = defaultdict(list)
        for op in mixer.mix():
            by_tenant[plan.tenant_of(op.address)].append(op)
        for tenant in range(plan.num_tenants):
            assert by_tenant[tenant] == mixer.tenant_trace(tenant), tenant

    def test_popularity_is_zipf_skewed(self):
        mixer = TenantMixer(make_plan(num_tenants=16, total_ops=2000))
        assert mixer.tenant_ops[0] == max(mixer.tenant_ops)
        assert mixer.tenant_ops[0] > 2 * mixer.tenant_ops[-1]

    def test_writes_carry_full_lines(self):
        for op in TenantMixer(make_plan()).mix():
            if op.kind is OpKind.WRITE:
                assert len(op.data) == LINE


class TestSeedHygiene:
    """The seed-collision regression: per-tenant seeds must be hashed from
    (master_seed, tenant_id), never ``master_seed + i`` — with additive
    seeds, tenant ``i`` under master ``s`` replays tenant ``i+1`` under
    ``s-1`` exactly."""

    def test_spread_seeds_do_not_slide(self):
        assert spread_seed(5, "tenant", 0) != spread_seed(4, "tenant", 1)
        assert spread_seed(5, "tenant", 0) != spread_seed(6, "tenant", -1)

    def test_adjacent_masters_share_no_tenant_streams(self):
        """No tenant's trace under master s appears anywhere under s-1."""
        mixer_a = TenantMixer(make_plan(master_seed=5))
        mixer_b = TenantMixer(make_plan(master_seed=4))
        traces_b = {tuple((op.kind, op.address) for op in
                          mixer_b.tenant_trace(t, num_ops=50))
                    for t in range(mixer_b.plan.num_tenants)}
        for tenant in range(mixer_a.plan.num_tenants):
            trace = tuple((op.kind, op.address) for op in
                          mixer_a.tenant_trace(tenant, num_ops=50))
            assert trace not in traces_b, tenant

    def test_tenant_seeds_are_pairwise_distinct(self):
        mixer = TenantMixer(make_plan(num_tenants=64, total_ops=0,
                                      data_size=1 << 22,
                                      footprint_blocks=4))
        seeds = [mixer.tenant_seed(t) for t in range(64)]
        assert len(set(seeds)) == 64
