"""Recovery-phase fault hooks: nested power cuts at every recovery step.

PR 2's sweep proved a Horus drain survives a power cut after *every* NVM
write index.  This is the recovery-side mirror: power fails again at every
step of the restore itself (every vault position for Horus, every shadow
line for Base-LU), and re-recovery from the persistent registers must be
idempotent — same bit-exact state, no double restore, no lost lines.
"""

import pytest

from repro.campaigns.engine import DRAIN_SEED, fill_lines
from repro.common.errors import DrainStateError, ReproError
from repro.core.system import SecureEpdSystem
from repro.faults.plan import PowerInterrupt

SWEEP_LINES = 10

HORUS_VARIANTS = (
    ("horus-slm", False),
    ("horus-slm", True),
    ("horus-dlm", False),
    ("horus-dlm", True),
)


def _crashed_episode(config, scheme, rotate_vault):
    system = SecureEpdSystem(config, scheme=scheme,
                             rotate_vault=rotate_vault)
    expected = fill_lines(system, SWEEP_LINES)
    system.crash(seed=DRAIN_SEED)
    system.nvm.restore_power()
    return system, expected


def _recovery_steps(config, scheme, rotate_vault):
    """How many step-hook firings a full recovery of this episode makes."""
    system, _ = _crashed_episode(config, scheme, rotate_vault)
    engine = system.recovery_engine
    positions = []
    engine.step_hook = positions.append
    system.recover()
    engine.step_hook = None
    return positions


def _interrupt_at(system, step):
    """Drive recovery into a nested power cut at ``step``, then re-recover."""
    engine = system.recovery_engine
    fired = []

    def hook(position):
        if position == step and not fired:
            fired.append(position)
            raise PowerInterrupt(f"nested cut at step {position}")

    engine.step_hook = hook
    try:
        with pytest.raises(PowerInterrupt):
            system.recover()
    finally:
        engine.step_hook = None
    assert fired == [step]
    system.power_cycle()
    return system.recover()


class TestNestedCutSweepHorus:
    @pytest.mark.parametrize("scheme,rotate", HORUS_VARIANTS,
                             ids=lambda v: str(v))
    def test_every_recovery_step_survives_a_nested_cut(
            self, tiny_config, scheme, rotate):
        positions = _recovery_steps(tiny_config, scheme, rotate)
        # The hook fires once per vault position, in order.
        assert positions == list(range(len(positions)))
        assert len(positions) >= SWEEP_LINES
        for step in positions:
            system, expected = _crashed_episode(tiny_config, scheme, rotate)
            report = _interrupt_at(system, step)
            assert report is not None
            for address, data in expected.items():
                assert system.read(address) == data, (
                    f"{scheme} rot={rotate}: wrong bytes at {address:#x} "
                    f"after nested cut at recovery step {step}")

    def test_drain_counter_cleared_exactly_once(self, tiny_config):
        system, _ = _crashed_episode(tiny_config, "horus-slm", False)
        steps = system.drain_counter.ephemeral
        assert steps > 0
        _interrupt_at(system, steps // 2)
        # Re-recovery consumed the episode: eDC back to zero, DC persists.
        assert system.drain_counter.ephemeral == 0
        assert system.drain_counter.value >= steps


class TestNestedCutSweepShadow:
    def test_every_shadow_restore_step_survives_a_nested_cut(
            self, tiny_config):
        positions = _recovery_steps(tiny_config, "base-lu", False)
        assert positions == list(range(len(positions)))
        assert positions
        for step in positions:
            system, expected = _crashed_episode(tiny_config, "base-lu",
                                                False)
            report = _interrupt_at(system, step)
            assert report is not None
            for address, data in expected.items():
                assert system.read(address) == data, (
                    f"base-lu: wrong bytes at {address:#x} after nested "
                    f"cut at shadow restore step {step}")

    def test_shadow_count_survives_an_interrupted_restore(self, tiny_config):
        system, _ = _crashed_episode(tiny_config, "base-lu", False)
        count = system.controller.shadow_count
        assert count > 0
        _interrupt_at(system, 0)
        # The dump is only retired once the restore completes.
        assert system.controller.shadow_count == 0


class TestHookMechanics:
    def test_step_hook_forces_scalar_recovery(self, tiny_config):
        # The batched recovery path cannot honor per-position hooks; with a
        # hook installed every position must be a distinct step.
        system, expected = _crashed_episode(tiny_config, "horus-dlm", False)
        engine = system.recovery_engine
        positions = []
        engine.step_hook = positions.append
        system.recover()
        engine.step_hook = None
        assert len(positions) == len(set(positions))
        for address, data in expected.items():
            assert system.read(address) == data

    def test_power_interrupt_is_a_typed_repro_error(self):
        assert issubclass(PowerInterrupt, ReproError)

    def test_power_cycle_requires_a_crash(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        with pytest.raises(DrainStateError):
            system.power_cycle()

    def test_power_cycle_drops_restored_volatile_state(self, tiny_config):
        system, expected = _crashed_episode(tiny_config, "horus-slm", False)
        system.recover()
        # Refill-mode recovery placed the vaulted lines back dirty; a
        # nested power cut makes them vanish again.
        assert system.hierarchy.dirty_line_count() > 0
        system.power_cycle()
        assert system.hierarchy.dirty_line_count() == 0

    def test_repeated_nested_cuts_converge(self, tiny_config):
        # Power can fail during re-recovery too: two nested cuts in a row
        # still end in a bit-exact restore.
        system, expected = _crashed_episode(tiny_config, "horus-dlm", True)
        engine = system.recovery_engine
        for step in (2, 1):
            fired = []

            def hook(position, step=step, fired=fired):
                if position == step and not fired:
                    fired.append(position)
                    raise PowerInterrupt(f"cut at {position}")

            engine.step_hook = hook
            with pytest.raises(PowerInterrupt):
                system.recover()
            engine.step_hook = None
            system.power_cycle()
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data
