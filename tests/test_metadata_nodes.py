"""Tree nodes and sparse defaults."""

import pytest

from repro.common.errors import AddressError
from repro.crypto.primitives import compute_mac
from repro.metadata.nodes import DefaultNodes, TreeNode


class TestTreeNode:
    def test_fresh_node_is_zeroed(self):
        node = TreeNode()
        assert node.to_bytes() == bytes(64)
        assert node.get_slot(0) == bytes(8)

    def test_slot_roundtrip(self):
        node = TreeNode()
        node.set_slot(3, b"\x01" * 8)
        assert node.get_slot(3) == b"\x01" * 8
        assert node.get_slot(2) == bytes(8)

    def test_slots_map_to_byte_ranges(self):
        node = TreeNode()
        node.set_slot(0, b"A" * 8)
        node.set_slot(7, b"B" * 8)
        raw = node.to_bytes()
        assert raw[:8] == b"A" * 8
        assert raw[56:] == b"B" * 8

    def test_rejects_bad_slots_and_sizes(self):
        node = TreeNode()
        with pytest.raises(AddressError):
            node.get_slot(8)
        with pytest.raises(AddressError):
            node.set_slot(-1, bytes(8))
        with pytest.raises(AddressError):
            node.set_slot(0, bytes(7))
        with pytest.raises(AddressError):
            TreeNode(bytes(63))

    def test_equality_and_copy(self):
        node = TreeNode()
        node.set_slot(1, b"\x42" * 8)
        copy = node.copy()
        assert copy == node
        copy.set_slot(1, bytes(8))
        assert copy != node


class TestDefaultNodes:
    KEY = b"test-default-key"

    def test_level0_default_is_zero_counter_block(self):
        defaults = DefaultNodes(self.KEY, num_levels=3)
        assert defaults.content(0) == bytes(64)
        assert defaults.mac(0) == compute_mac(self.KEY, bytes(64))

    def test_each_level_is_eight_copies_of_child_mac(self):
        defaults = DefaultNodes(self.KEY, num_levels=3)
        for level in range(1, 4):
            expected = defaults.mac(level - 1) * 8
            assert defaults.content(level) == expected
            assert defaults.mac(level) == compute_mac(
                self.KEY, defaults.content(level))

    def test_default_node_object(self):
        defaults = DefaultNodes(self.KEY, num_levels=2)
        node = defaults.default_node(1)
        assert node.get_slot(0) == defaults.mac(0)
        assert node.get_slot(7) == defaults.mac(0)

    def test_levels_differ(self):
        defaults = DefaultNodes(self.KEY, num_levels=4)
        macs = {defaults.mac(level) for level in range(5)}
        assert len(macs) == 5
