"""Recovery edge geometry: partial coalescing groups and the rotated wrap.

The DLM verify path buffers a whole 64-position group before trusting any of
it, and the rotated vault places episodes at a moving, group-aligned offset
— both have boundary cases (final partial group, episode straddling the
vault end) that only show up at block counts that are *not* multiples of the
register sizes."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE
from repro.core.system import SecureEpdSystem

STRIDE = CACHE_LINE_SIZE * 64


def _fill(system, lines):
    expected = {4096 + i * STRIDE: bytes([(7 * i + 13) % 256]) * 64
                for i in range(lines)}
    for address, data in expected.items():
        system.write(address, data)
    return expected


def _round_trip(config, scheme, lines, rotate=False, pre_episodes=0):
    system = SecureEpdSystem(config, scheme=scheme, rotate_vault=rotate)
    for _ in range(pre_episodes):
        system.drain_counter.next()
    expected = _fill(system, lines)
    system.crash(seed=3)
    system.recover()
    for address, data in expected.items():
        assert system.read(address) == data
    return system


class TestPartialGroups:
    """Vaulted-block counts that leave the MAC/address registers half full
    at episode end — including DLM's two register levels."""

    COUNTS = (1, 3, 5, 9, 13, 21)

    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_odd_counts_round_trip(self, tiny_config, scheme):
        residues_8, residues_64 = set(), set()
        for lines in self.COUNTS:
            system = _round_trip(tiny_config, scheme, lines)
            vaulted = (system.last_drain.flushed_blocks
                       + system.last_drain.metadata_blocks)
            residues_8.add(vaulted % 8)
            residues_64.add(vaulted % 64)
        # The sweep must actually exercise partial final groups at both
        # register levels, not only full-group episodes.
        assert residues_8 - {0}
        assert residues_64 - {0}

    def test_single_block_episode(self, tiny_config):
        _round_trip(tiny_config, "horus-dlm", 1)


class TestRotatedWrap:
    """An episode whose rotated offset starts in the last coalescing group
    wraps around the vault end; drain and recovery must agree on the
    modular slot mapping."""

    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_wrapped_episode_round_trips(self, tiny_config, scheme):
        probe = SecureEpdSystem(tiny_config, scheme=scheme, rotate_vault=True)
        chv = probe.drain_engine._chv
        align = probe.drain_engine.mac_group
        groups = chv.capacity // align

        system = _round_trip(tiny_config, scheme, lines=2 * align,
                             rotate=True, pre_episodes=groups - 1)
        rotation = system.drain_engine._rotation
        assert rotation.offset == chv.capacity - align
        assert rotation.offset + (2 * align) > chv.capacity

    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_every_start_group_round_trips(self, small_config, scheme):
        """Sweep the episode start across each rotation group at the small
        scale, covering wrap and non-wrap placements alike."""
        probe = SecureEpdSystem(small_config, scheme=scheme,
                                rotate_vault=True)
        groups = probe.drain_engine._chv.capacity \
            // probe.drain_engine.mac_group
        for start in range(groups):
            _round_trip(small_config, scheme, lines=9, rotate=True,
                        pre_episodes=start)
