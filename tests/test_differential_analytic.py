"""Differential tests: the closed-form cost models vs the simulator.

For every scheme and several scales, the simulated drain episode must agree
with ``core/analytic.py`` — exactly for the Horus schemes (whose drain cost
is a pure function of the block count) and within the hard baseline bounds
for the rest.  This is the invariant the persistent result cache relies on:
a drain report is fully determined by (config, scheme, seeds), so caching
one can never change a downstream number.
"""

import pytest

from repro.core.analytic import (
    horus_drain_cost,
    validate_baseline_report,
    validate_horus_report,
)
from repro.experiments.suite import DrainSuite
from repro.stats.events import WriteKind

SCALES = (8, 16, 32)


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def suite(request) -> DrainSuite:
    # Counting-only mode: the differential invariants are about operation
    # counts, which functional=False preserves (test_fast_mode pins that).
    return DrainSuite(scale=request.param, functional=False)


class TestHorusMatchesClosedForm:
    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_operation_counts_match_exactly(self, suite, scheme):
        report = suite.drain(scheme)
        validate_horus_report(report)

    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_write_breakdown_matches_exactly(self, suite, scheme):
        report = suite.drain(scheme)
        blocks = report.flushed_blocks + report.metadata_blocks
        cost = horus_drain_cost(blocks, double_level_mac=scheme == "horus-dlm")
        assert report.stats.writes[WriteKind.CHV_DATA] == cost.data_writes
        assert report.stats.writes[WriteKind.CHV_ADDRESS] == cost.address_writes
        assert report.stats.writes[WriteKind.CHV_MAC] == cost.mac_writes
        assert report.total_macs == cost.mac_computations
        assert report.stats.total_aes == cost.aes_operations
        assert report.total_reads == 0

    def test_dlm_pays_the_paper_mac_premium(self, suite):
        """DLM computes ceil(N/8) extra MACs over SLM for 8x fewer writes."""
        slm = suite.drain("horus-slm")
        dlm = suite.drain("horus-dlm")
        blocks = slm.flushed_blocks + slm.metadata_blocks
        assert dlm.total_macs - slm.total_macs == -(-blocks // 8)
        assert slm.stats.writes[WriteKind.CHV_MAC] \
            == -(-blocks // 8)
        assert dlm.stats.writes[WriteKind.CHV_MAC] \
            == -(-blocks // 64)


class TestBaselinesSatisfyBounds:
    @pytest.mark.parametrize("scheme", ["base-lu", "base-eu"])
    def test_baseline_invariants(self, suite, scheme):
        validate_baseline_report(suite.drain(scheme))


class TestNonSecureReference:
    def test_nosec_is_one_write_per_line_and_nothing_else(self, suite):
        report = suite.drain("nosec")
        assert report.total_writes == report.flushed_blocks
        assert report.metadata_blocks == 0
        assert report.total_reads == 0
        assert report.total_macs == 0
        assert report.stats.total_aes == 0
