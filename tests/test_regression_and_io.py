"""Regression comparison tool and trace file I/O."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.experiments.regression import (
    CellDrift,
    compare_runs,
    main as regression_main,
)
from repro.workloads.generators import kvstore_trace
from repro.workloads.io import load_trace, op_from_json, save_trace
from repro.workloads.trace import MemoryOp, OpKind


def _run_doc(value: float = 10.0, passed: bool = True) -> dict:
    return {
        "scale": 16,
        "experiments": [{
            "experiment_id": "figX",
            "headers": ["scheme", "requests", "ratio"],
            "rows": [["horus", 100, 1.25], ["base", 1000, value]],
            "checks": [{"claim": "horus wins", "passed": passed,
                        "measured": "x"}],
        }],
    }


class TestCompareRuns:
    def test_identical_runs_are_clean(self):
        report = compare_runs(_run_doc(), _run_doc())
        assert report.clean
        assert "no regressions" in report.to_text()

    def test_within_tolerance_is_clean(self):
        # 10.0 -> 10.05 is a 0.5% move: inside the 1% default tolerance.
        report = compare_runs(_run_doc(10.0), _run_doc(10.05),
                              tolerance=0.01)
        assert report.clean

    def test_drift_beyond_tolerance_is_reported(self):
        report = compare_runs(_run_doc(10.0), _run_doc(12.0))
        assert not report.clean
        assert len(report.drifts) == 1
        drift = report.drifts[0]
        assert drift.column == "ratio"
        assert drift.row_label == "base"
        assert drift.relative_change == pytest.approx(0.2)

    def test_check_flip_is_reported(self):
        report = compare_runs(_run_doc(passed=True), _run_doc(passed=False))
        assert report.check_flips
        assert "PASS->MISS" in report.check_flips[0]

    def test_missing_experiment_is_reported(self):
        new = _run_doc()
        new["experiments"] = []
        report = compare_runs(_run_doc(), new)
        assert report.missing_experiments == ["figX"]

    def test_non_numeric_cells_are_ignored(self):
        old, new = _run_doc(), _run_doc()
        old["experiments"][0]["rows"][0][0] = "horus"
        new["experiments"][0]["rows"][0][0] = "horus"
        assert compare_runs(old, new).clean

    def test_cli_roundtrip(self, tmp_path):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_run_doc(10.0)))
        new_path.write_text(json.dumps(_run_doc(15.0)))
        assert regression_main([str(old_path), str(new_path)]) == 1
        new_path.write_text(json.dumps(_run_doc(10.0)))
        assert regression_main([str(old_path), str(new_path)]) == 0

    def test_drift_str_is_readable(self):
        drift = CellDrift("figX", "base", "ratio", 10.0, 12.0)
        assert "figX[base].ratio" in str(drift)
        assert "+20.0%" in str(drift)


class TestTraceIO:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = kvstore_trace(100, footprint_blocks=32, seed=9)
        path = save_trace(trace, tmp_path / "trace.jsonl")
        assert load_trace(path) == trace

    def test_reads_are_compact(self, tmp_path):
        trace = [MemoryOp(OpKind.READ, 64)]
        path = save_trace(trace, tmp_path / "t.jsonl")
        line = path.read_text().strip()
        assert "data" not in line

    def test_write_payload_roundtrip(self, tmp_path):
        payload = bytes(range(64))
        trace = [MemoryOp(OpKind.WRITE, 0, payload)]
        path = save_trace(trace, tmp_path / "t.jsonl")
        assert load_trace(path)[0].data == payload

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"op":"read","addr":64}\n\n\n')
        assert len(load_trace(path)) == 1

    def test_malformed_line_raises(self):
        with pytest.raises(ConfigError):
            op_from_json("not json at all")
        with pytest.raises(ConfigError):
            op_from_json('{"op":"teleport","addr":0}')
