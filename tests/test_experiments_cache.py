"""The persistent experiment/episode result cache.

Covers the key scheme (config, scheme, seeds, code version), hit/miss
accounting, invalidation, corruption tolerance, and the ``--refresh`` /
``--no-cache`` escape hatches — plus the runner integration: a warm rerun
serves every experiment from disk.
"""

import pickle

import pytest

from repro.common.config import SystemConfig
from repro.experiments import cache as cache_mod
from repro.experiments.cache import (
    ResultCache,
    code_version,
    episode_key,
    experiment_key,
)
from repro.experiments.runner import run_experiments_profiled
from repro.experiments.suite import DRAIN_SEED, FILL_SEED, DrainSuite

SCALE = 256


@pytest.fixture(autouse=True)
def _fresh_code_version():
    code_version.cache_clear()
    yield
    code_version.cache_clear()


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(root=tmp_path / "cache")


def _key(config=None, scheme="nosec") -> str:
    config = config or SystemConfig.scaled(SCALE)
    return episode_key(config, scheme, "sparse", FILL_SEED, DRAIN_SEED)


class TestKeying:
    def test_same_inputs_same_key(self):
        assert _key() == _key()

    def test_config_field_change_changes_key(self):
        from dataclasses import replace
        base = SystemConfig.scaled(SCALE)
        grown = replace(base, security=replace(
            base.security,
            counter_cache_size=base.security.counter_cache_size * 2))
        assert _key(base) != _key(grown)

    def test_scheme_seeds_and_fill_change_key(self):
        config = SystemConfig.scaled(SCALE)
        baseline = episode_key(config, "nosec", "sparse",
                               FILL_SEED, DRAIN_SEED)
        assert episode_key(config, "base-lu", "sparse",
                           FILL_SEED, DRAIN_SEED) != baseline
        assert episode_key(config, "nosec", "sequential",
                           FILL_SEED, DRAIN_SEED) != baseline
        assert episode_key(config, "nosec", "sparse",
                           FILL_SEED + 1, DRAIN_SEED) != baseline
        assert episode_key(config, "nosec", "sparse",
                           FILL_SEED, DRAIN_SEED + 1) != baseline

    def test_code_version_change_invalidates(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
        first = _key()
        code_version.cache_clear()
        monkeypatch.setenv("REPRO_CODE_VERSION", "v2")
        assert _key() != first

    def test_experiment_key_separates_experiments(self):
        config = SystemConfig.scaled(SCALE)
        a = experiment_key("fig11", config, SCALE, True,
                           FILL_SEED, DRAIN_SEED)
        b = experiment_key("fig12", config, SCALE, True,
                           FILL_SEED, DRAIN_SEED)
        assert a != b
        # Experiment and episode namespaces never collide.
        assert a != _key(config)


class TestStoreAndLoad:
    def test_miss_then_hit(self, cache):
        assert cache.get("k" * 64) is None
        cache.put("k" * 64, {"value": 1})
        assert cache.get("k" * 64) == {"value": 1}
        assert cache.counters() == {"hits": 1, "misses": 1, "stores": 1,
                                    "corrupt": 0}

    def test_disabled_cache_never_stores_or_hits(self, tmp_path):
        disabled = ResultCache(root=tmp_path, enabled=False)
        disabled.put("key", 42)
        assert disabled.get("key") is None
        assert disabled.stores == 0
        assert not list(tmp_path.glob("*.pkl"))

    def test_refresh_ignores_existing_but_still_stores(self, tmp_path):
        warm = ResultCache(root=tmp_path)
        warm.put("key", "old")
        refreshing = ResultCache(root=tmp_path, refresh=True)
        assert refreshing.get("key") is None
        refreshing.put("key", "new")
        assert ResultCache(root=tmp_path).get("key") == "new"

    def test_corrupted_file_is_a_miss_and_removed(self, cache):
        cache.put("key", "payload")
        path = cache._path("key")
        path.write_bytes(b"not a pickle")
        assert cache.get("key") is None
        assert not path.exists()
        # Recompute-and-store works afterwards.
        cache.put("key", "payload")
        assert cache.get("key") == "payload"

    def test_wrong_key_inside_file_is_a_miss(self, cache):
        cache.put("other", "payload")
        entry = pickle.loads(cache._path("other").read_bytes())
        cache._path("stolen").write_bytes(pickle.dumps(entry))
        assert cache.get("stolen") is None

    def test_stale_format_is_a_miss(self, cache):
        cache._path("key").parent.mkdir(parents=True, exist_ok=True)
        cache._path("key").write_bytes(pickle.dumps(
            {"format": -1, "key": "key", "payload": "old"}))
        assert cache.get("key") is None

    def test_corrupt_entry_is_counted_and_logged(self, cache, caplog):
        cache.put("key", "payload")
        cache._path("key").write_bytes(b"\x80\x05garbage")
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.get("key") is None
        assert cache.corrupt == 1
        assert cache.misses == 1
        assert cache.counters()["corrupt"] == 1
        assert any("corrupt entry" in record.getMessage()
                   for record in caplog.records)

    def test_truncated_entry_is_a_miss_not_a_crash(self, cache):
        cache.put("key", "payload")
        path = cache._path("key")
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get("key") is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_clean_miss_is_not_counted_as_corrupt(self, cache):
        assert cache.get("never-stored") is None
        assert cache.corrupt == 0

    def test_programming_errors_still_propagate(self, cache, monkeypatch):
        # The broad `except Exception` this path used to have would have
        # classified a simulator bug as a cache miss; only the documented
        # (de)serialization/IO errors may become misses.
        cache.put("key", "payload")

        def explode(*args, **kwargs):
            raise RuntimeError("bug in the simulator, not in the cache file")

        monkeypatch.setattr(pickle, "load", explode)
        with pytest.raises(RuntimeError):
            cache.get("key")
        assert cache.corrupt == 0

    def test_absorb_counters_folds_corrupt(self, cache):
        cache.absorb_counters({"hits": 2, "misses": 3, "stores": 1,
                               "corrupt": 1})
        assert cache.corrupt == 1
        assert cache.counters() == {"hits": 2, "misses": 3, "stores": 1,
                                    "corrupt": 1}


class TestDrainSuiteIntegration:
    def test_episode_cached_across_suites(self, cache):
        first = DrainSuite(scale=SCALE, cache=cache)
        report = first.drain("nosec")
        assert cache.stores == 1
        second = DrainSuite(scale=SCALE, cache=cache)
        cached = second.drain("nosec")
        assert cache.hits == 1
        assert cached.flushed_blocks == report.flushed_blocks
        assert cached.stats.snapshot() == report.stats.snapshot()

    def test_refresh_recomputes_episodes(self, tmp_path):
        DrainSuite(scale=SCALE,
                   cache=ResultCache(root=tmp_path)).drain("nosec")
        refreshing = ResultCache(root=tmp_path, refresh=True)
        DrainSuite(scale=SCALE, cache=refreshing).drain("nosec")
        assert refreshing.hits == 0
        assert refreshing.stores == 1


class TestRunnerIntegration:
    def test_warm_rerun_serves_experiments_from_cache(self, tmp_path):
        names = ["fig11", "ablation-coalescing"]
        cold_cache = ResultCache(root=tmp_path)
        cold, cold_profile = run_experiments_profiled(
            names, scale=SCALE, jobs=1, cache=cold_cache)
        assert all(r.source == "computed" for r in cold_profile.records)

        warm_cache = ResultCache(root=tmp_path)
        warm, warm_profile = run_experiments_profiled(
            names, scale=SCALE, jobs=1, cache=warm_cache)
        assert all(r.source == "cache" for r in warm_profile.records)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]

    def test_warm_parallel_run_matches_too(self, tmp_path):
        names = ["fig11"]
        cold = run_experiments_profiled(
            names, scale=SCALE, jobs=1, cache=ResultCache(root=tmp_path))[0]
        warm, profile = run_experiments_profiled(
            names, scale=SCALE, jobs=2, cache=ResultCache(root=tmp_path))
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
        assert profile.cached_records == len(profile.records)


class TestCodeFingerprint:
    """REPRO_CODE_FINGERPRINT selects between the fast local mtime mode
    and the checkout-stable content-hash mode."""

    def _source_file(self):
        import repro
        from pathlib import Path
        return Path(repro.__file__).resolve().parent / "__init__.py"

    def test_modes_produce_fingerprints(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "mtime")
        mtime_fp = code_version()
        code_version.cache_clear()
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "content")
        content_fp = code_version()
        for fingerprint in (mtime_fp, content_fp):
            assert len(fingerprint) == 16
            int(fingerprint, 16)  # hex digest prefix

    def test_content_mode_ignores_mtime_only_changes(self, monkeypatch):
        import os
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "content")
        before = code_version()
        path = self._source_file()
        stat = path.stat()
        try:
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1000))
            code_version.cache_clear()
            assert code_version() == before
        finally:
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))

    def test_mtime_mode_sees_mtime_changes(self, monkeypatch):
        import os
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "mtime")
        before = code_version()
        path = self._source_file()
        stat = path.stat()
        try:
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1000))
            code_version.cache_clear()
            assert code_version() != before
        finally:
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))

    def test_invalid_mode_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "sideways")
        with pytest.raises(ValueError, match="REPRO_CODE_FINGERPRINT"):
            code_version()

    def test_override_beats_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "sideways")
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        assert code_version() == "pinned"
