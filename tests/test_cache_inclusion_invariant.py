"""Inclusion invariants under conflict-heavy run-time traffic.

Regression suite for a bug found at paper scale: an L2 conflict eviction
dropped a clean line while L1 still held (and later dirtied) its copy,
breaking the inclusive invariant the write-back path relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from tests.conftest import examples

CONFIG = SystemConfig.scaled(512)


def _assert_inclusive(hierarchy):
    for line in hierarchy.l1.lines():
        assert hierarchy.l2.contains(line.address), \
            f"L1 line {line.address:#x} missing from L2"
        assert hierarchy.llc.contains(line.address)
    for line in hierarchy.l2.lines():
        assert hierarchy.llc.contains(line.address), \
            f"L2 line {line.address:#x} missing from LLC"


class TestInclusionInvariant:
    def test_l2_conflict_eviction_back_invalidates_l1(self):
        """The exact paper-scale failure shape: dirty an L1 line, then
        force its L2 set to overflow with other addresses."""
        system = SecureEpdSystem(CONFIG, scheme="nosec")
        h = system.hierarchy
        l2_sets = CONFIG.l2.num_sets
        target = 0
        system.write(target, b"\x77" * 64)   # resident+dirty in L1
        # Addresses that conflict with `target` in L2 but not in L1.
        for way in range(CONFIG.l2.ways + 2):
            system.read((way + 1) * l2_sets * 64)
        _assert_inclusive(h)
        # The target must have left L1 along with L2 — and its data
        # must survive wherever it went.
        assert system.read(target) == b"\x77" * 64

    def test_sustained_conflict_traffic_holds_the_invariant(self):
        system = SecureEpdSystem(CONFIG, scheme="nosec")
        l2_sets = CONFIG.l2.num_sets
        for i in range(200):
            address = (i % 24) * l2_sets * 64
            if i % 3:
                system.write(address, (i % 251).to_bytes(1, "little") * 64)
            else:
                system.read(address)
            if i % 20 == 0:
                _assert_inclusive(system.hierarchy)
        _assert_inclusive(system.hierarchy)

    @given(ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 60)), min_size=1,
        max_size=150))
    @settings(max_examples=examples(25))
    def test_invariant_under_random_conflict_streams(self, ops):
        """Random traffic over a deliberately conflict-dense address set
        (multiples of the L2 set count) with a data-correctness oracle."""
        system = SecureEpdSystem(CONFIG, scheme="nosec")
        stride = CONFIG.l2.num_sets * 64
        reference = {}
        for is_write, slot in ops:
            address = slot * stride
            if address >= CONFIG.memory.size:
                continue
            if is_write:
                payload = slot.to_bytes(2, "little") * 32
                system.write(address, payload)
                reference[address] = payload
            else:
                assert system.read(address) == reference.get(
                    address, bytes(64))
        _assert_inclusive(system.hierarchy)
        for address, expected in reference.items():
            assert system.read(address) == expected
