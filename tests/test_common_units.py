"""Unit-conversion helpers."""

import pytest

from repro.common import units


class TestBinarySizes:
    def test_kib(self):
        assert units.kib(1) == 1024
        assert units.kib(64) == 65536

    def test_mib(self):
        assert units.mib(1) == 1024 ** 2
        assert units.mib(2) == 2 * 1024 ** 2

    def test_gib(self):
        assert units.gib(32) == 32 * 1024 ** 3

    def test_fractional_sizes_truncate_to_int(self):
        assert units.kib(1.5) == 1536
        assert isinstance(units.kib(1.5), int)


class TestCycleConversions:
    def test_ns_to_cycles_at_4ghz(self):
        # Table I: 150 ns read = 600 cycles, 500 ns write = 2000 cycles.
        assert units.ns_to_cycles(150) == 600
        assert units.ns_to_cycles(500) == 2000

    def test_ns_to_cycles_other_frequency(self):
        assert units.ns_to_cycles(100, frequency_hz=1_000_000_000) == 100

    def test_cycles_to_seconds_roundtrip(self):
        cycles = units.ns_to_cycles(500)
        assert units.cycles_to_seconds(cycles) == pytest.approx(500e-9)

    def test_cycles_to_ms(self):
        assert units.cycles_to_ms(4_000_000) == pytest.approx(1.0)


class TestFormatBytes:
    @pytest.mark.parametrize("value,expected", [
        (64, "64B"),
        (1024, "1KiB"),
        (65536, "64KiB"),
        (2 * 1024 ** 2, "2MiB"),
        (32 * 1024 ** 3, "32GiB"),
    ])
    def test_exact_units(self, value, expected):
        assert units.format_bytes(value) == expected

    def test_non_multiple_falls_back_to_bytes(self):
        assert units.format_bytes(100) == "100B"
