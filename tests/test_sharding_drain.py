"""Cross-shard drain policies: scheduling algebra and policy invariance.

Policies place already-measured per-shard episodes on a timeline; they must
never change *what* a shard drains.  The scheduling extremes are exact:
simultaneous is (wall = max, peak = sum), staggered is (wall = sum,
peak = max), and the budgeted greedy interpolates between them without ever
crossing its watt cap.
"""

import pytest

from repro.common.errors import ConfigError
from repro.sharding.drain import (
    DRAIN_POLICIES,
    BudgetedDrain,
    SimultaneousDrain,
    StaggeredDrain,
    make_drain_policy,
)
from repro.sharding.system import ShardedSecureSystem

EPISODES = [(2.0, 8.0), (1.0, 6.0), (4.0, 4.0)]
POWERS = [4.0, 6.0, 1.0]


class TestScheduleExtremes:
    def test_simultaneous_wall_max_peak_sum(self):
        schedule = SimultaneousDrain().schedule_measured(EPISODES)
        assert schedule.wall_seconds == 4.0
        assert schedule.peak_power_w == pytest.approx(sum(POWERS))
        assert all(slot.start_s == 0.0 for slot in schedule.slots)
        assert schedule.energy_j == pytest.approx(18.0)

    def test_staggered_wall_sum_peak_max(self):
        schedule = StaggeredDrain().schedule_measured(EPISODES)
        assert schedule.wall_seconds == pytest.approx(7.0)
        assert schedule.peak_power_w == pytest.approx(max(POWERS))
        starts = [slot.start_s for slot in schedule.slots]
        assert starts == [0.0, 2.0, 3.0]

    def test_slot_powers_are_energy_over_time(self):
        schedule = SimultaneousDrain().schedule_measured(EPISODES)
        assert [slot.power_w for slot in schedule.slots] == \
            pytest.approx(POWERS)

    def test_zero_length_episodes_draw_nothing(self):
        schedule = SimultaneousDrain().schedule_measured(
            [(0.0, 0.0), (2.0, 4.0)])
        assert schedule.wall_seconds == 2.0
        assert schedule.peak_power_w == pytest.approx(2.0)
        assert schedule.slots[0].power_w == 0.0


class TestBudgetedInterpolation:
    def test_generous_budget_degenerates_to_simultaneous(self):
        generous = BudgetedDrain(sum(POWERS)).schedule_measured(EPISODES)
        simultaneous = SimultaneousDrain().schedule_measured(EPISODES)
        assert [slot.start_s for slot in generous.slots] == \
            [slot.start_s for slot in simultaneous.slots]
        assert generous.wall_seconds == simultaneous.wall_seconds

    def test_tight_budget_degenerates_to_staggered(self):
        episodes = [(1.0, 5.0)] * 3
        tight = BudgetedDrain(5.0).schedule_measured(episodes)
        staggered = StaggeredDrain().schedule_measured(episodes)
        assert [slot.start_s for slot in tight.slots] == \
            [slot.start_s for slot in staggered.slots]
        assert tight.wall_seconds == pytest.approx(3.0)

    def test_intermediate_budget_interpolates_and_respects_cap(self):
        budget = 7.0
        schedule = BudgetedDrain(budget).schedule_measured(EPISODES)
        simultaneous = SimultaneousDrain().schedule_measured(EPISODES)
        staggered = StaggeredDrain().schedule_measured(EPISODES)
        assert simultaneous.wall_seconds <= schedule.wall_seconds \
            <= staggered.wall_seconds
        assert schedule.peak_power_w <= budget * (1 + 1e-9)
        assert schedule.energy_j == pytest.approx(simultaneous.energy_j)

    def test_infeasible_single_shard_raises(self):
        with pytest.raises(ConfigError, match="no schedule exists"):
            BudgetedDrain(5.0).schedule_measured(EPISODES)


class TestValidation:
    def test_registry_names(self):
        assert DRAIN_POLICIES == ("simultaneous", "staggered", "budgeted")
        for name in ("simultaneous", "staggered"):
            assert make_drain_policy(name).name == name
        assert make_drain_policy("budgeted", 3.0).name == "budgeted"

    def test_policy_instances_pass_through(self):
        policy = StaggeredDrain()
        assert make_drain_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown drain policy"):
            make_drain_policy("round-robin")

    def test_budgeted_requires_a_budget(self):
        with pytest.raises(ConfigError, match="power_budget_w"):
            make_drain_policy("budgeted")
        with pytest.raises(ConfigError, match="positive"):
            BudgetedDrain(0.0)

    def test_schedule_rejects_mismatched_lengths(self, tiny_config):
        fleet = ShardedSecureSystem(tiny_config, num_shards=2,
                                    scheme="base-eu")
        fleet.write(0, bytes(64))
        report = fleet.crash(seed=5)
        with pytest.raises(ConfigError, match="drain reports"):
            SimultaneousDrain().schedule(report.reports,
                                         report.energies[:1])


class TestPolicyInvariance:
    """Policies schedule; shards drain identically regardless."""

    def drained_fleet(self, config, policy, **kwargs):
        fleet = ShardedSecureSystem(config, num_shards=2,
                                    scheme="horus-dlm", drain_policy=policy,
                                    **kwargs)
        size = fleet.router.shard_data_size
        for i in range(6):
            fleet.write((i % 2) * size + i * 64, bytes([i + 1]) * 64)
        fleet.crash(seed=17)
        return fleet

    def test_per_shard_drain_observables_are_policy_invariant(
            self, tiny_config):
        """Same fleet, same traffic, different policy: every per-shard
        observable (image hash, stats, drained blocks) is identical."""
        simultaneous = self.drained_fleet(tiny_config, "simultaneous")
        staggered = self.drained_fleet(tiny_config, "staggered")
        budgeted = self.drained_fleet(tiny_config, "budgeted",
                                      power_budget_w=1e6)
        assert simultaneous.observables() == staggered.observables() == \
            budgeted.observables()
        walls = {fleet.last_drain.schedule.policy: fleet.last_drain
                 for fleet in (simultaneous, staggered, budgeted)}
        assert walls["staggered"].wall_seconds == pytest.approx(
            sum(r.seconds for r in walls["staggered"].reports))
        assert walls["simultaneous"].wall_seconds == pytest.approx(
            max(r.seconds for r in walls["simultaneous"].reports))

    def test_schedule_equals_schedule_measured(self, tiny_config):
        """The report-level wrapper and the bare-measurement core agree,
        so pooled runs (floats only) schedule exactly like in-process."""
        fleet = self.drained_fleet(tiny_config, "simultaneous")
        drain = fleet.last_drain
        for name in ("simultaneous", "staggered"):
            policy = make_drain_policy(name)
            assert policy.schedule(drain.reports, drain.energies) == \
                policy.schedule_measured(
                    [(r.seconds, e.total_j)
                     for r, e in zip(drain.reports, drain.energies)])
