"""CHV layout and sizing."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import AddressError
from repro.core.chv import (
    MAC_GROUP_DLM,
    MAC_GROUP_SLM,
    ChvLayout,
    expected_chv_bytes,
)
from repro.mem.regions import MemoryLayout


@pytest.fixture(scope="module")
def chv(tiny_config) -> ChvLayout:
    return ChvLayout.for_layout(MemoryLayout(tiny_config))


class TestCapacity:
    def test_capacity_covers_hierarchy_plus_metadata(self, chv, tiny_config):
        needed = (tiny_config.total_cache_lines
                  + tiny_config.metadata_cache_size // 64)
        # Rounded up to a whole 64-position (DLM) coalescing group.
        assert chv.capacity == -(-needed // 64) * 64

    def test_section_4d_sizing_formula(self, tiny_config):
        """CHV ~= 1.25 x cache + 1.125 x metadata cache for SLM."""
        layout = MemoryLayout(tiny_config)
        assert layout.chv.size >= expected_chv_bytes(tiny_config) * 0.99

    def test_mac_groups(self):
        assert MAC_GROUP_SLM == 8
        assert MAC_GROUP_DLM == 64


class TestPositionalAddressing:
    def test_data_slots_are_contiguous(self, chv):
        assert chv.data_address(1) - chv.data_address(0) == 64
        assert chv.data_address(0) == chv.region.base

    def test_areas_do_not_overlap(self, chv):
        last_data = chv.data_address(chv.capacity - 1)
        first_addr_block = chv.address_block_address(0)
        first_mac_block = chv.mac_block_address(0)
        assert last_data < first_addr_block < first_mac_block

    def test_address_block_covers_eight_positions(self, chv):
        assert chv.address_block_address(0) == chv.address_block_address(0)
        assert (chv.address_block_address(1)
                - chv.address_block_address(0)) == 64

    def test_everything_stays_inside_the_region(self, chv):
        assert chv.region.contains(chv.data_address(chv.capacity - 1))
        last_group = (chv.capacity - 1) // 8
        assert chv.region.contains(chv.address_block_address(last_group))
        assert chv.region.contains(chv.mac_block_address(last_group))

    def test_out_of_capacity_raises(self, chv):
        with pytest.raises(AddressError):
            chv.data_address(chv.capacity)
        with pytest.raises(AddressError):
            chv.data_address(-1)


class TestScaling:
    def test_chv_grows_with_llc(self):
        from repro.common.units import mib
        small = ChvLayout.for_layout(
            MemoryLayout(SystemConfig.scaled(64, llc_size=mib(8))))
        large = ChvLayout.for_layout(
            MemoryLayout(SystemConfig.scaled(64, llc_size=mib(32))))
        assert large.capacity > small.capacity
