"""Per-tenant key domains: derivation, keyring resolution, keyed engines."""

import pytest

from repro.common.errors import ConfigError
from repro.crypto.engine import (
    DEFAULT_AES_KEY,
    DEFAULT_MAC_KEY,
    AesEngine,
    MacEngine,
)
from repro.sharding.keys import (
    MASTER_TENANT,
    TENANT_KEY_SIZE,
    TenantExtent,
    TenantKeyedAes,
    TenantKeyedMac,
    TenantKeyring,
    TenantKeySchedule,
    derive_tenant_key,
)
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind

LINE = 64
BLOCK = bytes(range(256))[:64]


def ring(*extents):
    return TenantKeyring(extents)


def two_tenant_ring(size=4 * LINE):
    return ring(TenantExtent(0, 0, size),
                TenantExtent(1, 2 * size, size))


class TestKeyDerivation:
    def test_deterministic(self):
        assert derive_tenant_key(DEFAULT_AES_KEY, 7) == \
            derive_tenant_key(DEFAULT_AES_KEY, 7)

    def test_distinct_per_tenant_master_and_label(self):
        keys = {
            derive_tenant_key(DEFAULT_AES_KEY, 0),
            derive_tenant_key(DEFAULT_AES_KEY, 1),
            derive_tenant_key(DEFAULT_MAC_KEY, 0),
            derive_tenant_key(DEFAULT_AES_KEY, 0, label=b"other"),
        }
        assert len(keys) == 4
        assert all(len(key) == TENANT_KEY_SIZE for key in keys)

    def test_rejects_negative_tenant(self):
        with pytest.raises(ConfigError, match="non-negative"):
            derive_tenant_key(DEFAULT_AES_KEY, -1)


class TestTenantExtent:
    def test_rejects_misaligned_base_and_size(self):
        with pytest.raises(ConfigError, match="base"):
            TenantExtent(0, 32, LINE)
        with pytest.raises(ConfigError, match="size"):
            TenantExtent(0, 0, 96)
        with pytest.raises(ConfigError, match="size"):
            TenantExtent(0, 0, 0)


class TestTenantKeyring:
    def test_rejects_overlapping_extents(self):
        with pytest.raises(ConfigError, match="overlap"):
            ring(TenantExtent(0, 0, 2 * LINE),
                 TenantExtent(1, LINE, 2 * LINE))

    def test_tenant_of_resolves_inside_boundary_and_gap(self):
        keyring = two_tenant_ring()
        assert keyring.tenant_of(0) == 0
        assert keyring.tenant_of(4 * LINE - 1) == 0
        assert keyring.tenant_of(4 * LINE) == MASTER_TENANT
        assert keyring.tenant_of(8 * LINE) == 1
        assert keyring.tenant_of(12 * LINE) == MASTER_TENANT

    def test_keys_depend_only_on_tenant_id(self):
        """Same tenant id, different extent layouts -> same keys: tenants
        keep their keys across shards and reshardings."""
        one = ring(TenantExtent(3, 0, LINE))
        other = ring(TenantExtent(3, 8 * LINE, 4 * LINE))
        assert one.aes_key(3) == other.aes_key(3)
        assert one.mac_key(3) == other.mac_key(3)
        assert one.aes_key(MASTER_TENANT) == DEFAULT_AES_KEY
        assert one.mac_key(MASTER_TENANT) == DEFAULT_MAC_KEY

    def test_key_runs_group_maximal_spans(self):
        keyring = two_tenant_ring()
        addresses = [0, LINE, 8 * LINE, 9 * LINE, 0, 20 * LINE]
        assert list(keyring.key_runs(addresses)) == [
            (0, 2, 0), (2, 4, 1), (4, 5, 0), (5, 6, MASTER_TENANT)]

    def test_shard_view_clips_and_rebases(self):
        keyring = ring(TenantExtent(0, 0, 4 * LINE),
                       TenantExtent(1, 4 * LINE, 4 * LINE))
        view = keyring.shard_view(2 * LINE, 4 * LINE)
        assert [(e.tenant_id, e.base, e.size) for e in view.extents] == [
            (0, 0, 2 * LINE), (1, 2 * LINE, 2 * LINE)]
        # Clipped views still hand out the same tenant keys.
        assert view.aes_key(1) == keyring.aes_key(1)

    def test_shard_view_rejects_bad_window(self):
        with pytest.raises(ConfigError, match="shard window"):
            two_tenant_ring().shard_view(0, 0)

    def test_empty_keyring_is_all_master(self):
        keyring = ring()
        assert keyring.tenant_of(0) == MASTER_TENANT
        assert list(keyring.key_runs([0, LINE])) == [(0, 2, MASTER_TENANT)]


class TestTenantKeyedAes:
    def engines(self):
        keyring = two_tenant_ring()
        return (TenantKeyedAes(SimStats(), keyring),
                AesEngine(SimStats()), keyring)

    def test_tenant_ciphertext_differs_from_master(self):
        tenant_aes, master_aes, _ = self.engines()
        assert tenant_aes.encrypt(0, 1, BLOCK) != \
            master_aes.encrypt(0, 1, BLOCK)

    def test_unowned_addresses_use_master_key(self):
        tenant_aes, master_aes, keyring = self.engines()
        gap = 4 * LINE
        assert keyring.tenant_of(gap) == MASTER_TENANT
        assert tenant_aes.encrypt(gap, 1, BLOCK) == \
            master_aes.encrypt(gap, 1, BLOCK)

    def test_roundtrip_per_tenant(self):
        tenant_aes, _, _ = self.engines()
        for address in (0, 8 * LINE, 20 * LINE):
            ciphertext = tenant_aes.encrypt(address, 5, BLOCK)
            assert tenant_aes.decrypt(address, 5, ciphertext) == BLOCK

    def test_batch_matches_scalar_across_tenant_runs(self):
        tenant_aes, _, _ = self.engines()
        addresses = [0, LINE, 8 * LINE, 20 * LINE, 0]
        counters = [1, 2, 3, 4, 5]
        buffer = b"".join(BLOCK for _ in addresses)
        batched = tenant_aes.encrypt_batch(addresses, counters, buffer)
        scalar = b"".join(
            tenant_aes.encrypt(address, counter, BLOCK)
            for address, counter in zip(addresses, counters))
        assert batched == scalar
        assert tenant_aes.decrypt_batch(addresses, counters, batched) == \
            buffer

    def test_accounting_matches_base_engine(self):
        tenant_aes, _, _ = self.engines()
        tenant_aes.encrypt(0, 1, BLOCK)
        tenant_aes.encrypt_batch([0, 8 * LINE], [1, 2], BLOCK + BLOCK)
        assert tenant_aes._stats.aes[AesKind.ENCRYPT] == 3


class TestTenantKeyedMac:
    def engines(self):
        keyring = two_tenant_ring()
        return (TenantKeyedMac(SimStats(), keyring),
                MacEngine(SimStats()), keyring)

    def test_block_macs_separate_tenants(self):
        """The same (ciphertext, address shape, counter) MACs differently
        under different tenants' keys — the isolation the splice tests
        lean on."""
        tenant_mac, master_mac, _ = self.engines()
        a = tenant_mac.block_mac(MacKind.DATA_PROTECT, BLOCK, 0, 1)
        b = tenant_mac.block_mac(MacKind.DATA_PROTECT, BLOCK, 8 * LINE, 1)
        master = master_mac.block_mac(MacKind.DATA_PROTECT, BLOCK, 0, 1)
        assert a != master
        assert a != b

    def test_metadata_macs_stay_master_keyed(self):
        """Node and digest MACs are identical to the master engine's — the
        tree spans all tenants."""
        tenant_mac, master_mac, _ = self.engines()
        assert tenant_mac.node_mac(MacKind.TREE_UPDATE, BLOCK, 3 * LINE) == \
            master_mac.node_mac(MacKind.TREE_UPDATE, BLOCK, 3 * LINE)
        assert tenant_mac.digest_mac(MacKind.CHV_LEVEL2, BLOCK) == \
            master_mac.digest_mac(MacKind.CHV_LEVEL2, BLOCK)

    def test_block_mac_batch_matches_scalar(self):
        tenant_mac, _, _ = self.engines()
        addresses = [0, 8 * LINE, 9 * LINE, 0, 30 * LINE]
        counters = [1, 2, 3, 4, 5]
        buffer = b"".join(BLOCK for _ in addresses)
        batched = tenant_mac.block_mac_batch(
            MacKind.DATA_PROTECT, buffer, addresses, counters)
        scalar = [tenant_mac.block_mac(MacKind.DATA_PROTECT, BLOCK,
                                       address, counter)
                  for address, counter in zip(addresses, counters)]
        assert batched == scalar


class TestTenantKeySchedule:
    def test_build_returns_keyed_engines_on_shared_stats(self):
        stats = SimStats()
        schedule = TenantKeySchedule(two_tenant_ring())
        aes, mac = schedule.build(stats, True)
        assert isinstance(aes, TenantKeyedAes)
        assert isinstance(mac, TenantKeyedMac)
        aes.encrypt(0, 1, BLOCK)
        mac.block_mac(MacKind.DATA_PROTECT, BLOCK, 0, 1)
        assert stats.aes[AesKind.ENCRYPT] == 1
        assert stats.macs[MacKind.DATA_PROTECT] == 1

    def test_non_functional_build_skips_crypto_values(self):
        aes, mac = TenantKeySchedule(two_tenant_ring()).build(SimStats(),
                                                              False)
        assert aes.encrypt(0, 1, BLOCK) == BLOCK
        assert mac.block_mac(MacKind.DATA_PROTECT, BLOCK, 0, 1) == bytes(8)
