"""Set-associative cache with LRU replacement."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.line import CacheLine
from repro.common.config import CacheConfig


@pytest.fixture
def cache() -> SetAssociativeCache:
    # 4 sets x 2 ways of 64 B lines.
    return SetAssociativeCache(CacheConfig("test", 512, 2, 1))


def _addr(set_index: int, tag: int, num_sets: int = 4) -> int:
    return (tag * num_sets + set_index) * 64


class TestLookupInsert:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(0) is None
        cache.insert(CacheLine(0, bytes(64)))
        line = cache.lookup(0)
        assert line is not None and line.address == 0
        assert cache.misses == 1 and cache.hits == 1

    def test_set_mapping(self, cache):
        assert cache.set_index(0) == 0
        assert cache.set_index(64) == 1
        assert cache.set_index(4 * 64) == 0

    def test_insert_same_address_replaces_in_place(self, cache):
        cache.insert(CacheLine(0, b"\x01" * 64))
        victim = cache.insert(CacheLine(0, b"\x02" * 64))
        assert victim is None
        assert cache.lookup(0).data == b"\x02" * 64
        assert len(cache) == 1

    def test_no_eviction_until_set_full(self, cache):
        assert cache.insert(CacheLine(_addr(0, 0))) is None
        assert cache.insert(CacheLine(_addr(0, 1))) is None
        assert len(cache) == 2


class TestLruEviction:
    def test_evicts_least_recently_used(self, cache):
        cache.insert(CacheLine(_addr(0, 0)))
        cache.insert(CacheLine(_addr(0, 1)))
        victim = cache.insert(CacheLine(_addr(0, 2)))
        assert victim.address == _addr(0, 0)

    def test_lookup_refreshes_lru(self, cache):
        cache.insert(CacheLine(_addr(0, 0)))
        cache.insert(CacheLine(_addr(0, 1)))
        cache.lookup(_addr(0, 0))             # 0 becomes MRU
        victim = cache.insert(CacheLine(_addr(0, 2)))
        assert victim.address == _addr(0, 1)

    def test_untouched_lookup_does_not_refresh(self, cache):
        cache.insert(CacheLine(_addr(0, 0)))
        cache.insert(CacheLine(_addr(0, 1)))
        cache.lookup(_addr(0, 0), touch=False)
        victim = cache.insert(CacheLine(_addr(0, 2)))
        assert victim.address == _addr(0, 0)

    def test_different_sets_do_not_interfere(self, cache):
        for tag in range(2):
            cache.insert(CacheLine(_addr(0, tag)))
        assert cache.insert(CacheLine(_addr(1, 0))) is None


class TestInvalidationAndIteration:
    def test_invalidate_returns_line(self, cache):
        cache.insert(CacheLine(0, None, dirty=True))
        line = cache.invalidate(0)
        assert line.dirty
        assert cache.lookup(0) is None

    def test_invalidate_missing_returns_none(self, cache):
        assert cache.invalidate(0) is None

    def test_dirty_lines_iteration(self, cache):
        cache.insert(CacheLine(_addr(0, 0), dirty=True))
        cache.insert(CacheLine(_addr(1, 0), dirty=False))
        cache.insert(CacheLine(_addr(2, 0), dirty=True))
        dirty = {line.address for line in cache.dirty_lines()}
        assert dirty == {_addr(0, 0), _addr(2, 0)}

    def test_set_occupancy(self, cache):
        cache.insert(CacheLine(_addr(3, 0)))
        assert cache.set_occupancy(3) == 1
        assert cache.set_occupancy(0) == 0

    def test_clear(self, cache):
        cache.insert(CacheLine(0))
        cache.clear()
        assert len(cache) == 0


class TestCacheLine:
    def test_rejects_wrong_payload_size(self):
        with pytest.raises(ValueError):
            CacheLine(0, b"short")

    def test_copy_is_independent(self):
        line = CacheLine(64, bytes(64), dirty=True)
        copy = line.copy()
        copy.dirty = False
        assert line.dirty
