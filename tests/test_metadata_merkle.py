"""Generic in-memory Merkle tree."""

import pytest

from repro.common.errors import ConfigError, IntegrityError
from repro.metadata.merkle import InMemoryMerkleTree


def _leaves(n: int) -> list[bytes]:
    return [i.to_bytes(8, "little") * 8 for i in range(n)]


class TestConstruction:
    def test_single_leaf(self):
        tree = InMemoryMerkleTree(_leaves(1))
        assert tree.num_levels == 1
        assert len(tree.root) == 8

    def test_level_structure_8ary(self):
        tree = InMemoryMerkleTree(_leaves(64))
        # 64 leaf hashes -> 8 -> 1
        assert tree.num_levels == 3
        assert tree.num_hashes == 64 + 8 + 1

    def test_partial_levels_round_up(self):
        tree = InMemoryMerkleTree(_leaves(9))
        # 9 leaf hashes -> 2 group hashes -> 1 root
        assert tree.num_levels == 3
        assert tree.num_hashes == 9 + 2 + 1

    def test_arity_changes_shape(self):
        binary = InMemoryMerkleTree(_leaves(8), arity=2)
        assert binary.num_levels == 4  # 8 -> 4 -> 2 -> 1

    def test_rejects_empty_and_bad_arity(self):
        with pytest.raises(ConfigError):
            InMemoryMerkleTree([])
        with pytest.raises(ConfigError):
            InMemoryMerkleTree(_leaves(2), arity=1)


class TestRootProperties:
    def test_deterministic(self):
        assert InMemoryMerkleTree(_leaves(20)).root == \
            InMemoryMerkleTree(_leaves(20)).root

    def test_any_leaf_change_changes_root(self):
        base = InMemoryMerkleTree(_leaves(20)).root
        for index in (0, 10, 19):
            leaves = _leaves(20)
            leaves[index] = b"\xff" * 64
            assert InMemoryMerkleTree(leaves).root != base

    def test_leaf_order_matters(self):
        leaves = _leaves(16)
        swapped = list(leaves)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        assert InMemoryMerkleTree(leaves).root != \
            InMemoryMerkleTree(swapped).root

    def test_key_separation(self):
        assert InMemoryMerkleTree(_leaves(4), key=b"k1").root != \
            InMemoryMerkleTree(_leaves(4), key=b"k2").root


class TestUpdates:
    def test_update_leaf_matches_rebuild(self):
        tree = InMemoryMerkleTree(_leaves(30))
        tree.update_leaf(7, b"\xab" * 64)
        leaves = _leaves(30)
        leaves[7] = b"\xab" * 64
        assert tree.root == InMemoryMerkleTree(leaves).root

    def test_update_out_of_range(self):
        tree = InMemoryMerkleTree(_leaves(4))
        with pytest.raises(ConfigError):
            tree.update_leaf(4, bytes(64))


class TestVerification:
    def test_verify_all_passes_on_intact_tree(self):
        InMemoryMerkleTree(_leaves(25)).verify_all()

    def test_verify_all_detects_leaf_tamper(self):
        tree = InMemoryMerkleTree(_leaves(25))
        tree._leaves[3] = b"\x00" * 64  # simulate out-of-band corruption
        with pytest.raises(IntegrityError):
            tree.verify_all()

    def test_verify_against(self):
        tree = InMemoryMerkleTree(_leaves(12))
        assert tree.verify_against(_leaves(12))
        tampered = _leaves(12)
        tampered[0] = b"\x01" * 64
        assert not tree.verify_against(tampered)
