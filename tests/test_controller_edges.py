"""Controller edge cases: minor-counter overflow and the victim buffer.

Two corners the mainline roundtrip tests never reach:

* ``_reencrypt_page`` — a minor-counter overflow mid-write (and mid-drain)
  re-encrypts the whole 4 KiB page; the batched rewrite must be
  indistinguishable from the scalar loop, holes, skip-slot, and stats
  included;
* ``drain_victims`` — with a metadata cache at capacity, every insert parks
  a dirty victim; the buffer must drain in FIFO order and run cascading
  writebacks to a fixed point.
"""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from repro.crypto.counters import SplitCounterBlock
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.secure.controller import SecureMemoryController
from repro.stats.counters import SimStats

WRITTEN_SLOTS = (0, 2, 3, 40, 63)
OVERFLOW_SLOT = 2


def make_controller(batched: bool, scheme: str = "lazy",
                    scale: int = 512) -> SecureMemoryController:
    config = SystemConfig.scaled(scale)
    layout = MemoryLayout(config)
    stats = SimStats()
    nvm = NvmDevice(layout.total_size, stats)
    return SecureMemoryController(config, nvm, layout, stats,
                                  scheme=scheme, batched=batched)


def payload(tag: int) -> bytes:
    return tag.to_bytes(8, "little") * 8


def _force_overflow(controller: SecureMemoryController,
                    address: int = OVERFLOW_SLOT * 64) -> None:
    """Arm ``address``'s minor counter so its next write wraps the page."""
    block: SplitCounterBlock = controller.get_counter_line(address).value
    block.minors[OVERFLOW_SLOT] = 127


def _run_overflow_sequence(batched: bool) -> SecureMemoryController:
    """Write a page with holes, then overflow one slot's minor counter."""
    controller = make_controller(batched)
    for slot in WRITTEN_SLOTS:
        controller.write(slot * 64, payload(slot + 1))
    _force_overflow(controller)
    controller.write(OVERFLOW_SLOT * 64, payload(99))
    return controller


class TestReencryptPageOnOverflow:
    @pytest.mark.parametrize("batched", [False, True])
    def test_overflow_bumps_major_and_preserves_contents(self, batched):
        controller = _run_overflow_sequence(batched)
        block = controller.get_counter_line(0).value
        assert block.major == 1
        assert controller.read(OVERFLOW_SLOT * 64) == payload(99)
        for slot in WRITTEN_SLOTS:
            if slot != OVERFLOW_SLOT:
                assert controller.read(slot * 64) == payload(slot + 1)

    def test_batched_reencryption_matches_scalar(self):
        """Byte-identical NVM (holes skipped, skip-slot honored) and
        operation-identical stats across the two implementations."""
        scalar = _run_overflow_sequence(batched=False)
        batched = _run_overflow_sequence(batched=True)
        assert batched.nvm.backend.image() == scalar.nvm.backend.image()
        assert batched.stats.snapshot() == scalar.stats.snapshot()

    @pytest.mark.parametrize("batched", [False, True])
    def test_unwritten_lines_stay_unwritten(self, batched):
        controller = _run_overflow_sequence(batched)
        for slot in range(64):
            written = controller.nvm.backend.is_written(slot * 64)
            assert written == (slot in WRITTEN_SLOTS)

    def test_overflow_mid_drain_matches_scalar(self):
        """A baseline secure drain hits the overflow *while flushing*: the
        batched page re-encryption must leave the same NVM image, stats,
        and counter state as the scalar loop.

        ``base-eu`` flushes metadata home at drain time, so the post-crash
        counter fetch observes the overflow directly.
        """

        def run(batched: bool) -> SecureEpdSystem:
            config = SystemConfig.scaled(512)
            system = SecureEpdSystem(config, scheme="base-eu",
                                     batched=batched)
            for slot in WRITTEN_SLOTS:
                system.controller.write(slot * 64, payload(slot + 1))
            for slot in (1, 5, OVERFLOW_SLOT):
                system.hierarchy.restore_dirty(slot * 64,
                                               payload(0xA0 + slot))
            _force_overflow(system.controller)
            system.crash(seed=7)
            return system

        scalar = run(batched=False)
        batched = run(batched=True)
        assert batched.nvm.backend.image() == scalar.nvm.backend.image()
        assert batched.stats.snapshot() == scalar.stats.snapshot()
        assert scalar.controller.get_counter_line(0).value.major == 1
        # The re-encrypted page still decrypts after power restoration.
        for slot in (1, 5, OVERFLOW_SLOT):
            assert scalar.controller.read(slot * 64) == \
                payload(0xA0 + slot)
        for slot in WRITTEN_SLOTS:
            if slot != OVERFLOW_SLOT:
                assert scalar.controller.read(slot * 64) == \
                    payload(slot + 1)


class TestDrainVictimsOrdering:
    EXTRA = 8
    """Dirty lines touched beyond one set's capacity (= victims parked)."""

    def _fill_one_set(self, controller: SecureMemoryController
                      ) -> tuple[list[int], list[int]]:
        """Fill one counter-cache set past capacity with dirty lines.

        Counter blocks of consecutive 4 KiB pages are contiguous, so pages
        ``num_sets`` apart collide in one set.  Touching ``ways + EXTRA``
        of them dirty overfills the set: every insert past ``ways`` evicts
        that set's LRU line into the victim buffer.  Returns (data
        addresses, counter-block addresses) in touch order.
        """
        num_sets = controller.counter_cache.config.num_sets
        ways = controller.counter_cache.config.ways
        data_addresses = [page * num_sets * 4096
                          for page in range(ways + self.EXTRA)]
        cb_addresses = []
        for data_address in data_addresses:
            line = controller.get_counter_line(data_address)
            line.value.minors[0] = 1
            line.dirty = True
            cb_addresses.append(line.address)
        return data_addresses, cb_addresses

    def test_full_set_parks_victims_in_eviction_order(self):
        controller = make_controller(batched=True)
        _, touched = self._fill_one_set(controller)
        parked = list(controller._victims)
        # LRU eviction of an EXTRA-line overshoot parks the oldest lines,
        # oldest first.
        assert parked == touched[:self.EXTRA]

    def test_drain_writes_back_in_fifo_order(self):
        controller = make_controller(batched=True)
        self._fill_one_set(controller)
        expected = list(controller._victims)

        written = []
        nvm_write = controller.nvm.write

        def recording_write(address, data, kind):
            written.append(address)
            return nvm_write(address, data, kind)

        controller.nvm.write = recording_write
        try:
            controller.drain_victims()
        finally:
            controller.nvm.write = nvm_write

        assert not controller._victims
        ordered = [address for address in written
                   if address in set(expected)]
        assert ordered == expected

    def test_drain_runs_cascades_to_fixed_point(self):
        """Writing a counter back refreshes its parent tree slot, which can
        evict the tree cache's own dirty victims mid-drain; the pass must
        absorb them too."""
        controller = make_controller(batched=True, scheme="eager")
        self._fill_one_set(controller)
        controller.drain_victims()
        assert not controller._victims
        assert not any(line.dirty for line in
                       controller.counter_cache.lines()
                       if line.address in controller._victims)

    def test_victim_hit_reclaims_newest_copy(self):
        """A lookup that hits the victim buffer absorbs the parked line
        instead of fetching a stale copy from NVM."""
        controller = make_controller(batched=True)
        data_addresses, touched = self._fill_one_set(controller)
        victim_cb = touched[0]
        parked_line, _ = controller._victims[victim_cb]
        line = controller.get_counter_line(data_addresses[0])
        assert line is parked_line
        assert victim_cb not in controller._victims
