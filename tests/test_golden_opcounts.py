"""Golden drain operation counts, pinned and cross-checked.

Drain episodes are deterministic in their operation counters (reads,
writes, MACs, AES ops are seed-independent; only write *order* varies with
the drain seed), so the exact per-scheme counters at three hierarchy
scales are committed as ``tests/golden/drain_op_counts.json``.  Any change
— a batching rewrite, a scheme tweak, a stats-accounting slip — shows up
as a byte-level fixture diff that has to be reviewed and regenerated
deliberately:

    REPRO_REGOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_opcounts.py

The fixture is additionally cross-checked against the closed forms in
:mod:`repro.core.analytic`: Horus episodes must match ``horus_drain_cost``
exactly, baseline episodes must satisfy its hard invariants — so a
regeneration can never silently commit numbers the paper's model rejects.
"""

import json
import os
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.core.analytic import horus_drain_cost
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.experiments.suite import DRAIN_SEED, FILL_SEED

GOLDEN_PATH = Path(__file__).parent / "golden" / "drain_op_counts.json"
SCALES = (512, 256, 128)


def episode_counts(scale: int, scheme: str) -> dict:
    system = SecureEpdSystem(SystemConfig.scaled(scale), scheme=scheme)
    system.fill_worst_case(seed=FILL_SEED)
    report = system.crash(seed=DRAIN_SEED)
    return {
        "flushed_blocks": report.flushed_blocks,
        "metadata_blocks": report.metadata_blocks,
        "cycles": report.cycles,
        "stats": report.stats.snapshot(),
    }


def current_counts() -> dict:
    return {str(scale): {scheme: episode_counts(scale, scheme)
                         for scheme in SCHEMES}
            for scale in SCALES}


@pytest.fixture(scope="module")
def golden() -> dict:
    if os.environ.get("REPRO_REGOLDEN") == "1":
        counts = current_counts()
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(counts, indent=2, sort_keys=True) + "\n")
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenOpCounts:
    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_simulator_matches_fixture(self, golden, scale, scheme):
        assert episode_counts(scale, scheme) == \
            golden[str(scale)][scheme], (
            f"{scheme}@1/{scale} drifted from the committed counters; "
            f"if intentional, regenerate with REPRO_REGOLDEN=1")

    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_fixture_matches_closed_form(self, golden, scale, scheme):
        """The committed Horus counters satisfy the Section IV formula."""
        entry = golden[str(scale)][scheme]
        blocks = entry["flushed_blocks"] + entry["metadata_blocks"]
        cost = horus_drain_cost(blocks, double_level_mac="dlm" in scheme)
        stats = entry["stats"]
        assert sum(stats["writes"].values()) == cost.total_writes
        assert sum(stats["macs"].values()) == cost.mac_computations
        assert sum(stats["aes"].values()) == cost.aes_operations
        assert stats["reads"] == {}

    @pytest.mark.parametrize("scale", SCALES)
    @pytest.mark.parametrize("scheme", ["base-lu", "base-eu"])
    def test_fixture_satisfies_baseline_invariants(self, golden, scale,
                                                   scheme):
        entry = golden[str(scale)][scheme]
        flushed = entry["flushed_blocks"]
        stats = entry["stats"]
        assert stats["writes"].get("data", 0) == flushed
        assert sum(stats["writes"].values()) >= flushed
        assert sum(stats["macs"].values()) >= flushed
        assert stats["aes"].get("encrypt", 0) >= flushed

    def test_scales_are_monotonic(self, golden):
        """Sanity: a larger hierarchy never drains with fewer operations."""
        for scheme in SCHEMES:
            totals = [sum(golden[str(scale)][scheme]["stats"]
                          ["writes"].values())
                      for scale in SCALES]  # SCALES is largest divisor first
            assert totals == sorted(totals)
