"""Non-inclusive (NINE) hierarchy mode and its drain/recovery semantics."""

import pytest

from repro.cache.fill import page_of
from repro.cache.hierarchy import CacheHierarchy
from repro.common.errors import ConfigError
from repro.core.system import SecureEpdSystem
from repro.workloads.generators import kvstore_trace, replay


@pytest.fixture
def nine(tiny_config) -> CacheHierarchy:
    return CacheHierarchy(tiny_config, inclusive=False)


class _MemoryStub:
    def __init__(self):
        self.store: dict[int, bytes] = {}

    def fetch(self, address: int) -> bytes:
        return self.store.get(address, bytes(64))

    def writeback(self, address: int, data: bytes) -> None:
        self.store[address] = data


class TestNonInclusiveFill:
    def test_fill_count_is_sum_of_levels(self, nine, tiny_config):
        assert nine.fill_worst_case(seed=1) == tiny_config.total_cache_lines

    def test_levels_hold_disjoint_addresses(self, nine):
        nine.fill_worst_case(seed=1)
        l1 = {line.address for line in nine.l1.lines()}
        l2 = {line.address for line in nine.l2.lines()}
        llc = {line.address for line in nine.llc.lines()}
        assert not l1 & l2 and not l1 & llc and not l2 & llc

    def test_unique_counter_pages_across_all_levels(self, nine):
        nine.fill_worst_case(seed=1)
        pages = [page_of(line.address)
                 for level in nine.levels for line in level.lines()]
        assert len(set(pages)) == len(pages)

    def test_drain_stream_has_no_duplicates(self, nine, tiny_config):
        nine.fill_worst_case(seed=1)
        drained = [line.address for line in nine.drain_lines(seed=2)]
        assert len(drained) == tiny_config.total_cache_lines
        assert len(set(drained)) == len(drained)


class TestNonInclusiveRuntime:
    @pytest.fixture
    def attached(self, nine):
        stub = _MemoryStub()
        nine.attach(stub.fetch, stub.writeback)
        return nine, stub

    def test_miss_fills_l1_only(self, attached):
        hierarchy, stub = attached
        stub.store[0] = b"\x2a" * 64
        assert hierarchy.read(0) == b"\x2a" * 64
        assert hierarchy.l1.contains(0)
        assert not hierarchy.l2.contains(0)
        assert not hierarchy.llc.contains(0)

    def test_dirty_victims_trickle_down(self, attached, tiny_config):
        hierarchy, _ = attached
        # Overflow one L1 set: its victims must land in L2, not vanish.
        num_sets = tiny_config.l1.num_sets
        ways = tiny_config.l1.ways
        addresses = [(i * num_sets) * 64 for i in range(ways + 2)]
        for i, address in enumerate(addresses):
            hierarchy.write(address, i.to_bytes(8, "little") * 8)
        spilled = [a for a in addresses if not hierarchy.l1.contains(a)]
        assert spilled
        for address in spilled:
            assert hierarchy.l2.contains(address)

    def test_writes_read_back_through_all_levels(self, attached,
                                                 tiny_config):
        hierarchy, _ = attached
        lines = tiny_config.l1.num_lines * 4
        for i in range(lines):
            hierarchy.write(i * 64, (i % 199).to_bytes(1, "little") * 64)
        for i in range(lines):
            assert hierarchy.read(i * 64) == \
                (i % 199).to_bytes(1, "little") * 64


class TestNonInclusiveSecureSystem:
    def test_refill_recovery_is_rejected(self, tiny_config):
        with pytest.raises(ConfigError):
            SecureEpdSystem(tiny_config, scheme="horus-slm", inclusive=False)

    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_crash_recover_cycle(self, tiny_config, scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme,
                                 inclusive=False,
                                 recovery_mode="writeback")
        trace = kvstore_trace(300, footprint_blocks=96, seed=51)
        expected = replay(system, trace)
        report = system.crash(seed=3)
        assert report.flushed_blocks > 0
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data

    def test_worst_case_drain_flushes_distinct_lines(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm",
                                 inclusive=False,
                                 recovery_mode="writeback")
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        assert report.flushed_blocks == tiny_config.total_cache_lines

    def test_nosec_non_inclusive(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec",
                                 inclusive=False)
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        assert report.total_writes == tiny_config.total_cache_lines
