"""Zipfian sampler and YCSB-style workload mixes."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.trace import OpKind, summarize
from repro.workloads.ycsb import SCAN_LENGTH, ycsb_trace
from repro.workloads.zipf import (
    _CDF_CACHE,
    CDF_CACHE_MAX,
    ZipfSampler,
    clear_cdf_cache,
)


class TestZipfSampler:
    def test_samples_stay_in_population(self):
        sampler = ZipfSampler(100, seed=1)
        assert all(0 <= k < 100 for k in sampler.sample_many(1000))

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(1000, theta=0.99, seed=2)
        draws = sampler.sample_many(5000)
        top_decile = sum(1 for k in draws if k < 100)
        assert top_decile > len(draws) * 0.5

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, theta=0.0, seed=3)
        for k in range(10):
            assert sampler.probability(k) == pytest.approx(0.1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, theta=1.2, seed=4)
        assert sum(sampler.probability(k) for k in range(50)) == \
            pytest.approx(1.0)

    def test_probability_is_monotone_decreasing(self):
        sampler = ZipfSampler(20, theta=0.99, seed=5)
        probs = [sampler.probability(k) for k in range(20)]
        assert probs == sorted(probs, reverse=True)

    def test_deterministic_per_seed(self):
        assert ZipfSampler(100, seed=7).sample_many(50) == \
            ZipfSampler(100, seed=7).sample_many(50)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0)
        with pytest.raises(ConfigError):
            ZipfSampler(10, theta=-1)
        with pytest.raises(ConfigError):
            ZipfSampler(10).probability(10)

    def test_same_population_shares_one_cdf_table(self):
        """The harmonic table is memoized per (n, theta): samplers over the
        same population alias one list instead of re-deriving it."""
        first = ZipfSampler(333, theta=0.77, seed=1)
        second = ZipfSampler(333, theta=0.77, seed=99)
        assert first._cdf is second._cdf
        assert ZipfSampler(333, theta=0.99, seed=1)._cdf is not first._cdf

    def test_cdf_cache_is_bounded_under_population_sweep(self):
        """A sweep over many (n, theta) populations must not grow the CDF
        cache without bound: at most CDF_CACHE_MAX tables stay alive."""
        clear_cdf_cache()
        try:
            populations = [100 + n for n in range(3 * CDF_CACHE_MAX)]
            for n in populations:
                ZipfSampler(n, theta=0.99, seed=0)
            assert len(_CDF_CACHE) <= CDF_CACHE_MAX
            # The most recent populations survived the sweep, so sharing
            # still works where it matters (repeat samplers over the
            # current cell).
            last = populations[-1]
            assert ZipfSampler(last, theta=0.99, seed=1)._cdf \
                is ZipfSampler(last, theta=0.99, seed=2)._cdf
        finally:
            clear_cdf_cache()
        assert not _CDF_CACHE

    def test_cdf_cache_touch_refreshes_recency(self):
        """Re-using a population moves its table to the MRU slot, so a
        steadily re-touched table survives a sweep of fresh ones."""
        clear_cdf_cache()
        try:
            hot = ZipfSampler(4321, theta=0.5, seed=0)
            for n in range(10, 10 + 2 * CDF_CACHE_MAX):
                ZipfSampler(n, theta=0.5, seed=0)
                ZipfSampler(4321, theta=0.5, seed=0)  # touch the hot table
            assert ZipfSampler(4321, theta=0.5, seed=1)._cdf is hot._cdf
        finally:
            clear_cdf_cache()

    def test_shared_table_leaves_streams_identical(self):
        """Sharing the CDF cannot perturb draws: two same-seed samplers
        interleaved with a third stay identical to an isolated pair."""
        a, b = ZipfSampler(64, seed=7), ZipfSampler(64, seed=7)
        other = ZipfSampler(64, seed=8)
        interleaved = []
        for _ in range(100):
            interleaved.append(a.sample())
            other.sample()
        assert interleaved == b.sample_many(100)


class TestYcsbMixes:
    FOOTPRINT = 128

    def _mix(self, workload: str, n: int = 2000):
        trace = ycsb_trace(workload, n, self.FOOTPRINT, seed=11)
        return trace, summarize(trace)

    def test_workload_a_is_half_updates(self):
        _, summary = self._mix("a")
        assert 0.45 < summary.write_fraction < 0.55

    def test_workload_b_is_read_heavy(self):
        _, summary = self._mix("b")
        assert 0.02 < summary.write_fraction < 0.09

    def test_workload_c_is_read_only(self):
        _, summary = self._mix("c")
        assert summary.num_writes == 0

    def test_workload_d_inserts_advance(self):
        trace, summary = self._mix("d")
        assert 0.02 < summary.write_fraction < 0.09

    def test_workload_e_scans_are_sequential(self):
        trace, _ = self._mix("e")
        runs = 0
        for a, b in zip(trace, trace[1:]):
            if (a.kind is OpKind.READ and b.kind is OpKind.READ
                    and b.address - a.address == 64):
                runs += 1
        # Scans of SCAN_LENGTH consecutive blocks dominate the trace.
        assert runs > len(trace) * 0.5
        assert SCAN_LENGTH == 8

    def test_workload_f_pairs_reads_with_writes(self):
        trace, summary = self._mix("f")
        assert summary.write_fraction == pytest.approx(0.5, abs=0.01)
        for read, write in zip(trace[::2], trace[1::2]):
            assert read.kind is OpKind.READ
            assert write.kind is OpKind.WRITE
            assert read.address == write.address

    def test_addresses_within_footprint(self):
        for workload in "abcdef":
            trace, _ = self._mix(workload, n=500)
            assert all(op.address < self.FOOTPRINT * 64 for op in trace)

    def test_skew_concentrates_traffic(self):
        trace, summary = self._mix("c")
        assert summary.footprint_blocks < self.FOOTPRINT

    def test_exact_trace_length(self):
        for workload in "abcdef":
            assert len(ycsb_trace(workload, 777, 64, seed=1)) == 777

    def test_rejects_unknown_workload(self):
        with pytest.raises(ConfigError):
            ycsb_trace("g", 10, 64)

    def test_end_to_end_on_secure_system(self, tiny_config):
        """A YCSB-A run survives a crash/recover cycle."""
        from repro.core.system import SecureEpdSystem
        from repro.workloads.generators import replay
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        trace = ycsb_trace("a", 400, 96, seed=13)
        expected = replay(system, trace)
        system.crash(seed=2)
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data
