"""Timed crypto engines: accounting and functional behaviour."""

from repro.crypto.engine import AesEngine, MacEngine
from repro.crypto.primitives import MacDomain
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind


class TestAesEngine:
    def test_every_operation_is_accounted(self):
        stats = SimStats()
        engine = AesEngine(stats)
        engine.encrypt(0, 1, bytes(64))
        engine.encrypt(64, 2, bytes(64))
        engine.decrypt(0, 1, bytes(64))
        assert stats.aes[AesKind.ENCRYPT] == 2
        assert stats.aes[AesKind.DECRYPT] == 1

    def test_functional_roundtrip(self):
        engine = AesEngine(SimStats())
        plaintext = bytes(range(64))
        ciphertext = engine.encrypt(4096, 5, plaintext)
        assert ciphertext != plaintext
        assert engine.decrypt(4096, 5, ciphertext) == plaintext

    def test_non_functional_mode_passes_through_but_counts(self):
        stats = SimStats()
        engine = AesEngine(stats, functional=False)
        payload = b"\x55" * 64
        assert engine.encrypt(0, 1, payload) == payload
        assert stats.total_aes == 1

    def test_none_payload_counts_only(self):
        stats = SimStats()
        engine = AesEngine(stats)
        assert engine.encrypt(0, 1, None) is None
        assert stats.total_aes == 1


class TestMacEngine:
    def test_block_mac_accounted_under_kind(self):
        stats = SimStats()
        engine = MacEngine(stats)
        engine.block_mac(MacKind.CHV_DATA, bytes(64), 0, 1)
        engine.block_mac(MacKind.VERIFY, bytes(64), 0, 1)
        assert stats.macs[MacKind.CHV_DATA] == 1
        assert stats.macs[MacKind.VERIFY] == 1

    def test_block_mac_binds_address_and_counter(self):
        engine = MacEngine(SimStats())
        base = engine.block_mac(MacKind.CHV_DATA, bytes(64), 0, 1)
        assert engine.block_mac(MacKind.CHV_DATA, bytes(64), 64, 1) != base
        assert engine.block_mac(MacKind.CHV_DATA, bytes(64), 0, 2) != base

    def test_domains_separate_equal_inputs(self):
        """A CHV MAC and a run-time data MAC over the same inputs must be
        different values, or one domain's MACs could be spliced into the
        other's and still verify."""
        engine = MacEngine(SimStats())
        runtime = engine.block_mac(MacKind.DATA_PROTECT, bytes(64), 0, 1)
        chv = engine.block_mac(MacKind.CHV_DATA, bytes(64), 0, 1)
        assert runtime != chv

    def test_verify_kind_recomputes_per_domain(self):
        """The accounting kind stays bookkeeping: recovery recomputes drain's
        CHV_DATA MACs as VERIFY against the explicit CHV domain, and run-time
        reads recompute DATA_PROTECT MACs as plain VERIFY."""
        engine = MacEngine(SimStats())
        assert engine.block_mac(MacKind.CHV_DATA, bytes(64), 0, 1) == \
            engine.block_mac(MacKind.VERIFY, bytes(64), 0, 1,
                             domain=MacDomain.CHV_DATA)
        assert engine.block_mac(MacKind.DATA_PROTECT, bytes(64), 0, 1) == \
            engine.block_mac(MacKind.VERIFY, bytes(64), 0, 1)
        assert engine.digest_mac(MacKind.CHV_LEVEL2, bytes(64)) == \
            engine.digest_mac(MacKind.VERIFY, bytes(64),
                              domain=MacDomain.CHV_LEVEL2)
        assert engine.digest_mac(MacKind.TREE_UPDATE, bytes(64)) == \
            engine.digest_mac(MacKind.VERIFY, bytes(64))

    def test_node_and_digest_macs_differ_in_binding(self):
        engine = MacEngine(SimStats())
        content = bytes(64)
        assert engine.node_mac(MacKind.VERIFY, content, 0) != \
            engine.digest_mac(MacKind.VERIFY, content)

    def test_verify_equal_functional(self):
        engine = MacEngine(SimStats())
        assert engine.verify_equal(b"x" * 8, b"x" * 8)
        assert not engine.verify_equal(b"x" * 8, b"y" * 8)

    def test_verify_equal_non_functional_always_passes(self):
        engine = MacEngine(SimStats(), functional=False)
        assert engine.verify_equal(b"x" * 8, b"y" * 8)

    def test_non_functional_macs_are_placeholder(self):
        stats = SimStats()
        engine = MacEngine(stats, functional=False)
        assert engine.digest_mac(MacKind.VERIFY, bytes(64)) == bytes(8)
        assert stats.total_macs == 1
