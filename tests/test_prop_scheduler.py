"""Property-based tests: banked replay and FR-FCFS scheduling bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from tests.conftest import examples
from repro.mem.banking import BankGeometry, replay_makespan
from repro.mem.scheduler import schedule_trace

CONFIG = SystemConfig.scaled(512)

traces = st.lists(
    st.tuples(st.integers(0, 127).map(lambda i: i * 64), st.booleans()),
    min_size=1, max_size=120)
geometries = st.builds(
    BankGeometry,
    channels=st.integers(1, 4),
    banks_per_channel=st.sampled_from([1, 2, 4, 8]),
    command_slot_ns=st.sampled_from([0.0, 2.5, 10.0]))


def _latency(is_write: bool) -> float:
    return (CONFIG.memory.write_latency_ns if is_write
            else CONFIG.memory.read_latency_ns)


def _lower_bound(trace, geometry) -> float:
    """No schedule can beat the busiest bank or the command bus."""
    per_bank: dict[int, float] = {}
    for address, is_write in trace:
        bank = geometry.bank_of(address)
        per_bank[bank] = per_bank.get(bank, 0.0) + _latency(is_write)
    bus = (len(trace) - 1) * geometry.command_slot_ns + min(
        _latency(w) for _, w in trace)
    return max(max(per_bank.values()), bus)


class TestSchedulingBounds:
    @given(trace=traces, geometry=geometries)
    @settings(max_examples=examples(80))
    def test_replay_respects_the_lower_bound(self, trace, geometry):
        result = replay_makespan(trace, CONFIG, geometry)
        assert result.makespan_ns >= _lower_bound(trace, geometry) - 1e-6

    @given(trace=traces, geometry=geometries)
    @settings(max_examples=examples(80))
    def test_replay_respects_the_serial_upper_bound(self, trace, geometry):
        serial = sum(_latency(w) for _, w in trace) \
            + len(trace) * geometry.command_slot_ns
        result = replay_makespan(trace, CONFIG, geometry)
        assert result.makespan_ns <= serial + 1e-6

    @given(trace=traces, geometry=geometries,
           window=st.sampled_from([1, 4, 32]))
    @settings(max_examples=examples(60), derandomize=True)
    def test_frfcfs_never_loses_to_fcfs(self, trace, geometry, window):
        fcfs = schedule_trace(trace, CONFIG, geometry, "fcfs", window)
        frfcfs = schedule_trace(trace, CONFIG, geometry, "frfcfs", window)
        assert frfcfs.makespan_ns <= fcfs.makespan_ns + 1e-6

    @given(trace=traces, geometry=geometries)
    @settings(max_examples=examples(60))
    def test_scheduler_also_respects_the_lower_bound(self, trace, geometry):
        result = schedule_trace(trace, CONFIG, geometry, "frfcfs")
        assert result.makespan_ns >= _lower_bound(trace, geometry) - 1e-6

    @given(trace=traces)
    @settings(max_examples=examples(40))
    def test_single_bank_equals_serialized_time(self, trace):
        geometry = BankGeometry(1, 1, command_slot_ns=0)
        serial = sum(_latency(w) for _, w in trace)
        result = replay_makespan(trace, CONFIG, geometry)
        assert result.makespan_ns == serial
