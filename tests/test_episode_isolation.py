"""Episode isolation: reports must reflect exactly their own episode.

The whole accounting design rests on diffing one shared SimStats around
each episode; these tests pin that isolation across mixed run-time, drain,
and recovery activity on one system.
"""


from repro.core.analytic import horus_drain_cost
from repro.core.system import SecureEpdSystem


class TestEpisodeIsolation:
    def test_runtime_traffic_does_not_leak_into_the_drain_report(
            self, tiny_config):
        """Two systems, one with heavy pre-crash run-time traffic: their
        drain reports over identical hierarchies must match exactly."""
        quiet = SecureEpdSystem(tiny_config, scheme="horus-slm")
        busy = SecureEpdSystem(tiny_config, scheme="horus-slm")
        for i in range(300):
            busy.write((i % 50) * 4096, i.to_bytes(2, "little") * 32)
            busy.read((i % 50) * 4096)

        quiet.fill_worst_case(seed=1)
        busy.fill_worst_case(seed=1)
        quiet_report = quiet.crash(seed=2)
        busy_report = busy.crash(seed=2)

        # The busy system vaults its warmed metadata-cache lines too, so
        # compare the per-hierarchy-line component via the closed form.
        for report in (quiet_report, busy_report):
            blocks = report.flushed_blocks + report.metadata_blocks
            cost = horus_drain_cost(blocks, double_level_mac=False)
            assert report.total_writes == cost.total_writes
            assert report.total_reads == 0

    def test_back_to_back_drains_have_independent_reports(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-dlm")
        system.fill_worst_case(seed=1)
        first = system.crash(seed=2)
        system.recover()
        system.fill_worst_case(seed=3)
        second = system.crash(seed=4)
        # Same worst case, independent episodes: identical counts, and the
        # second report does not include the first episode or the recovery.
        assert second.flushed_blocks == first.flushed_blocks
        assert second.stats.total_memory_requests >= \
            first.stats.total_memory_requests
        # (>= because the second episode also vaults the metadata-cache
        # lines the recovery restored.)

    def test_recovery_report_excludes_the_drain(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.fill_worst_case(seed=1)
        drain = system.crash(seed=2)
        recovery = system.recover()
        assert recovery.stats.total_writes == 0      # recovery only reads
        assert drain.stats.total_reads == 0          # drain only writes
        assert recovery.stats.reads.keys().isdisjoint(drain.stats.writes)

    def test_system_totals_are_the_sum_of_episodes(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        baseline = system.stats.copy()
        system.fill_worst_case(seed=1)
        drain = system.crash(seed=2)
        recovery = system.recover()
        delta = system.stats.diff(baseline)
        assert delta.total_memory_requests == \
            (drain.stats.total_memory_requests
             + recovery.stats.total_memory_requests)
        assert delta.total_macs == \
            drain.stats.total_macs + recovery.stats.total_macs
