"""BBB-style battery-backed buffer persistence."""

import pytest

from repro.common.errors import ConfigError
from repro.epd.bbb import BbbSecureSystem


@pytest.fixture
def bbb(tiny_config) -> BbbSecureSystem:
    return BbbSecureSystem(tiny_config, bbuf_lines=8)


def payload(tag: int) -> bytes:
    return tag.to_bytes(8, "little") * 8


class TestImplicitPersistence:
    def test_every_write_is_persistent_without_flushes(self, bbb):
        bbb.write(0, payload(1))
        assert bbb.is_persisted(0)

    def test_all_writes_survive_crash(self, bbb):
        for i in range(40):                 # far more than the bbuf holds
            bbb.write(i * 4096, payload(i))
        bbb.crash()
        for i in range(40):
            assert bbb.read(i * 4096) == payload(i)

    def test_rewrites_survive_crash(self, bbb):
        bbb.write(0, payload(1))
        for i in range(20):                 # push it through the buffer
            bbb.write((i + 1) * 4096, payload(99))
        bbb.write(0, payload(2))            # rewrite after write-through
        bbb.crash()
        assert bbb.read(0) == payload(2)

    def test_crash_drains_at_most_the_buffer(self, bbb):
        for i in range(40):
            bbb.write(i * 4096, payload(i))
        assert bbb.crash() <= 8


class TestWriteThroughCost:
    def test_hot_lines_avoid_writethrough(self, tiny_config):
        bbb = BbbSecureSystem(tiny_config, bbuf_lines=8)
        for _ in range(100):
            bbb.write(0, payload(7))        # one hot line: stays buffered
        assert bbb.bbuf_evictions == 0
        assert bbb.writethrough_fraction == 0.0

    def test_streaming_writes_pay_per_eviction(self, tiny_config):
        bbb = BbbSecureSystem(tiny_config, bbuf_lines=8)
        for i in range(100):
            bbb.write(i * 4096, payload(i))
        assert bbb.bbuf_evictions == 100 - 8
        assert bbb.stats.total_memory_requests > 0

    def test_buffer_size_trades_cost(self, tiny_config):
        def evictions(lines):
            bbb = BbbSecureSystem(tiny_config, bbuf_lines=lines)
            for i in range(64):
                bbb.write((i % 32) * 4096, payload(i))
            return bbb.bbuf_evictions

        assert evictions(4) > evictions(16) > evictions(32)

    def test_rejects_empty_buffer(self, tiny_config):
        with pytest.raises(ConfigError):
            BbbSecureSystem(tiny_config, bbuf_lines=0)
