"""The additive timing model against Table I parameters."""

import pytest

from repro.common.config import SystemConfig
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind, ReadKind, WriteKind
from repro.stats.timing import TimingModel


@pytest.fixture(scope="module")
def model() -> TimingModel:
    return TimingModel(SystemConfig.paper())


class TestLatencyParameters:
    def test_table1_latencies(self, model):
        assert model.read_cycles == 600     # 150 ns @ 4 GHz
        assert model.write_cycles == 2000   # 500 ns @ 4 GHz
        assert model.mac_cycles == 160
        assert model.aes_cycles == 40


class TestCycleAccounting:
    def test_single_write(self, model):
        stats = SimStats()
        stats.record_write(WriteKind.DATA)
        assert model.cycles(stats) == 2000

    def test_mixed_operations(self, model):
        stats = SimStats()
        stats.record_read(ReadKind.COUNTER, 2)    # 1200
        stats.record_write(WriteKind.DATA, 3)     # 6000
        stats.record_mac(MacKind.VERIFY, 4)       # 640
        stats.record_aes(AesKind.ENCRYPT, 5)      # 200
        assert model.cycles(stats) == 8040

    def test_breakdown_components_sum_to_total(self, model):
        stats = SimStats()
        stats.record_read(ReadKind.DATA, 7)
        stats.record_write(WriteKind.CHV_DATA, 11)
        stats.record_mac(MacKind.CHV_DATA, 13)
        stats.record_aes(AesKind.DECRYPT, 17)
        bd = model.breakdown(stats)
        assert bd.total_cycles == model.cycles(stats)
        assert bd.memory_cycles == bd.read_cycles + bd.write_cycles
        assert bd.crypto_cycles == bd.mac_cycles + bd.aes_cycles

    def test_seconds_at_4ghz(self, model):
        stats = SimStats()
        stats.record_write(WriteKind.DATA, 4_000_000)  # 8e9 cycles
        assert model.seconds(stats) == pytest.approx(2.0)
        assert model.milliseconds(stats) == pytest.approx(2000.0)


class TestNonSecureDrainCalibration:
    def test_paper_nosec_drain_time(self):
        """295,936 serialized writes at 500 ns = 148 ms: the denominator of
        every Fig. 11 normalization."""
        config = SystemConfig.paper()
        stats = SimStats()
        stats.record_write(WriteKind.DATA, config.total_cache_lines)
        assert TimingModel(config).seconds(stats) == pytest.approx(
            0.1480, abs=1e-3)
