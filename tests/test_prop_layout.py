"""Property-based tests: address-space layout invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from repro.mem.regions import MemoryLayout


@pytest.fixture(scope="module")
def layout() -> MemoryLayout:
    return MemoryLayout(SystemConfig.scaled(512))


def data_addresses(layout):
    return st.integers(0, layout.data.size // 64 - 1).map(lambda i: i * 64)


class TestLayoutProperties:
    @given(st.data())
    @settings(max_examples=200)
    def test_metadata_addresses_never_alias_data(self, layout, data):
        address = data.draw(data_addresses(layout))
        assert layout.counters.contains(layout.counter_block_address(address))
        assert layout.macs.contains(layout.mac_block_address(address))

    @given(st.data())
    @settings(max_examples=200)
    def test_counter_mapping_is_page_injective(self, layout, data):
        a = data.draw(data_addresses(layout))
        b = data.draw(data_addresses(layout))
        same_page = (a // 4096) == (b // 4096)
        same_counter = (layout.counter_block_address(a)
                        == layout.counter_block_address(b))
        assert same_page == same_counter

    @given(st.data())
    @settings(max_examples=200)
    def test_mac_slot_address_pair_is_injective(self, layout, data):
        a = data.draw(data_addresses(layout))
        b = data.draw(data_addresses(layout))
        if a != b:
            assert (layout.mac_block_address(a), layout.mac_slot(a)) != \
                (layout.mac_block_address(b), layout.mac_slot(b))

    @given(st.data())
    @settings(max_examples=100)
    def test_tree_parent_arithmetic_consistency(self, layout, data):
        """Every counter block's verification path ends at the root in
        exactly num_tree_levels steps with in-range slots."""
        address = data.draw(data_addresses(layout))
        cb = layout.counter_block_address(address)
        level, index, slot = layout.parent_of_counter_block(cb)
        steps = 1
        while level < layout.num_tree_levels:
            assert 0 <= slot < 8
            assert 0 <= index < layout.tree_levels[level - 1]
            level, index, slot = layout.parent_of_tree_node(level, index)
            steps += 1
        assert index == 0
        assert steps == layout.num_tree_levels

    @given(st.data())
    @settings(max_examples=100)
    def test_tree_node_address_roundtrip(self, layout, data):
        level = data.draw(st.integers(1, layout.num_tree_levels))
        index = data.draw(st.integers(0, layout.tree_levels[level - 1] - 1))
        address = layout.tree_node_address(level, index)
        assert layout.tree_node_coords(address) == (level, index)
        assert layout.classify(address) == "tree"
