"""reproflow: the project-wide dataflow rules (F1-F5) and --deep plumbing.

Every F-rule gets a planted-defect "teeth" fixture that must be caught and
near-miss twins that must stay clean; two regression tests re-seed historic
bug classes (the PR 2 MAC-domain splice, a guard-stripped ``write_arena``)
into a scratch copy of the real tree; meta-tests hold the repository itself
deep-clean with an empty, shrink-only ``flow-baseline.txt``; and the CLI
contract (--deep, --format sarif, --changed, baseline handling) is pinned
along with the docs so listings cannot drift.
"""

import json
import shutil
import subprocess
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.lint import RULES, Finding, lint_paths
from repro.lint.flow.baseline import (
    apply_baseline,
    fingerprint,
    parse_baseline,
)
from repro.lint.rules import SIM_PACKAGES
from repro.lint.runner import changed_files, main

REPO_ROOT = Path(__file__).resolve().parents[1]
GIT = shutil.which("git")


def run_deep(tmp_path, files, rules=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and deep-lint it."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return lint_paths([tmp_path], root=tmp_path, deep=True, rules=rules)


def rules_hit(result):
    return sorted({f.rule for f in result.findings})


class TestF1KeyDomainTaint:
    def test_tenant_key_reaching_tree_mac_through_helper(self, tmp_path):
        # The defect crosses a call boundary: the key is resolved in one
        # function and reaches the NODE-domain MAC in another.
        result = run_deep(tmp_path, {"repro/sharding/evil.py": """\
            def tag_node(keyring, tenant, payload):
                key = keyring.mac_key(tenant)
                return seal(key, payload)

            def seal(key, payload):
                return compute_mac(key, payload, domain=MacDomain.NODE)
        """}, rules=["F1"])
        assert rules_hit(result) == ["F1"]
        assert "master-keyed MAC domain" in result.findings[0].message
        assert "via call to seal()" in result.findings[0].message

    def test_tenant_key_on_data_domain_is_the_designed_path(self, tmp_path):
        result = run_deep(tmp_path, {"repro/sharding/ok.py": """\
            def tag_data(keyring, tenant, payload):
                key = keyring.mac_key(tenant)
                return compute_mac(key, payload, domain=MacDomain.DATA)
        """}, rules=["F1"])
        assert result.findings == []

    def test_master_key_on_tree_mac_is_the_designed_path(self, tmp_path):
        result = run_deep(tmp_path, {"repro/sharding/ok.py": """\
            class Tree:
                def __init__(self, mac_master):
                    self.mac_master = mac_master

                def tag(self, payload):
                    return compute_mac(self.mac_master, payload,
                                       domain=MacDomain.NODE)
        """}, rules=["F1"])
        assert result.findings == []

    def test_raw_master_key_on_sharded_data_path(self, tmp_path):
        result = run_deep(tmp_path, {"repro/sharding/evil.py": """\
            from repro.sharding import batch

            class Shard:
                def __init__(self, aes_master):
                    self.aes_master = aes_master

                def run(self, blocks):
                    return batch.encrypt_blocks(self.aes_master, blocks)
        """}, rules=["F1"])
        assert rules_hit(result) == ["F1"]
        assert "TenantKeyring" in result.findings[0].message

    def test_keyring_resolved_key_launders_master_material(self, tmp_path):
        # aes_key() derives from aes_master internally — by design.  The
        # blessed resolution API must not propagate the master label.
        result = run_deep(tmp_path, {"repro/sharding/ok.py": """\
            from repro.sharding import batch

            class Shard:
                def __init__(self, keyring):
                    self.keyring = keyring

                def run(self, tenant, blocks):
                    key = self.keyring.aes_key(tenant)
                    return batch.encrypt_blocks(key, blocks)
        """}, rules=["F1"])
        assert result.findings == []

    def test_master_data_crypto_outside_sharding_is_fine(self, tmp_path):
        # The non-sharded controller legitimately runs data crypto under
        # the master key; the F1 data-path sink is sharding-scoped.
        result = run_deep(tmp_path, {"repro/secure/ok.py": """\
            class Controller:
                def __init__(self, aes_master):
                    self.aes_master = aes_master

                def run(self, blocks):
                    return encrypt_blocks(self.aes_master, blocks)
        """}, rules=["F1"])
        assert result.findings == []


class TestF2PlaintextEscape:
    def test_decrypt_output_to_backend_write(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/evil.py": """\
            class Leaky:
                def migrate(self, address, ciphertext):
                    plaintext = self.aes.decrypt(address, ciphertext)
                    self.nvm.write(address, plaintext)
        """}, rules=["F2"])
        assert rules_hit(result) == ["F2"]
        assert "re-encryption" in result.findings[0].message

    def test_escape_through_a_private_helper(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/evil.py": """\
            class Leaky:
                def migrate(self, address, ciphertext):
                    plaintext = self.aes.decrypt(address, ciphertext)
                    self._persist(address, plaintext)

                def _persist(self, address, data):
                    self.nvm.write(address, data)
        """}, rules=["F2"])
        assert rules_hit(result) == ["F2"]
        assert "via call to _persist()" in result.findings[0].message

    def test_reencrypted_write_is_clean(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/ok.py": """\
            class Migrator:
                def migrate(self, address, ciphertext):
                    plaintext = self.aes.decrypt(address, ciphertext)
                    fresh = self.aes.encrypt(address, plaintext)
                    self.nvm.write(address, fresh)
        """}, rules=["F2"])
        assert result.findings == []

    def test_writeback_through_the_controller_is_clean(self, tmp_path):
        # Recovery hands plaintext back to the *controller*, which encrypts
        # internally; only raw device/backend receivers are sinks.
        result = run_deep(tmp_path, {"repro/core/ok.py": """\
            class Recovery:
                def replay(self, address, ciphertext):
                    plaintext = self.aes.decrypt(address, ciphertext)
                    self._controller.write(address, plaintext)
        """}, rules=["F2"])
        assert result.findings == []

    def test_batched_escape_is_caught(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/evil.py": """\
            class Leaky:
                def migrate(self, items):
                    blocks = self.aes.decrypt_blocks(items)
                    self.nvm.write_batch(blocks)
        """}, rules=["F2"])
        assert rules_hit(result) == ["F2"]


class TestF3FaultPlanParity:
    def test_unguarded_arena_method_is_flagged(self, tmp_path):
        result = run_deep(tmp_path, {"repro/mem/evil.py": """\
            class RawDevice:
                def __init__(self):
                    self.fault_plan = None
                    self.cells = {}

                def write_arena(self, base, buffer):
                    self.cells[base] = buffer
        """}, rules=["F3"])
        assert rules_hit(result) == ["F3"]
        assert "write_arena" in result.findings[0].message

    def test_direct_guard_read_is_clean(self, tmp_path):
        result = run_deep(tmp_path, {"repro/mem/ok.py": """\
            class Device:
                def __init__(self):
                    self.fault_plan = None
                    self.cells = {}

                def write_arena(self, base, buffer):
                    if self.fault_plan is not None:
                        return self._scalar(base, buffer)
                    self.cells[base] = buffer
        """}, rules=["F3"])
        assert result.findings == []

    def test_transitive_guard_read_is_clean(self, tmp_path):
        # The guard lives in the scalar fallback the method dispatches to.
        result = run_deep(tmp_path, {"repro/mem/ok.py": """\
            class Device:
                def __init__(self):
                    self.fault_plan = None
                    self.cells = {}

                def write(self, address, data):
                    if self.fault_plan is not None:
                        raise RuntimeError("faulted")
                    self.cells[address] = data

                def write_batch(self, items):
                    for address, data in items:
                        self.write(address, data)
        """}, rules=["F3"])
        assert result.findings == []

    def test_class_without_fault_state_is_exempt(self, tmp_path):
        # SparseMemory-style raw stores never carry a fault plan; parity
        # applies only to classes that own the degradation state.
        result = run_deep(tmp_path, {"repro/mem/ok.py": """\
            class SparseStore:
                def __init__(self):
                    self.cells = {}

                def write_arena(self, base, buffer):
                    self.cells[base] = buffer
        """}, rules=["F3"])
        assert result.findings == []

    def test_private_batch_helpers_are_exempt(self, tmp_path):
        result = run_deep(tmp_path, {"repro/mem/ok.py": """\
            class Device:
                def __init__(self):
                    self.fault_plan = None

                def _fill_batch(self, items):
                    return items
        """}, rules=["F3"])
        assert result.findings == []


class TestF4HookForcedScalar:
    def test_batch_entry_ignoring_the_hook_is_flagged(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/evil.py": """\
            class Controller:
                def __init__(self):
                    self.op_hook = None

                def run_ops_batch(self, ops):
                    return [self._one(op) for op in ops]

                def _one(self, op):
                    return op
        """}, rules=["F4"])
        assert rules_hit(result) == ["F4"]
        assert "op_hook" in result.findings[0].message

    def test_hook_guard_forces_scalar(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/ok.py": """\
            class Controller:
                def __init__(self):
                    self.op_hook = None

                def run_ops_batch(self, ops):
                    if self.op_hook is not None:
                        return self.run_ops(ops)
                    return [self._one(op) for op in ops]

                def run_ops(self, ops):
                    return [self._one(op) for op in ops]

                def _one(self, op):
                    return op
        """}, rules=["F4"])
        assert result.findings == []

    def test_direct_dispatch_to_batched_sibling_needs_the_guard(
            self, tmp_path):
        result = run_deep(tmp_path, {"repro/core/evil.py": """\
            class Recovery:
                def __init__(self):
                    self.step_hook = None

                def recover(self):
                    return self._recover_batched()

                def _recover_batched(self):
                    return 0
        """}, rules=["F4"])
        assert rules_hit(result) == ["F4"]
        assert "step_hook" in result.findings[0].message

    def test_guarded_dispatch_is_clean(self, tmp_path):
        result = run_deep(tmp_path, {"repro/core/ok.py": """\
            class Recovery:
                def __init__(self):
                    self.step_hook = None

                def recover(self):
                    if self.step_hook is None:
                        return self._recover_batched()
                    return self._recover_scalar()

                def _recover_batched(self):
                    return 0

                def _recover_scalar(self):
                    return 0
        """}, rules=["F4"])
        assert result.findings == []

    def test_hookless_class_is_exempt(self, tmp_path):
        result = run_deep(tmp_path, {"repro/secure/ok.py": """\
            class Engine:
                def run_ops_batch(self, ops):
                    return list(ops)
        """}, rules=["F4"])
        assert result.findings == []


class TestF5CounterMonotonicity:
    def test_decremented_counter_written_back(self, tmp_path):
        result = run_deep(tmp_path, {"repro/crypto/evil.py": """\
            def rollback(block, slot):
                counter = block.counter_for(slot)
                block.minors[slot] = counter - 1
        """}, rules=["F5"])
        assert rules_hit(result) == ["F5"]
        assert "monotonic" in result.findings[0].message

    def test_decremented_counter_persisted_via_metaline(self, tmp_path):
        result = run_deep(tmp_path, {"repro/metadata/evil.py": """\
            from repro.metadata.cache import MetaLine

            def stash(block, slot, address):
                counter = block.counter_for(slot)
                return MetaLine(address, counter - 1)
        """}, rules=["F5"])
        assert rules_hit(result) == ["F5"]

    def test_incremented_write_back_is_the_designed_path(self, tmp_path):
        result = run_deep(tmp_path, {"repro/crypto/ok.py": """\
            def advance(block, slot):
                counter = block.counter_for(slot)
                block.minors[slot] = counter + 1
        """}, rules=["F5"])
        assert result.findings == []

    def test_decrement_used_only_for_comparison_is_clean(self, tmp_path):
        result = run_deep(tmp_path, {"repro/crypto/ok.py": """\
            def will_wrap(block, slot, limit):
                counter = block.counter_for(slot)
                return (counter - 1) >= limit
        """}, rules=["F5"])
        assert result.findings == []

    def test_non_counter_subtraction_into_minors_is_clean(self, tmp_path):
        result = run_deep(tmp_path, {"repro/crypto/ok.py": """\
            def resize(block, slot, width):
                block.minors[slot] = width - 1
        """}, rules=["F5"])
        assert result.findings == []


_STRIPPED_GUARD = (
    "        if not self.grouped_io:\n"
    "            view = memoryview(buffer)\n"
    "            for index, address in enumerate(addresses):\n"
    "                offset = index * CACHE_LINE_SIZE\n"
    "                self.write(address,\n"
    "                           bytes(view[offset:offset + CACHE_LINE_SIZE"
    "]),\n"
    "                           kinds if single else kinds[index])\n"
    "            return\n")


def copy_src_tree(tmp_path: Path) -> Path:
    shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
    return tmp_path / "src"


class TestRegressionTeeth:
    """Historic bug classes re-seeded into a scratch copy of the tree."""

    def test_f1_redetects_the_mac_domain_splice_class(self, tmp_path):
        src = copy_src_tree(tmp_path)
        (src / "repro/sharding/splice_regression.py").write_text(
            textwrap.dedent("""\
                from repro.crypto.primitives import MacDomain, compute_mac
                from repro.sharding.keys import TenantKeyring


                def forge_node_tag(keyring: TenantKeyring, tenant: int,
                                   payload: bytes) -> bytes:
                    key = keyring.mac_key(tenant)
                    return _seal(key, payload)


                def _seal(key: bytes, payload: bytes) -> bytes:
                    return compute_mac(key, payload, domain=MacDomain.NODE)
            """))
        result = lint_paths([src], root=tmp_path, deep=True, rules=["F1"])
        assert [f.rule for f in result.findings] == ["F1"]
        assert "splice_regression" in result.findings[0].path

    def test_f3_redetects_a_guard_stripped_write_arena(self, tmp_path):
        src = copy_src_tree(tmp_path)
        nvm = src / "repro/mem/nvm.py"
        source = nvm.read_text()
        assert _STRIPPED_GUARD in source, \
            "NvmDevice.write_arena guard moved; update _STRIPPED_GUARD"
        nvm.write_text(source.replace(_STRIPPED_GUARD, ""))
        result = lint_paths([src], root=tmp_path, deep=True, rules=["F3"])
        assert any(f.rule == "F3" and "write_arena" in f.message
                   for f in result.findings), \
            [f.format() for f in result.findings]

    def test_unmodified_copy_is_deep_clean(self, tmp_path):
        src = copy_src_tree(tmp_path)
        result = lint_paths(
            [src], root=tmp_path, deep=True,
            rules=["F1", "F2", "F3", "F4", "F5"])
        assert result.findings == [], \
            [f.format() for f in result.findings]


class TestRepositoryIsDeepClean:
    """The deep linter's verdict on this repository itself."""

    @pytest.fixture(scope="class")
    def deep_result(self):
        return lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"],
                          root=REPO_ROOT, deep=True)

    def test_zero_deep_findings(self, deep_result):
        assert deep_result.errors == []
        formatted = "\n".join(f.format() for f in deep_result.findings)
        assert deep_result.findings == [], f"deep lint found:\n{formatted}"

    def test_flow_baseline_is_empty(self):
        entries = parse_baseline(
            (REPO_ROOT / "flow-baseline.txt").read_text())
        # The shrink-only seed: the gate landed clean, so any entry ever
        # appearing here is a new flow violation by definition.
        assert entries == set()


class TestBaselineMechanics:
    def test_fingerprint_ignores_line_numbers(self):
        finding = Finding(path="repro/a.py", line=3, col=1,
                          rule="F2", message="escape")
        assert fingerprint(finding) == fingerprint(replace(finding, line=99))

    def test_apply_baseline_partitions_and_reports_stale(self):
        finding = Finding(path="repro/a.py", line=3, col=1,
                          rule="F2", message="escape")
        known = fingerprint(finding)
        fresh, baselined, stale = apply_baseline(
            [finding], {known, "F9|gone.py|deadbeef0000"})
        assert fresh == []
        assert baselined == [finding]
        assert stale == {"F9|gone.py|deadbeef0000"}

    def test_parse_baseline_skips_comments_and_blanks(self):
        text = "# header\n\nF1|repro/a.py|abc123def456\n"
        assert parse_baseline(text) == {"F1|repro/a.py|abc123def456"}


_F5_DEFECT = {
    "repro/crypto/evil.py": """\
        def rollback(block, slot):
            counter = block.counter_for(slot)
            block.minors[slot] = counter - 1
    """,
}


def write_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


class TestDeepCli:
    def test_deep_flag_enables_flow_rules(self, tmp_path, capsys):
        write_tree(tmp_path, _F5_DEFECT)
        assert main([str(tmp_path), "--root", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main([str(tmp_path), "--root", str(tmp_path), "--deep"]) == 1
        assert "F5:" in capsys.readouterr().out

    def test_explicitly_named_deep_rule_runs_without_deep(
            self, tmp_path, capsys):
        write_tree(tmp_path, _F5_DEFECT)
        assert main([str(tmp_path), "--root", str(tmp_path),
                     "--rules", "F5"]) == 1
        capsys.readouterr()

    def test_sarif_document_shape(self, tmp_path, capsys):
        write_tree(tmp_path, _F5_DEFECT)
        code = main([str(tmp_path), "--root", str(tmp_path),
                     "--deep", "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["version"] == "2.1.0"
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert {meta["id"] for meta in driver["rules"]} == set(RULES)
        results = document["runs"][0]["results"]
        assert results[0]["ruleId"] == "F5"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("evil.py")
        assert location["region"]["startLine"] == 3

    def test_sarif_marks_suppressed_findings(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "repro/core/clock.py":
                "import time  # reprolint: disable=R1\n"})
        code = main([str(tmp_path), "--root", str(tmp_path),
                     "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        results = document["runs"][0]["results"]
        assert results[0]["suppressions"] == [{"kind": "inSource"}]

    def test_baselined_finding_does_not_gate(self, tmp_path, capsys):
        write_tree(tmp_path, _F5_DEFECT)
        first = lint_paths([tmp_path], root=tmp_path, deep=True)
        assert [f.rule for f in first.findings] == ["F5"]
        (tmp_path / "flow-baseline.txt").write_text(
            f"# scratch baseline\n{fingerprint(first.findings[0])}\n")
        assert main([str(tmp_path), "--root", str(tmp_path), "--deep"]) == 0
        out = capsys.readouterr().out
        assert "(baselined)" in out
        assert "1 baselined" in out

    def test_stale_baseline_entry_is_an_error(self, tmp_path, capsys):
        write_tree(tmp_path, {"repro/core/ok.py": "x = 1\n"})
        (tmp_path / "flow-baseline.txt").write_text(
            "F5|repro/crypto/gone.py|0123456789ab\n")
        assert main([str(tmp_path), "--root", str(tmp_path), "--deep"]) == 2
        assert "stale" in capsys.readouterr().out


@pytest.mark.skipif(GIT is None, reason="git not available")
class TestChangedMode:
    @staticmethod
    def _git(cwd, *args):
        subprocess.run(
            [GIT, "-c", "user.email=lint@test", "-c", "user.name=lint",
             *args],
            cwd=cwd, check=True, capture_output=True, text=True)

    def _seed_repo(self, tmp_path):
        write_tree(tmp_path, {
            "repro/core/stable.py": "import time\n",
            "repro/core/touched.py": "x = 1\n",
        })
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        (tmp_path / "repro/core/touched.py").write_text("import random\n")

    def test_changed_files_lists_modified_paths(self, tmp_path):
        self._seed_repo(tmp_path)
        assert changed_files("HEAD", tmp_path) == {"repro/core/touched.py"}

    def test_changed_restricts_reporting_not_analysis(
            self, tmp_path, capsys):
        self._seed_repo(tmp_path)
        code = main([str(tmp_path), "--root", str(tmp_path),
                     "--changed", "HEAD"])
        out = capsys.readouterr().out
        # stable.py's pre-existing R1 finding is not re-reported; the new
        # one in touched.py is.
        assert code == 1
        assert "touched.py" in out
        assert "stable.py" not in out

    def test_changed_against_a_bad_ref_is_a_usage_error(
            self, tmp_path, capsys):
        self._seed_repo(tmp_path)
        code = main([str(tmp_path), "--root", str(tmp_path),
                     "--changed", "no-such-ref"])
        assert code == 2
        assert "--changed" in capsys.readouterr().out


class TestDocsAndListingsPinned:
    """Satellite 6: rule listings and docs cannot drift from the registry."""

    def test_list_rules_covers_names_scopes_and_deep_markers(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name, rule in RULES.items():
            assert name in out
            assert rule.title in out
            for prefix in rule.scope:
                assert prefix in out
        assert "[deep]" in out

    def test_r1_scope_is_the_sim_packages_tuple(self):
        assert RULES["R1"].scope == SIM_PACKAGES

    def test_docs_cover_every_rule_and_every_scoped_package(self):
        doc = (REPO_ROOT / "docs" / "linting.md").read_text()
        for name, rule in RULES.items():
            assert name in doc, f"docs/linting.md is missing rule {name}"
        for package in SIM_PACKAGES:
            assert package in doc, \
                f"docs/linting.md is missing scope package {package}"
        for phrase in ("--deep", "--changed", "flow-baseline.txt",
                       "sarif", "exit code"):
            assert phrase in doc.lower() or phrase in doc, \
                f"docs/linting.md is missing {phrase!r}"

    def test_readme_and_extending_crosslink_the_deep_gate(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "--deep" in readme
        extending = (REPO_ROOT / "docs" / "extending.md").read_text()
        assert "FlowRule" in extending
