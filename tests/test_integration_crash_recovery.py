"""End-to-end integration: run a workload, crash mid-flight, recover, and
verify nothing was lost — the crash-consistency contract EPD systems sell."""

import pytest

from repro.core.system import SecureEpdSystem
from repro.workloads.generators import (
    graph_walk_trace,
    kvstore_trace,
    transactional_trace,
    replay,
)


@pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
class TestWorkloadCrashRecovery:
    def _run(self, config, scheme, trace):
        system = SecureEpdSystem(config, scheme=scheme)
        expected = replay(system, trace)
        system.crash(seed=9)
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data, hex(address)
        return system

    def test_kvstore_state_survives_crash(self, tiny_config, scheme):
        trace = kvstore_trace(500, footprint_blocks=128, seed=21)
        self._run(tiny_config, scheme, trace)

    def test_transactional_state_survives_crash(self, tiny_config, scheme):
        trace = transactional_trace(50, footprint_blocks=64, seed=22)
        self._run(tiny_config, scheme, trace)

    def test_graph_state_survives_crash(self, tiny_config, scheme):
        trace = graph_walk_trace(400, footprint_blocks=96,
                                 write_fraction=0.4, seed=23)
        self._run(tiny_config, scheme, trace)

    def test_repeated_crash_cycles(self, tiny_config, scheme):
        """Three crash/recover cycles with interleaved mutations."""
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        oracle = {}
        for cycle in range(3):
            trace = kvstore_trace(150, footprint_blocks=64,
                                  seed=30 + cycle)
            oracle.update(replay(system, trace))
            system.crash(seed=40 + cycle)
            system.recover()
        for address, data in oracle.items():
            assert system.read(address) == data


class TestWorkloadOverflowingTheHierarchy:
    def test_working_set_larger_than_llc(self, tiny_config):
        """Writes that overflow the LLC are written back through the secure
        controller at run time and must still be intact after a crash."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        blocks = tiny_config.llc.num_lines * 2
        for i in range(blocks):
            system.write(i * 64, (i % 251).to_bytes(1, "little") * 64)
        system.crash(seed=5)
        system.recover()
        for i in range(blocks):
            assert system.read(i * 64) == (i % 251).to_bytes(1, "little") * 64


class TestBaselineEquivalence:
    def test_base_lu_preserves_workload_state(self, tiny_config):
        """The baseline drains in place: after the crash the data must be
        readable through the normal secure path post shadow-recovery."""
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        trace = kvstore_trace(300, footprint_blocks=96, seed=31)
        expected = replay(system, trace)
        system.crash(seed=6)
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data

    def test_base_eu_preserves_workload_state(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="base-eu")
        trace = kvstore_trace(300, footprint_blocks=96, seed=32)
        expected = replay(system, trace)
        system.crash(seed=7)
        system.recover()       # no-op for eager, but must not break reads
        for address, data in expected.items():
            assert system.read(address) == data

    def test_all_schemes_agree_on_final_state(self, tiny_config):
        """The same workload produces the same recovered contents under
        every secure scheme — drain strategy must not change semantics."""
        trace = kvstore_trace(200, footprint_blocks=64, seed=33)
        finals = {}
        for scheme in ("base-lu", "base-eu", "horus-slm", "horus-dlm"):
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            expected = replay(system, trace)
            system.crash(seed=8)
            system.recover()
            finals[scheme] = {a: system.read(a) for a in expected}
        reference = finals["base-lu"]
        for scheme, state in finals.items():
            assert state == reference, scheme
