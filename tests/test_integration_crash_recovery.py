"""End-to-end integration: run a workload, crash mid-flight, recover, and
verify nothing was lost — the crash-consistency contract EPD systems sell."""

import pytest

from repro.core.system import SecureEpdSystem
from repro.workloads.generators import (
    graph_walk_trace,
    kvstore_trace,
    transactional_trace,
    replay,
)


@pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
class TestWorkloadCrashRecovery:
    def _run(self, config, scheme, trace):
        system = SecureEpdSystem(config, scheme=scheme)
        expected = replay(system, trace)
        system.crash(seed=9)
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data, hex(address)
        return system

    def test_kvstore_state_survives_crash(self, tiny_config, scheme):
        trace = kvstore_trace(500, footprint_blocks=128, seed=21)
        self._run(tiny_config, scheme, trace)

    def test_transactional_state_survives_crash(self, tiny_config, scheme):
        trace = transactional_trace(50, footprint_blocks=64, seed=22)
        self._run(tiny_config, scheme, trace)

    def test_graph_state_survives_crash(self, tiny_config, scheme):
        trace = graph_walk_trace(400, footprint_blocks=96,
                                 write_fraction=0.4, seed=23)
        self._run(tiny_config, scheme, trace)

    def test_repeated_crash_cycles(self, tiny_config, scheme):
        """Three crash/recover cycles with interleaved mutations."""
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        oracle = {}
        for cycle in range(3):
            trace = kvstore_trace(150, footprint_blocks=64,
                                  seed=30 + cycle)
            oracle.update(replay(system, trace))
            system.crash(seed=40 + cycle)
            system.recover()
        for address, data in oracle.items():
            assert system.read(address) == data


class TestWorkloadOverflowingTheHierarchy:
    def test_working_set_larger_than_llc(self, tiny_config):
        """Writes that overflow the LLC are written back through the secure
        controller at run time and must still be intact after a crash."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        blocks = tiny_config.llc.num_lines * 2
        for i in range(blocks):
            system.write(i * 64, (i % 251).to_bytes(1, "little") * 64)
        system.crash(seed=5)
        system.recover()
        for i in range(blocks):
            assert system.read(i * 64) == (i % 251).to_bytes(1, "little") * 64


class TestBaselineEquivalence:
    def test_base_lu_preserves_workload_state(self, tiny_config):
        """The baseline drains in place: after the crash the data must be
        readable through the normal secure path post shadow-recovery."""
        system = SecureEpdSystem(tiny_config, scheme="base-lu")
        trace = kvstore_trace(300, footprint_blocks=96, seed=31)
        expected = replay(system, trace)
        system.crash(seed=6)
        system.recover()
        for address, data in expected.items():
            assert system.read(address) == data

    def test_base_eu_preserves_workload_state(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="base-eu")
        trace = kvstore_trace(300, footprint_blocks=96, seed=32)
        expected = replay(system, trace)
        system.crash(seed=7)
        system.recover()       # no-op for eager, but must not break reads
        for address, data in expected.items():
            assert system.read(address) == data

    def test_all_schemes_agree_on_final_state(self, tiny_config):
        """The same workload produces the same recovered contents under
        every secure scheme — drain strategy must not change semantics."""
        trace = kvstore_trace(200, footprint_blocks=64, seed=33)
        finals = {}
        for scheme in ("base-lu", "base-eu", "horus-slm", "horus-dlm"):
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            expected = replay(system, trace)
            system.crash(seed=8)
            system.recover()
            finals[scheme] = {a: system.read(a) for a in expected}
        reference = finals["base-lu"]
        for scheme, state in finals.items():
            assert state == reference, scheme


class TestShardedFleetCrashRecovery:
    """Coordinated cross-shard drains: policies schedule, never corrupt —
    and a mid-stagger power cut fails closed on the cut shard while every
    fully-drained shard still recovers exactly."""

    NUM_SHARDS = 3
    CRASH_SEED = 19

    def fleet_with_state(self, config, policy, **kwargs):
        from repro.sharding.system import ShardedSecureSystem

        fleet = ShardedSecureSystem(config, num_shards=self.NUM_SHARDS,
                                    scheme="horus-dlm", drain_policy=policy,
                                    **kwargs)
        size = fleet.router.shard_data_size
        expected = {}
        for i in range(5 * self.NUM_SHARDS):
            address = (i % self.NUM_SHARDS) * size + (i // 3) * 64
            data = bytes([i + 1]) * 64
            fleet.write(address, data)
            expected[address] = data
        return fleet, expected

    def recover_and_verify(self, fleet, expected):
        for shard in fleet.shards:
            shard.nvm.restore_power()
        fleet.recover()
        for address, data in expected.items():
            assert fleet.read(address) == data, hex(address)

    def total_drain_writes(self, config):
        """Probe a twin fleet for the full drain's fleet-total writes."""
        twin, _ = self.fleet_with_state(config, "staggered")
        report = twin.crash(seed=self.CRASH_SEED)
        return [r.total_writes for r in report.reports]

    @pytest.mark.parametrize("policy", ["simultaneous", "staggered"])
    def test_policies_preserve_recovered_state(self, tiny_config, policy):
        """Scheduling must not change drain content: both policies recover
        the same workload state exactly."""
        fleet, expected = self.fleet_with_state(tiny_config, policy)
        report = fleet.crash(seed=self.CRASH_SEED)
        assert report.schedule.policy == policy
        self.recover_and_verify(fleet, expected)

    def test_staggered_and_simultaneous_drains_are_identical(
            self, tiny_config):
        """Per-shard drain observables (blocks flushed, seconds, energy)
        are policy-invariant; only the schedule differs."""
        stag, _ = self.fleet_with_state(tiny_config, "staggered")
        sim, _ = self.fleet_with_state(tiny_config, "simultaneous")
        a = stag.crash(seed=self.CRASH_SEED)
        b = sim.crash(seed=self.CRASH_SEED)
        assert [r.flushed_blocks for r in a.reports] == \
            [r.flushed_blocks for r in b.reports]
        assert [r.seconds for r in a.reports] == \
            [r.seconds for r in b.reports]
        assert a.wall_seconds >= b.wall_seconds
        assert stag.observables() == sim.observables()

    def test_budgeted_fleet_respects_its_power_budget(self, tiny_config):
        from repro.sharding.drain import shard_power_w

        probe, _ = self.fleet_with_state(tiny_config, "simultaneous")
        report = probe.crash(seed=self.CRASH_SEED)
        budget = max(shard_power_w(r, e)
                     for r, e in zip(report.reports, report.energies))
        fleet, expected = self.fleet_with_state(
            tiny_config, "budgeted", power_budget_w=budget)
        budgeted = fleet.crash(seed=self.CRASH_SEED)
        assert budgeted.schedule.peak_power_w <= budget * (1 + 1e-9)
        self.recover_and_verify(fleet, expected)

    def test_mid_stagger_cut_after_full_budget_recovers_everything(
            self, tiny_config):
        """A cut that lands after the last drain write loses nothing."""
        writes = self.total_drain_writes(tiny_config)
        fleet, expected = self.fleet_with_state(tiny_config, "staggered")
        fleet.crash(seed=self.CRASH_SEED, cut_after_writes=sum(writes))
        self.recover_and_verify(fleet, expected)

    def test_mid_stagger_cut_fails_closed_per_shard(self, tiny_config):
        """Power dies while shard 1 is draining: shard 0 (already done)
        recovers exactly, the truncated shards are *detected* at recovery
        — never silently wrong."""
        from repro.common.errors import SecurityError

        writes = self.total_drain_writes(tiny_config)
        fleet, expected = self.fleet_with_state(tiny_config, "staggered")
        fleet.crash(seed=self.CRASH_SEED,
                    cut_after_writes=writes[0] + writes[1] // 2)
        survivor = fleet.shards[0]
        survivor.recover()
        size = fleet.router.shard_data_size
        for address, data in expected.items():
            if address < size:
                assert fleet.read(address) == data, hex(address)
        for cut_shard in fleet.shards[1:]:
            with pytest.raises(SecurityError):
                cut_shard.recover()
