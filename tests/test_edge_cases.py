"""Edge cases and failure paths across the stack."""

import pytest

from repro.common.errors import AddressError, ConfigError, RecoveryError
from repro.core.chv import ChvLayout
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.mem.regions import MemoryLayout, Region


class TestEmptyDrains:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_draining_an_empty_hierarchy(self, tiny_config, scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        report = system.crash(seed=1)
        assert report.flushed_blocks == 0
        assert report.total_writes == 0
        assert report.seconds == 0.0

    def test_horus_recover_after_empty_drain_raises(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.crash(seed=1)
        with pytest.raises(RecoveryError):
            system.recover()

    def test_two_crashes_without_recovery(self, tiny_config):
        """A second outage before recovery: the second (empty) episode
        replaces the first — consistent with eDC semantics."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.write(0, b"\x01" * 64)
        system.crash(seed=1)
        second = system.crash(seed=2)
        assert second.flushed_blocks == 0
        assert system.drain_counter.ephemeral == 0


class TestChvOverflow:
    def test_vault_capacity_is_enforced(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        layout = MemoryLayout(tiny_config)
        # Shrink the engine's vault to 64 positions and overfeed it.
        system.drain_engine._chv = ChvLayout(layout.chv, capacity=64)
        for i in range(65):
            system.hierarchy.restore_dirty(i * 4096, bytes(64))
        with pytest.raises(ConfigError):
            system.crash(seed=1)


class TestRegionEdges:
    def test_region_block_bounds(self):
        region = Region("r", 0, 128)
        assert region.block_at(0) == 0
        assert region.block_at(1) == 64
        with pytest.raises(AddressError):
            region.block_at(2)

    def test_empty_region_contains_nothing(self):
        region = Region("empty", 1024, 0)
        assert not region.contains(1024)

    def test_layout_total_size_bounds_every_region(self, tiny_config):
        layout = MemoryLayout(tiny_config)
        for region in layout.regions:
            assert region.end <= layout.total_size


class TestSystemMisuse:
    def test_write_outside_data_region(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        with pytest.raises(AddressError):
            system.write(system.layout.counters.base, bytes(64))

    def test_unaligned_runtime_address(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        with pytest.raises(AddressError):
            system.read(7)

    def test_fill_after_runtime_writes_resets_cleanly(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.write(0, b"\x09" * 64)
        filled = system.fill_worst_case(seed=1)
        assert filled == tiny_config.total_cache_lines
        report = system.crash(seed=2)
        assert report.flushed_blocks == filled


class TestDrainReportDerived:
    def test_milliseconds_property(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="nosec")
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        assert report.milliseconds == pytest.approx(report.seconds * 1e3)
        assert report.total_memory_requests == \
            report.total_reads + report.total_writes


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["base-lu", "horus-dlm"])
    def test_identical_seeds_identical_reports(self, tiny_config, scheme):
        def run():
            system = SecureEpdSystem(tiny_config, scheme=scheme)
            system.fill_worst_case(seed=5)
            report = system.crash(seed=6)
            return (report.total_memory_requests, report.total_macs,
                    report.cycles)

        assert run() == run()

    def test_different_fill_seeds_change_baseline_order_not_totals(
            self, tiny_config):
        """Shuffling the worst-case fill moves addresses around but every
        line still owns a private counter page, so the baseline totals stay
        within a narrow band."""
        def requests(seed):
            system = SecureEpdSystem(tiny_config, scheme="base-lu")
            system.fill_worst_case(seed=seed)
            return system.crash(seed=9).total_memory_requests

        a, b = requests(1), requests(2)
        assert abs(a - b) / a < 0.05
