"""Property-based tests: the in-memory Merkle tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata.merkle import InMemoryMerkleTree

leaf = st.binary(min_size=64, max_size=64)
leaf_lists = st.lists(leaf, min_size=1, max_size=40)


class TestMerkleProperties:
    @given(leaf_lists)
    @settings(max_examples=50)
    def test_build_is_deterministic(self, leaves):
        assert InMemoryMerkleTree(leaves).root == \
            InMemoryMerkleTree(leaves).root

    @given(leaf_lists, st.data())
    @settings(max_examples=50)
    def test_any_leaf_mutation_changes_root(self, leaves, data):
        tree = InMemoryMerkleTree(leaves)
        index = data.draw(st.integers(0, len(leaves) - 1))
        mutated = list(leaves)
        flipped = bytearray(mutated[index])
        flipped[0] ^= 0x01
        mutated[index] = bytes(flipped)
        assert InMemoryMerkleTree(mutated).root != tree.root

    @given(leaf_lists, st.data())
    @settings(max_examples=50)
    def test_incremental_update_equals_rebuild(self, leaves, data):
        tree = InMemoryMerkleTree(leaves)
        for _ in range(3):
            index = data.draw(st.integers(0, len(leaves) - 1))
            payload = data.draw(leaf)
            tree.update_leaf(index, payload)
            leaves = list(leaves)
            leaves[index] = payload
        assert tree.root == InMemoryMerkleTree(leaves).root
        tree.verify_all()

    @given(leaf_lists)
    @settings(max_examples=50)
    def test_verify_against_accepts_only_same_leaves(self, leaves):
        tree = InMemoryMerkleTree(leaves)
        assert tree.verify_against(leaves)
        mutated = list(leaves)
        mutated[0] = bytes(64) if mutated[0] != bytes(64) else b"\x01" * 64
        assert not tree.verify_against(mutated)

    @given(st.lists(leaf, min_size=2, max_size=40), st.data())
    @settings(max_examples=50)
    def test_leaf_transposition_changes_root(self, leaves, data):
        i = data.draw(st.integers(0, len(leaves) - 2))
        if leaves[i] == leaves[i + 1]:
            return  # identical leaves commute trivially
        swapped = list(leaves)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        assert InMemoryMerkleTree(leaves).root != \
            InMemoryMerkleTree(swapped).root

    @given(leaf_lists, st.integers(2, 16))
    @settings(max_examples=50)
    def test_hash_count_matches_level_structure(self, leaves, arity):
        tree = InMemoryMerkleTree(leaves, arity=arity)
        expected, level = 0, len(leaves)
        expected += level
        while level > 1:
            level = -(-level // arity)
            expected += level
        if len(leaves) == 1:
            expected = 1
        assert tree.num_hashes == expected
