"""NVM wear tracking."""

import pytest

from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.mem.wear import WearTracker
from repro.stats.events import WriteKind


@pytest.fixture
def tracked(tiny_config):
    layout = MemoryLayout(tiny_config)
    nvm = NvmDevice(layout.total_size)
    nvm.wear = WearTracker(layout)
    return nvm, layout


class TestWearTracker:
    def test_counts_repeated_writes_per_block(self, tracked):
        nvm, _ = tracked
        for _ in range(5):
            nvm.write(0, bytes(64), WriteKind.DATA)
        nvm.write(64, bytes(64), WriteKind.DATA)
        assert nvm.wear.writes_at(0) == 5
        assert nvm.wear.writes_at(64) == 1
        assert nvm.wear.total_writes == 6

    def test_hottest_block(self, tracked):
        nvm, _ = tracked
        nvm.write(64, bytes(64), WriteKind.DATA)
        for _ in range(3):
            nvm.write(128, bytes(64), WriteKind.DATA)
        assert nvm.wear.hottest_block() == (128, 3)

    def test_hottest_block_when_empty(self, tracked):
        nvm, _ = tracked
        assert nvm.wear.hottest_block() == (0, 0)

    def test_unaccounted_pokes_do_not_wear(self, tracked):
        nvm, _ = tracked
        nvm.poke(0, bytes(64))
        assert nvm.wear.total_writes == 0

    def test_region_wear_classifies_addresses(self, tracked):
        nvm, layout = tracked
        nvm.write(0, bytes(64), WriteKind.DATA)
        nvm.write(layout.counters.base, bytes(64), WriteKind.COUNTER)
        nvm.write(layout.chv.base, bytes(64), WriteKind.CHV_DATA)
        wear = {w.region: w for w in nvm.wear.region_wear()}
        assert wear["data"].total_writes == 1
        assert wear["counters"].total_writes == 1
        assert wear["chv"].total_writes == 1
        assert wear["tree"].total_writes == 0

    def test_region_wear_statistics(self, tracked):
        nvm, _ = tracked
        for _ in range(4):
            nvm.write(0, bytes(64), WriteKind.DATA)
        nvm.write(64, bytes(64), WriteKind.DATA)
        data = nvm.wear.wear_of("data")
        assert data.blocks_written == 2
        assert data.total_writes == 5
        assert data.max_writes_per_block == 4
        assert data.mean_writes_per_block == pytest.approx(2.5)

    def test_wear_of_unknown_region(self, tracked):
        nvm, _ = tracked
        with pytest.raises(KeyError):
            nvm.wear.wear_of("bogus")

    def test_reset(self, tracked):
        nvm, _ = tracked
        nvm.write(0, bytes(64), WriteKind.DATA)
        nvm.wear.reset()
        assert nvm.wear.total_writes == 0

    def test_untracked_device_has_no_overhead_path(self, tiny_config):
        layout = MemoryLayout(tiny_config)
        nvm = NvmDevice(layout.total_size)
        nvm.write(0, bytes(64), WriteKind.DATA)   # wear is None: no error
        assert nvm.wear is None


class TestWearExperimentShape:
    def test_wear_ablation_passes(self):
        from repro.experiments.suite import DrainSuite
        from repro.experiments.wear import run
        result = run(DrainSuite(scale=256))
        assert result.all_checks_pass, [c for c in result.checks
                                        if not c.passed]
