"""The experiment harness: every figure/table module runs and its shape
checks hold at test scale."""

import pytest

from repro.experiments import ablations
from repro.experiments.fig06_motivation import run as run_fig6
from repro.experiments.fig11_drain_time import run as run_fig11
from repro.experiments.fig12_write_breakdown import run as run_fig12
from repro.experiments.fig13_mac_breakdown import run as run_fig13
from repro.experiments.fig14_15_llc_sweep import run_fig14, run_fig15
from repro.experiments.fig16_recovery_time import run as run_fig16
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.runner import EXPERIMENTS, run_experiments
from repro.experiments.suite import DrainSuite
from repro.experiments.table2_energy import run as run_table2
from repro.experiments.table3_battery import run as run_table3


@pytest.fixture(scope="module")
def suite() -> DrainSuite:
    return DrainSuite(scale=128)


class TestDrainSuite:
    def test_memoizes_reports(self, suite):
        assert suite.drain("nosec") is suite.drain("nosec")

    def test_rejects_unknown_scheme(self, suite):
        with pytest.raises(ValueError):
            suite.drain("bogus")

    def test_all_drains_covers_every_scheme(self, suite):
        reports = suite.all_drains()
        assert set(reports) == {"nosec", "base-lu", "base-eu",
                                "horus-slm", "horus-dlm"}


@pytest.mark.parametrize("run", [run_fig6, run_fig11, run_fig12, run_fig13,
                                 run_fig16, run_table2, run_table3,
                                 ablations.run_coalescing],
                         ids=["fig6", "fig11", "fig12", "fig13", "fig16",
                              "table2", "table3", "coalescing"])
class TestExperimentShapeChecks:
    def test_runs_and_all_checks_pass(self, suite, run):
        result = run(suite)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        failed = [c for c in result.checks if not c.passed]
        assert result.all_checks_pass, failed

    def test_renders_to_text(self, suite, run):
        text = run(suite).to_text()
        assert "paper:" in text
        assert "[PASS]" in text


class TestSweepExperiments:
    """Fig. 14/15 and the simulation ablations run 3-8 extra drains each, so
    they get their own (still-small) scale."""

    @pytest.fixture(scope="class")
    def sweep_suite(self) -> DrainSuite:
        return DrainSuite(scale=256)

    @pytest.mark.parametrize("run", [run_fig14, run_fig15],
                             ids=["fig14", "fig15"])
    def test_llc_sweep(self, sweep_suite, run):
        result = run(sweep_suite)
        assert result.all_checks_pass, [c for c in result.checks
                                        if not c.passed]
        assert len(result.rows) == 3

    def test_locality_ablation(self, sweep_suite):
        result = ablations.run_locality(sweep_suite)
        assert result.all_checks_pass

    def test_metadata_cache_ablation(self, sweep_suite):
        result = ablations.run_metadata_cache(sweep_suite)
        assert result.all_checks_pass


class TestRunner:
    def test_registry_covers_every_table_and_figure(self):
        expected = {"fig6", "fig11", "fig12", "fig13", "fig14", "fig15",
                    "fig16", "table2", "table3"}
        assert expected <= set(EXPERIMENTS)

    def test_registry_covers_the_ablations(self):
        expected = {"ablation-locality", "ablation-metadata-cache",
                    "ablation-coalescing", "ablation-adr-vs-epd",
                    "ablation-wear", "ablation-parallelism",
                    "ablation-runtime", "ablation-availability",
                    "ablation-scheduler", "ablation-faults",
                    "ablation-campaigns", "ablation-shards", "headline"}
        assert expected <= set(EXPERIMENTS)

    def test_run_experiments_subset(self):
        results = run_experiments(["fig16"], scale=128)
        assert len(results) == 1
        assert results[0].experiment_id == "fig16"


class TestShapeCheckRendering:
    def test_pass_and_miss_render(self):
        assert str(ShapeCheck("c", True, "1x")).startswith("[PASS]")
        assert str(ShapeCheck("c", False, "1x")).startswith("[MISS]")
