"""Address arithmetic helpers."""

import pytest

from repro.common import address
from repro.common.errors import AlignmentError


class TestAlignment:
    def test_aligned_addresses(self):
        assert address.is_block_aligned(0)
        assert address.is_block_aligned(64)
        assert address.is_block_aligned(128 * 64)

    def test_unaligned_addresses(self):
        assert not address.is_block_aligned(1)
        assert not address.is_block_aligned(63)
        assert not address.is_block_aligned(65)

    def test_require_aligned_returns_value(self):
        assert address.require_block_aligned(256) == 256

    def test_require_aligned_rejects_unaligned(self):
        with pytest.raises(AlignmentError):
            address.require_block_aligned(100)

    def test_require_aligned_rejects_negative(self):
        with pytest.raises(AlignmentError):
            address.require_block_aligned(-64)

    def test_custom_block_size(self):
        assert address.is_block_aligned(4096, block_size=4096)
        assert not address.is_block_aligned(64, block_size=4096)


class TestBlockArithmetic:
    def test_align_down(self):
        assert address.block_align_down(0) == 0
        assert address.block_align_down(63) == 0
        assert address.block_align_down(64) == 64
        assert address.block_align_down(130) == 128

    def test_block_index_and_address_are_inverse(self):
        for index in (0, 1, 17, 4095):
            addr = address.block_address(index)
            assert address.block_index(addr) == index

    def test_blocks_in_rounds_up(self):
        assert address.blocks_in(0) == 0
        assert address.blocks_in(1) == 1
        assert address.blocks_in(64) == 1
        assert address.blocks_in(65) == 2
        assert address.blocks_in(4096) == 64
