"""The Horus drain engine: operation-count contracts and CHV contents."""

import pytest

from repro.core.system import SecureEpdSystem
from repro.stats.events import AesKind, MacKind, WriteKind


@pytest.fixture(scope="module")
def slm_report(tiny_config):
    system = SecureEpdSystem(tiny_config, scheme="horus-slm")
    system.fill_worst_case(seed=1)
    return system, system.crash(seed=2)


@pytest.fixture(scope="module")
def dlm_report(tiny_config):
    system = SecureEpdSystem(tiny_config, scheme="horus-dlm")
    system.fill_worst_case(seed=1)
    return system, system.crash(seed=2)


class TestHorusOperationContracts:
    def test_no_main_metadata_traffic_at_all(self, slm_report):
        """Horus's whole point: zero fetches/updates of the regular secure
        metadata during the drain."""
        _, report = slm_report
        assert report.total_reads == 0
        assert report.stats.writes[WriteKind.DATA] == 0
        assert report.stats.writes[WriteKind.COUNTER] == 0
        assert report.stats.writes[WriteKind.TREE_NODE] == 0
        assert report.stats.macs[MacKind.TREE_UPDATE] == 0
        assert report.stats.macs[MacKind.VERIFY] == 0

    def test_one_chv_data_write_per_flushed_line(self, slm_report):
        _, report = slm_report
        total_vaulted = report.flushed_blocks + report.metadata_blocks
        assert (report.stats.writes[WriteKind.CHV_DATA]
                + report.stats.writes[WriteKind.CHV_METADATA]) == total_vaulted

    def test_one_address_block_per_eight_lines(self, slm_report):
        _, report = slm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert report.stats.writes[WriteKind.CHV_ADDRESS] == -(-vaulted // 8)

    def test_slm_one_mac_block_per_eight_lines(self, slm_report):
        _, report = slm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert report.stats.writes[WriteKind.CHV_MAC] == -(-vaulted // 8)

    def test_slm_total_writes_are_1_25x(self, slm_report, tiny_config):
        _, report = slm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert report.total_writes == pytest.approx(1.25 * vaulted, rel=0.01)

    def test_one_aes_and_one_mac_per_line_slm(self, slm_report):
        _, report = slm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert report.stats.aes[AesKind.ENCRYPT] == vaulted
        assert report.stats.macs[MacKind.CHV_DATA] == vaulted
        assert report.stats.macs[MacKind.CHV_LEVEL2] == 0


class TestDoubleLevelMac:
    def test_dlm_one_mac_block_per_64_lines(self, dlm_report):
        _, report = dlm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert report.stats.writes[WriteKind.CHV_MAC] == -(-vaulted // 64)

    def test_dlm_spends_1_125x_macs(self, dlm_report):
        _, report = dlm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert report.stats.macs[MacKind.CHV_DATA] == vaulted
        assert report.stats.macs[MacKind.CHV_LEVEL2] == -(-vaulted // 8)

    def test_dlm_writes_fewer_blocks_than_slm(self, slm_report, dlm_report):
        assert dlm_report[1].total_writes < slm_report[1].total_writes

    def test_dlm_8x_fewer_mac_writes_than_slm(self, slm_report, dlm_report):
        slm_macs = slm_report[1].stats.writes[WriteKind.CHV_MAC]
        dlm_macs = dlm_report[1].stats.writes[WriteKind.CHV_MAC]
        # Exactly 8x up to the ceiling of the final partial groups.
        assert 7.0 <= slm_macs / dlm_macs <= 8.0


class TestDrainCounterBehaviour:
    def test_dc_advances_once_per_vaulted_block(self, slm_report):
        system, report = slm_report
        vaulted = report.flushed_blocks + report.metadata_blocks
        assert system.drain_counter.value == vaulted
        assert system.drain_counter.ephemeral == vaulted

    def test_two_episodes_never_reuse_dc_values(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        first_end = system.drain_counter.value
        system.recover()
        system.fill_worst_case(seed=3)
        system.crash(seed=4)
        # The second episode started where the first ended: no reuse.
        assert system.drain_counter.value > first_end
        assert system.drain_counter.value - system.drain_counter.ephemeral \
            == first_end


class TestChvContents:
    def test_vaulted_blocks_are_ciphertext(self, slm_report):
        system, report = slm_report
        chv = system.drain_engine._chv
        # A vaulted block must not equal any plaintext pattern (all our fill
        # payloads repeat an 8-byte address tag; ciphertext will not).
        raw = system.nvm.peek(chv.data_address(0))
        assert raw[:8] != raw[8:16]

    def test_identical_plaintexts_vault_to_distinct_ciphertexts(self,
                                                                tiny_config):
        """Unique DC per flush: equal lines leak nothing (Section IV-C4)."""
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        same = b"\x42" * 64
        system.hierarchy.restore_dirty(0, same)
        system.hierarchy.restore_dirty(4096, same)
        system.crash(seed=2)
        chv = system.drain_engine._chv
        assert system.nvm.peek(chv.data_address(0)) != \
            system.nvm.peek(chv.data_address(1))

    def test_drain_is_independent_of_flush_order(self, tiny_config):
        """Horus cost is oblivious to content/order (Section V-A)."""
        totals = set()
        for drain_seed in (2, 3, 4):
            system = SecureEpdSystem(tiny_config, scheme="horus-slm")
            system.fill_worst_case(seed=1)
            report = system.crash(seed=drain_seed)
            totals.add((report.total_memory_requests, report.total_macs))
        assert len(totals) == 1
