"""Horus recovery: functional restore, estimator pinning, attack detection."""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.config import SystemConfig
from repro.common.errors import IntegrityError, RecoveryError
from repro.common.units import mib
from repro.core.recovery import (
    estimate_recovery_seconds,
    estimate_recovery_stats,
)
from repro.core.system import SecureEpdSystem
from repro.stats.events import ReadKind


def _crashed_system(config, scheme="horus-slm", fill_seed=1, drain_seed=2):
    system = SecureEpdSystem(config, scheme=scheme)
    system.fill_worst_case(seed=fill_seed)
    system.crash(seed=drain_seed)
    return system


class TestFunctionalRecovery:
    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_recovery_restores_every_line_bit_exact(self, tiny_config,
                                                    scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        system.fill_worst_case(seed=1)
        expected = {line.address: line.data
                    for line in system.hierarchy.llc.lines()}
        system.crash(seed=2)
        assert len(system.hierarchy) == 0
        report = system.recover()
        assert report.blocks_restored > 0
        restored = {line.address: line.data
                    for line in system.hierarchy.llc.lines()}
        assert restored == expected

    def test_recovered_lines_are_dirty(self, tiny_config):
        system = _crashed_system(tiny_config)
        system.recover()
        assert all(line.dirty for line in system.hierarchy.llc.lines())

    def test_metadata_caches_are_restored(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        for i in range(8):                  # populate some metadata state
            system.controller.write(i * 4096, b"\x09" * 64)
        system.fill_worst_case(seed=1)
        resident_before = sum(len(c) for c in
                              system.controller.metadata_caches)
        system.crash(seed=2)
        system.recover()
        resident_after = sum(len(c) for c in
                             system.controller.metadata_caches)
        assert resident_after == resident_before > 0

    def test_edc_cleared_after_recovery(self, tiny_config):
        system = _crashed_system(tiny_config)
        system.recover()
        assert system.drain_counter.ephemeral == 0

    def test_recover_twice_raises(self, tiny_config):
        system = _crashed_system(tiny_config)
        system.recover()
        with pytest.raises(RecoveryError):
            system.recover()

    def test_recovery_reads_exactly_the_chv(self, tiny_config):
        system = _crashed_system(tiny_config)
        report = system.recover()
        assert report.stats.total_reads == report.stats.reads[ReadKind.CHV]
        vaulted = report.blocks_restored
        # data + 1/8 address blocks + 1/8 MAC blocks (SLM)
        assert report.stats.total_reads == \
            vaulted + 2 * -(-vaulted // 8)


class TestRecoveryAttackDetection:
    def test_tampered_chv_data_detected(self, tiny_config):
        system = _crashed_system(tiny_config)
        chv = system.drain_engine._chv
        Adversary(system.nvm).tamper(chv.data_address(5))
        with pytest.raises(IntegrityError):
            system.recover()

    def test_tampered_address_block_detected(self, tiny_config):
        system = _crashed_system(tiny_config)
        chv = system.drain_engine._chv
        Adversary(system.nvm).tamper(chv.address_block_address(0))
        with pytest.raises(IntegrityError):
            system.recover()

    def test_tampered_mac_block_detected(self, tiny_config):
        system = _crashed_system(tiny_config)
        chv = system.drain_engine._chv
        Adversary(system.nvm).tamper(chv.mac_block_address(0))
        with pytest.raises(IntegrityError):
            system.recover()

    def test_spliced_chv_blocks_detected(self, tiny_config):
        system = _crashed_system(tiny_config)
        chv = system.drain_engine._chv
        Adversary(system.nvm).splice(chv.data_address(0),
                                     chv.data_address(1))
        with pytest.raises(IntegrityError):
            system.recover()

    def test_replayed_previous_episode_detected(self, tiny_config):
        """Replay the whole first episode's CHV into the second: every DC
        value differs, so the very first MAC check must fail."""
        system = _crashed_system(tiny_config)
        chv = system.drain_engine._chv
        adversary = Adversary(system.nvm)
        stale = [adversary.snapshot(chv.data_address(i)) for i in range(16)]
        system.recover()
        system.fill_worst_case(seed=3)
        system.crash(seed=4)
        for i, content in enumerate(stale):
            adversary.replay(chv.data_address(i), content)
        with pytest.raises(IntegrityError):
            system.recover()

    def test_dlm_detects_tamper_in_any_group_member(self, tiny_config):
        system = _crashed_system(tiny_config, scheme="horus-dlm")
        chv = system.drain_engine._chv
        Adversary(system.nvm).tamper(chv.data_address(3))
        with pytest.raises(IntegrityError):
            system.recover()


class TestRecoveryEstimator:
    def test_estimator_matches_functional_recovery(self, tiny_config):
        """The Fig. 16 estimator must count exactly what the engine does."""
        system = _crashed_system(tiny_config)
        report = system.recover()
        estimate = estimate_recovery_stats(tiny_config,
                                           double_level_mac=False,
                                           blocks=report.blocks_restored)
        assert estimate.total_reads == report.stats.total_reads
        assert estimate.total_macs == report.stats.total_macs
        assert estimate.total_aes == report.stats.total_aes

    def test_estimator_matches_functional_recovery_dlm(self, tiny_config):
        system = _crashed_system(tiny_config, scheme="horus-dlm")
        report = system.recover()
        estimate = estimate_recovery_stats(tiny_config, double_level_mac=True,
                                           blocks=report.blocks_restored)
        assert estimate.total_reads == report.stats.total_reads
        assert estimate.total_macs == report.stats.total_macs

    def test_paper_scale_headline_numbers(self):
        """Fig. 16 at 128 MB LLC: 0.51 s (SLM) and 0.48 s (DLM)."""
        config = SystemConfig.paper(llc_size=mib(128))
        assert estimate_recovery_seconds(config, False) == \
            pytest.approx(0.51, abs=0.02)
        assert estimate_recovery_seconds(config, True) == \
            pytest.approx(0.48, abs=0.02)
