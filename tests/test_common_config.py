"""Configuration dataclasses and the Table I defaults."""

import pytest

from repro.common.config import (
    CacheConfig,
    MemoryConfig,
    SecurityConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from repro.common.units import gib, kib, mib


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        l1 = CacheConfig("L1", kib(64), 2, 2)
        assert l1.num_lines == 1024
        assert l1.num_sets == 512

    def test_paper_llc_geometry(self):
        llc = CacheConfig("LLC", mib(16), 16, 32)
        assert llc.num_lines == 262144
        assert llc.num_sets == 16384

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 1000, 2, 1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", 3 * kib(64), 2, 1)


class TestMemoryConfig:
    def test_defaults_match_table1(self):
        mem = MemoryConfig()
        assert mem.size == gib(32)
        assert mem.read_latency_ns == 150
        assert mem.write_latency_ns == 500

    def test_rejects_unaligned_size(self):
        with pytest.raises(ConfigError):
            MemoryConfig(size=100)


class TestSecurityConfig:
    def test_defaults_match_table1(self):
        sec = SecurityConfig()
        assert sec.aes_latency_cycles == 40
        assert sec.hash_latency_cycles == 160
        assert sec.counter_cache_size == kib(256)
        assert sec.mac_cache_size == kib(512)
        assert sec.tree_cache_size == kib(256)
        assert sec.tree_arity == 8

    def test_rejects_degenerate_arity(self):
        with pytest.raises(ConfigError):
            SecurityConfig(tree_arity=1)


class TestSystemConfig:
    def test_paper_flushed_block_total(self):
        """The paper's Fig. 6 caption: 295,936 flushed cache blocks."""
        assert SystemConfig.paper().total_cache_lines == 295936

    def test_paper_total_cache_size(self):
        config = SystemConfig.paper()
        assert config.total_cache_size == kib(64) + mib(2) + mib(16)

    def test_paper_metadata_cache_size(self):
        assert SystemConfig.paper().metadata_cache_size == kib(1024)

    def test_worst_case_stride_is_16k_at_paper_scale(self):
        assert SystemConfig.paper().worst_case_stride == kib(16)

    def test_llc_size_parameter(self):
        config = SystemConfig.paper(llc_size=mib(8))
        assert config.llc.size == mib(8)
        assert config.llc.ways == 16

    def test_rejects_non_monotone_hierarchy(self):
        with pytest.raises(ConfigError):
            SystemConfig(l1=CacheConfig("L1", mib(4), 2, 2))

    def test_rejects_memory_smaller_than_4x_llc(self):
        with pytest.raises(ConfigError):
            SystemConfig(memory=MemoryConfig(size=mib(32)))


class TestScaledConfig:
    @pytest.mark.parametrize("factor", [2, 16, 128, 512])
    def test_scaling_preserves_structure(self, factor):
        config = SystemConfig.scaled(factor)
        paper = SystemConfig.paper()
        assert config.l1.ways == paper.l1.ways
        assert config.llc.ways == paper.llc.ways
        assert config.memory.size == paper.memory.size // factor

    def test_scale_one_is_paper(self):
        assert SystemConfig.scaled(1) == SystemConfig.paper()

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            SystemConfig.scaled(3)

    def test_scaled_stride_still_isolates_counter_pages(self):
        """The worst case requires lines in distinct 4 KiB counter pages."""
        for factor in (16, 128, 512):
            config = SystemConfig.scaled(factor)
            assert config.worst_case_stride >= 4096

    def test_scaled_fill_fits_in_memory(self):
        for factor in (16, 128, 512):
            config = SystemConfig.scaled(factor)
            footprint = config.worst_case_stride * config.total_cache_lines
            assert footprint <= config.memory.size
