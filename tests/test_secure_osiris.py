"""Osiris-style stop-loss counter persistence and post-crash reconstruction."""

import pytest

from repro.attacks.adversary import Adversary
from repro.common.errors import ConfigError, RecoveryError
from repro.core.system import SecureEpdSystem
from repro.secure.audit import audit_memory
from repro.secure.osiris import OsirisLazyScheme, OsirisRecovery
from tests.test_secure_controller import payload


def make_osiris_system(tiny_config, stop_loss=8):
    return SecureEpdSystem(tiny_config, scheme="base-lu",
                           osiris_stop_loss=stop_loss)


class TestStopLossWriteThrough:
    def test_scheme_name_and_validation(self):
        assert OsirisLazyScheme(4).name == "osiris"
        with pytest.raises(ConfigError):
            OsirisLazyScheme(0)

    def test_counters_persist_within_stop_loss(self, tiny_config):
        system = make_osiris_system(tiny_config, stop_loss=4)
        controller = system.controller
        for i in range(10):
            controller.write(0, payload(i))
        cb_address = controller.layout.counter_block_address(0)
        assert controller.nvm.backend.is_written(cb_address)
        from repro.crypto.counters import SplitCounterBlock
        persisted = SplitCounterBlock.from_bytes(
            controller.nvm.peek(cb_address))
        live = controller.get_counter_line(0).value
        staleness = live.counter_for(0) - persisted.counter_for(0)
        assert 0 <= staleness < 4

    def test_no_shadow_dump_at_drain(self, tiny_config):
        from repro.stats.events import WriteKind
        system = make_osiris_system(tiny_config)
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        assert report.stats.writes[WriteKind.SHADOW] == 0

    def test_drain_engine_still_reports_base_lu(self, tiny_config):
        system = make_osiris_system(tiny_config)
        assert system.drain_engine.name == "base-lu"

    def test_only_valid_on_base_lu(self, tiny_config):
        with pytest.raises(ConfigError):
            SecureEpdSystem(tiny_config, scheme="horus-slm",
                            osiris_stop_loss=4)


class TestOsirisRecovery:
    def test_full_crash_recover_cycle(self, tiny_config):
        system = make_osiris_system(tiny_config)
        for i in range(24):
            system.controller.write(i * 4096, payload(i))
        system.crash(seed=2)
        recovery = system.recover()
        assert recovery is not None
        assert recovery.blocks_restored > 0
        for i in range(24):
            assert system.controller.read(i * 4096) == payload(i)

    def test_recovered_memory_audits_clean(self, tiny_config):
        system = make_osiris_system(tiny_config)
        for i in range(16):
            system.controller.write(i * 4096, payload(i))
        system.crash(seed=2)
        system.recover()
        assert audit_memory(system.controller).clean

    def test_trials_bounded_by_stop_loss(self, tiny_config):
        system = make_osiris_system(tiny_config, stop_loss=4)
        for i in range(8):
            system.controller.write(i * 4096, payload(i))
        system.crash(seed=2)
        recovery = OsirisRecovery(system.controller, stop_loss=4)
        report = recovery.recover()
        assert report.counters_recovered >= 8
        assert report.trials <= report.counters_recovered * 5

    def test_hot_line_staleness_is_recovered(self, tiny_config):
        """Many rewrites of one line leave the NVM counter maximally stale;
        the trial must land on the exact live value."""
        system = make_osiris_system(tiny_config, stop_loss=8)
        for i in range(30):
            system.controller.write(0, payload(i))
        system.crash(seed=2)
        system.recover()
        assert system.controller.read(0) == payload(29)

    def test_rebuild_produces_verifiable_tree(self, tiny_config):
        """After reconstruction, cold reads must verify through the rebuilt
        tree and the refreshed root register."""
        system = make_osiris_system(tiny_config)
        for i in range(12):
            system.controller.write(i * 4096, payload(i))
        system.crash(seed=2)
        system.recover()
        system.controller.drop_volatile_state()   # force cold verification
        for i in range(12):
            assert system.controller.read(i * 4096) == payload(i)

    def test_tampered_data_defeats_reconstruction(self, tiny_config):
        """No candidate verifies a tampered block: recovery must refuse
        rather than accept a forged counter."""
        system = make_osiris_system(tiny_config)
        system.controller.write(0, payload(1))
        system.crash(seed=2)
        Adversary(system.nvm).tamper(0)
        with pytest.raises(RecoveryError):
            system.recover()

    def test_survives_minor_counter_overflow(self, tiny_config):
        """The forced persist at page re-encryption keeps recovery sound
        across a minor-counter wrap."""
        system = make_osiris_system(tiny_config, stop_loss=8)
        controller = system.controller
        controller.write(64, payload(1))          # neighbour in the page
        for i in range(130):                      # wrap slot 0's minor
            controller.write(0, payload(i))
        system.crash(seed=2)
        system.recover()
        assert controller.read(0) == payload(129)
        assert controller.read(64) == payload(1)
