"""Closed-form drain cost models, pinned against the simulator."""

import pytest

from repro.common.config import SystemConfig
from repro.core.analytic import (
    horus_drain_cost,
    horus_drain_seconds,
    validate_baseline_report,
    validate_horus_report,
)
from repro.core.system import SecureEpdSystem


class TestClosedForm:
    def test_slm_formula(self):
        cost = horus_drain_cost(296000, double_level_mac=False)
        assert cost.data_writes == 296000
        assert cost.address_writes == 37000
        assert cost.mac_writes == 37000
        assert cost.total_writes == 370000            # exactly 1.25x
        assert cost.mac_computations == 296000
        assert cost.aes_operations == 296000

    def test_dlm_formula(self):
        cost = horus_drain_cost(296000, double_level_mac=True)
        assert cost.mac_writes == 4625
        assert cost.mac_computations == 296000 + 37000  # 1.125x

    def test_ceiling_behaviour(self):
        cost = horus_drain_cost(9, double_level_mac=True)
        assert cost.address_writes == 2
        assert cost.mac_writes == 1
        assert cost.mac_computations == 9 + 2

    def test_as_stats_roundtrip(self):
        cost = horus_drain_cost(100, double_level_mac=False)
        stats = cost.as_stats()
        assert stats.total_writes == cost.total_writes
        assert stats.total_macs == cost.mac_computations
        assert stats.total_aes == cost.aes_operations

    def test_paper_scale_drain_time(self):
        """Full-scale worst-case Horus-SLM drain ~ 0.21 s under Table I
        parameters (the simulated run measures 0.1998 s with an empty
        metadata cache; the closed form includes a full one)."""
        seconds = horus_drain_seconds(SystemConfig.paper(), False)
        assert seconds == pytest.approx(0.211, abs=0.005)


class TestSimulatorPinning:
    @pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
    def test_simulated_horus_matches_closed_form_exactly(self, tiny_config,
                                                         scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        validate_horus_report(report)   # raises on any divergence

    @pytest.mark.parametrize("scheme", ["base-lu", "base-eu"])
    def test_simulated_baselines_satisfy_invariants(self, tiny_config,
                                                    scheme):
        system = SecureEpdSystem(tiny_config, scheme=scheme)
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        validate_baseline_report(report)

    def test_validation_rejects_doctored_horus_report(self, tiny_config):
        system = SecureEpdSystem(tiny_config, scheme="horus-slm")
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        from repro.stats.events import WriteKind
        report.stats.record_write(WriteKind.CHV_DATA, 1)  # corrupt the count
        with pytest.raises(AssertionError):
            validate_horus_report(report)
