"""Physical address-space layout.

The protected data region occupies ``[0, memory_size)``.  Security metadata —
encryption counter blocks, data MAC blocks, and Bonsai Merkle Tree nodes —
plus the Horus Cache Hierarchy Vault (CHV) and the metadata-cache shadow
region live in a carved-out area laid out above the data region, mirroring how
real secure-memory controllers reserve part of the DIMM for metadata.

All mapping functions are pure arithmetic so tests can verify that regions
never overlap and that every metadata address is stable.
"""

from dataclasses import dataclass

from repro.common.address import require_block_aligned
from repro.common.constants import (
    CACHE_LINE_SIZE,
    COUNTER_BLOCK_COVERAGE,
    MACS_PER_BLOCK,
    MERKLE_TREE_ARITY,
)
from repro.common.config import SystemConfig
from repro.common.errors import AddressError, ConfigError


@dataclass(frozen=True)
class Region:
    """A contiguous, block-aligned physical region."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def block_at(self, index: int) -> int:
        """Address of the ``index``-th 64 B block in this region."""
        address = self.base + index * CACHE_LINE_SIZE
        if not self.contains(address):
            raise AddressError(
                f"block {index} outside region {self.name} "
                f"[{self.base:#x}, {self.end:#x})")
        return address


def tree_level_sizes(num_leaves: int, arity: int = MERKLE_TREE_ARITY) -> list[int]:
    """Node counts per tree level, bottom-up, ending at a single root.

    ``num_leaves`` are the blocks covered by the lowest node level (for the
    main BMT: counter blocks).  The returned list excludes the leaves
    themselves and includes the root.
    """
    if num_leaves <= 0:
        raise ConfigError(f"tree needs at least one leaf, got {num_leaves}")
    sizes = []
    level = num_leaves
    while level > 1:
        level = -(-level // arity)
        sizes.append(level)
    if not sizes:
        sizes.append(1)
    return sizes


class MemoryLayout:
    """Computes and owns the full physical layout for a configuration."""

    def __init__(self, config: SystemConfig):
        self._config = config
        data_size = config.memory.size
        arity = config.security.tree_arity

        self.num_counter_blocks = data_size // COUNTER_BLOCK_COVERAGE
        counter_size = self.num_counter_blocks * CACHE_LINE_SIZE
        mac_size = data_size // MACS_PER_BLOCK

        self.tree_levels = tree_level_sizes(self.num_counter_blocks, arity)
        tree_size = sum(self.tree_levels) * CACHE_LINE_SIZE

        # CHV holds every flushed line plus 1/8 address blocks and up to 1/8
        # MAC blocks, plus the protected metadata-cache dump (Section IV-D).
        # Capacity is rounded up to a whole DLM group (64 positions) so the
        # rotating-vault extension keeps coalescing groups aligned.
        flush_capacity = -(-(config.total_cache_lines
                             + _metadata_lines(config)) // 64) * 64
        chv_size = _round_lines(flush_capacity * (CACHE_LINE_SIZE + 8 + 8))

        shadow_size = _round_lines(int(config.metadata_cache_size * 1.125))

        cursor = data_size
        self.data = Region("data", 0, data_size)
        self.counters = Region("counters", cursor, counter_size)
        cursor += counter_size
        self.macs = Region("macs", cursor, mac_size)
        cursor += mac_size
        self.tree = Region("tree", cursor, tree_size)
        cursor += tree_size
        self.chv = Region("chv", cursor, chv_size)
        cursor += chv_size
        self.shadow = Region("shadow", cursor, shadow_size)
        cursor += shadow_size
        self.total_size = cursor

        self._tree_level_bases = []
        base = self.tree.base
        for count in self.tree_levels:
            self._tree_level_bases.append(base)
            base += count * CACHE_LINE_SIZE

        # Flat bounds for the hot mapping paths: the data <-> metadata
        # mappings run once per memory-side op at run time and once per
        # flushed line during drains, so they avoid the Region property
        # chases and re-derive the same arithmetic against plain ints.
        self._data_size = data_size
        self._counters_base = self.counters.base
        self._counters_end = self.counters.end
        self._macs_base = self.macs.base
        self._macs_end = self.macs.end

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def regions(self) -> tuple[Region, ...]:
        return (self.data, self.counters, self.macs, self.tree,
                self.chv, self.shadow)

    @property
    def num_tree_levels(self) -> int:
        """Node levels above the counter blocks, including the root level."""
        return len(self.tree_levels)

    # -- data <-> metadata mappings -------------------------------------------

    def require_data_address(self, address: int) -> int:
        if address % CACHE_LINE_SIZE or not 0 <= address < self._data_size:
            # Slow path purely for the precise error.
            require_block_aligned(address)
            raise AddressError(f"{address:#x} is not a data address")
        return address

    def counter_block_address(self, data_address: int) -> int:
        """Counter block protecting the 4 KiB page containing ``data_address``."""
        if data_address % CACHE_LINE_SIZE \
                or not 0 <= data_address < self._data_size:
            self.require_data_address(data_address)
        address = (self._counters_base
                   + (data_address // COUNTER_BLOCK_COVERAGE)
                   * CACHE_LINE_SIZE)
        if address >= self._counters_end:
            # A data tail not covered by a whole counter block: delegate for
            # the exact out-of-region error.
            return self.counters.block_at(
                data_address // COUNTER_BLOCK_COVERAGE)
        return address

    def counter_slot(self, data_address: int) -> int:
        """Minor-counter index of ``data_address`` within its counter block."""
        self.require_data_address(data_address)
        return (data_address % COUNTER_BLOCK_COVERAGE) // CACHE_LINE_SIZE

    def mac_block_address(self, data_address: int) -> int:
        """MAC block holding the 8 B MAC of the data block at ``data_address``."""
        if data_address % CACHE_LINE_SIZE \
                or not 0 <= data_address < self._data_size:
            self.require_data_address(data_address)
        address = (self._macs_base
                   + (data_address // (CACHE_LINE_SIZE * MACS_PER_BLOCK))
                   * CACHE_LINE_SIZE)
        if address >= self._macs_end:
            return self.macs.block_at(
                data_address // (CACHE_LINE_SIZE * MACS_PER_BLOCK))
        return address

    def mac_slot(self, data_address: int) -> int:
        """Slot (0..7) of this data block's MAC within its MAC block."""
        self.require_data_address(data_address)
        return (data_address // CACHE_LINE_SIZE) % MACS_PER_BLOCK

    # -- tree node addressing ---------------------------------------------------

    def counter_block_index(self, counter_address: int) -> int:
        if not self.counters.contains(counter_address):
            raise AddressError(f"{counter_address:#x} is not a counter address")
        return (counter_address - self.counters.base) // CACHE_LINE_SIZE

    def tree_node_address(self, level: int, index: int) -> int:
        """Address of tree node ``index`` at node ``level`` (1 = just above
        the counter blocks, ``num_tree_levels`` = root level)."""
        if not 1 <= level <= self.num_tree_levels:
            raise AddressError(
                f"tree level {level} outside 1..{self.num_tree_levels}")
        count = self.tree_levels[level - 1]
        if not 0 <= index < count:
            raise AddressError(
                f"tree node {index} outside level {level} (has {count})")
        return self._tree_level_bases[level - 1] + index * CACHE_LINE_SIZE

    def parent_of_counter_block(self, counter_address: int) -> tuple[int, int, int]:
        """(level, index, slot) of the level-1 tree slot covering a counter block."""
        arity = self._config.security.tree_arity
        cb = self.counter_block_index(counter_address)
        return 1, cb // arity, cb % arity

    def parent_of_tree_node(self, level: int, index: int) -> tuple[int, int, int]:
        """(level, index, slot) of the parent slot of tree node (level, index)."""
        arity = self._config.security.tree_arity
        if level >= self.num_tree_levels:
            raise AddressError("the root has no parent")
        return level + 1, index // arity, index % arity

    def tree_node_coords(self, address: int) -> tuple[int, int]:
        """Inverse of :meth:`tree_node_address`: (level, index) of a node."""
        if not self.tree.contains(address):
            raise AddressError(f"{address:#x} is not a tree-node address")
        for level in range(self.num_tree_levels, 0, -1):
            base = self._tree_level_bases[level - 1]
            if address >= base:
                return level, (address - base) // CACHE_LINE_SIZE
        raise AddressError(f"{address:#x} below the first tree level")

    def classify(self, address: int) -> str:
        """Region name containing ``address`` (for diagnostics and tests)."""
        for region in self.regions:
            if region.contains(address):
                return region.name
        raise AddressError(f"{address:#x} outside all regions")


def _round_lines(size: int) -> int:
    return -(-size // CACHE_LINE_SIZE) * CACHE_LINE_SIZE


def _metadata_lines(config: SystemConfig) -> int:
    return config.metadata_cache_size // CACHE_LINE_SIZE
