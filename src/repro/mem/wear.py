"""NVM write-endurance (wear) accounting.

PCM cells endure a bounded number of writes; the paper notes that security
metadata updates "can lead to significant increase in the number of memory
writes (and hence premature wear-out)" (Section II-D).  The tracker records
per-block write counts so experiments can compare how the drain schemes
distribute wear: baselines hammer the counter/tree/MAC regions, Horus
rewrites the CHV every episode.
"""

from collections import Counter
from dataclasses import dataclass

from repro.mem.regions import MemoryLayout


@dataclass(frozen=True)
class RegionWear:
    """Wear summary for one region."""

    region: str
    blocks_written: int
    total_writes: int
    max_writes_per_block: int

    @property
    def mean_writes_per_block(self) -> float:
        if self.blocks_written == 0:
            return 0.0
        return self.total_writes / self.blocks_written


class WearTracker:
    """Per-block write counters with region-level reporting."""

    def __init__(self, layout: MemoryLayout):
        self._layout = layout
        self._writes: Counter = Counter()

    def record_write(self, address: int) -> None:
        self._writes[address] += 1

    @property
    def total_writes(self) -> int:
        return sum(self._writes.values())

    def writes_at(self, address: int) -> int:
        return self._writes[address]

    def hottest_block(self) -> tuple[int, int]:
        """(address, writes) of the most-worn block."""
        if not self._writes:
            return (0, 0)
        address, count = max(self._writes.items(), key=lambda kv: kv[1])
        return address, count

    def region_wear(self) -> list[RegionWear]:
        """Wear summary per layout region, ordered as the layout is."""
        per_region: dict[str, list[int]] = {
            region.name: [] for region in self._layout.regions}
        for address, count in self._writes.items():
            per_region[self._layout.classify(address)].append(count)
        return [
            RegionWear(
                region=name,
                blocks_written=len(counts),
                total_writes=sum(counts),
                max_writes_per_block=max(counts, default=0),
            )
            for name, counts in per_region.items()
        ]

    def wear_of(self, region_name: str) -> RegionWear:
        for wear in self.region_wear():
            if wear.region == region_name:
                return wear
        raise KeyError(region_name)

    def reset(self) -> None:
        self._writes.clear()
