"""Banked-memory queueing model.

The paper's drain-time results (and our additive model) assume requests
serialize at the memory controller — the conservative bound a hold-up budget
should be sized for.  Real NVM DIMMs expose channel/bank parallelism; this
model replays a captured request trace against a configurable bank geometry
to ask: *how much of each scheme's drain time does parallel memory recover?*

Model: requests issue in trace order, one per command-bus slot; a request
occupies its bank for the device read/write latency; the episode ends when
the last bank drains (makespan).  Dependencies between requests (e.g. a
verification read feeding a tree update) are not modelled, so the result is
an optimistic bound — the additive model is the pessimistic one; reality
lives between them, and both bounds preserve the scheme ordering.
"""

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BankGeometry:
    """Channel/bank organization of the NVM subsystem."""

    channels: int = 1
    banks_per_channel: int = 8
    command_slot_ns: float = 2.5
    """Minimum spacing between request issues (command-bus bandwidth)."""

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("bank geometry must be positive")
        if self.command_slot_ns < 0:
            raise ConfigError("command slot cannot be negative")

    @property
    def total_banks(self) -> int:
        return self.channels * self.banks_per_channel

    def bank_of(self, address: int) -> int:
        """Block-interleaved mapping: consecutive blocks hit distinct banks."""
        return (address // CACHE_LINE_SIZE) % self.total_banks


@dataclass(frozen=True)
class MakespanResult:
    """Outcome of replaying one trace against one geometry."""

    requests: int
    makespan_ns: float
    busiest_bank_requests: int

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_ns * 1e-9


def replay_makespan(trace: list[tuple[int, bool]], config: SystemConfig,
                    geometry: BankGeometry) -> MakespanResult:
    """Replay ``trace`` (from :attr:`NvmDevice.trace`) against ``geometry``."""
    read_ns = config.memory.read_latency_ns
    write_ns = config.memory.write_latency_ns
    bank_free = [0.0] * geometry.total_banks
    bank_load = [0] * geometry.total_banks
    issue_time = 0.0
    makespan = 0.0
    for address, is_write in trace:
        bank = geometry.bank_of(address)
        start = max(issue_time, bank_free[bank])
        done = start + (write_ns if is_write else read_ns)
        bank_free[bank] = done
        bank_load[bank] += 1
        makespan = max(makespan, done)
        issue_time += geometry.command_slot_ns
    return MakespanResult(
        requests=len(trace),
        makespan_ns=makespan,
        busiest_bank_requests=max(bank_load, default=0),
    )


def parallel_speedup(trace: list[tuple[int, bool]], config: SystemConfig,
                     geometry: BankGeometry) -> float:
    """Serialized time / banked makespan for the same trace."""
    if not trace:
        return 1.0
    serialized = sum(
        config.memory.write_latency_ns if is_write
        else config.memory.read_latency_ns
        for _, is_write in trace)
    result = replay_makespan(trace, config, geometry)
    return serialized / result.makespan_ns
