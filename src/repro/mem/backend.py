"""Sparse byte-addressable backing store.

The paper simulates a 32 GB PCM DIMM; only a few hundred thousand blocks are
ever touched during a drain episode, so the reproduction stores content as a
dictionary of 64 B blocks keyed by block index.  Untouched blocks read as
zeros, exactly like freshly-initialized memory.
"""

from repro.common.address import block_index, require_block_aligned
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import AddressError

ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


class SparseMemory:
    """A sparse array of 64 B blocks over a fixed-size physical address space."""

    def __init__(self, size: int):
        if size <= 0 or size % CACHE_LINE_SIZE:
            raise AddressError(
                f"backing store size {size} must be a positive multiple "
                f"of {CACHE_LINE_SIZE}")
        self._size = size
        self._blocks: dict[int, bytes] = {}
        self._attacked: set[int] = set()

    @property
    def size(self) -> int:
        return self._size

    @property
    def touched_blocks(self) -> int:
        """Number of blocks that have ever been written (for tests/reports)."""
        return len(self._blocks)

    def _check(self, address: int) -> int:
        require_block_aligned(address)
        if address + CACHE_LINE_SIZE > self._size:
            raise AddressError(
                f"address {address:#x} beyond end of memory ({self._size:#x})")
        return block_index(address)

    def read_block(self, address: int) -> bytes:
        """Return the 64 B block at ``address`` (zeros if never written)."""
        # Inline fast path of _check: this runs once per simulated block I/O.
        if address % CACHE_LINE_SIZE \
                or not 0 <= address <= self._size - CACHE_LINE_SIZE:
            self._check(address)
        return self._blocks.get(address // CACHE_LINE_SIZE, ZERO_BLOCK)

    def write_block(self, address: int, data: bytes) -> None:
        """Store a full 64 B block at ``address``."""
        if len(data) != CACHE_LINE_SIZE:
            raise AddressError(
                f"block writes must be exactly {CACHE_LINE_SIZE} B, "
                f"got {len(data)}")
        if address % CACHE_LINE_SIZE \
                or not 0 <= address <= self._size - CACHE_LINE_SIZE:
            self._check(address)
        self._blocks[address // CACHE_LINE_SIZE] = bytes(data)

    def write_blocks(self, items) -> None:
        """Store a batch of ``(address, data)`` 64 B blocks.

        Semantically identical to :meth:`write_block` per item (same
        validation, same resulting contents); validation runs for the whole
        batch before the first store so a bad item cannot leave a partial
        batch behind — the device-level fault model, not this method,
        decides what a torn batch looks like.
        """
        items = list(items)
        size = self._size
        for address, data in items:
            if address % CACHE_LINE_SIZE:
                raise AddressError(f"address {address:#x} is not "
                                   f"{CACHE_LINE_SIZE}-byte aligned")
            if address + CACHE_LINE_SIZE > size:
                raise AddressError(
                    f"address {address:#x} beyond end of memory "
                    f"({size:#x})")
            if len(data) != CACHE_LINE_SIZE:
                raise AddressError(
                    f"block writes must be exactly {CACHE_LINE_SIZE} B, "
                    f"got {len(data)}")
        self._blocks.update(
            (address // CACHE_LINE_SIZE, bytes(data))
            for address, data in items)

    def write_arena(self, addresses, buffer) -> None:
        """Store blocks from one contiguous buffer: ``buffer[64*i:64*i+64]``
        lands at ``addresses[i]``.

        Semantically identical to :meth:`write_blocks` over the zipped
        pairs (same validation-before-store contract, same last-write-wins
        on duplicate addresses) but the per-block payload objects are
        never materialized — the arena is sliced exactly once here, at
        the storage boundary.
        """
        count = len(addresses)
        if len(buffer) != count * CACHE_LINE_SIZE:
            raise AddressError(
                f"arena writes must be exactly {CACHE_LINE_SIZE} B per "
                f"address, got {len(buffer)} B for {count} addresses")
        size = self._size
        for address in addresses:
            if address % CACHE_LINE_SIZE:
                raise AddressError(f"address {address:#x} is not "
                                   f"{CACHE_LINE_SIZE}-byte aligned")
            if address + CACHE_LINE_SIZE > size:
                raise AddressError(
                    f"address {address:#x} beyond end of memory "
                    f"({size:#x})")
        if not isinstance(buffer, bytes):
            buffer = bytes(buffer)
        self._blocks.update(
            (address // CACHE_LINE_SIZE, buffer[offset:offset + CACHE_LINE_SIZE])
            for address, offset in zip(
                addresses, range(0, count * CACHE_LINE_SIZE,
                                 CACHE_LINE_SIZE)))

    def read_arena(self, addresses) -> bytearray:
        """Read a batch of blocks into one contiguous buffer.

        Byte ``64*i .. 64*i+63`` is :meth:`read_block` of ``addresses[i]``
        (zeros for never-written blocks), without N intermediate ``bytes``
        objects.
        """
        blocks = self._blocks
        limit = self._size - CACHE_LINE_SIZE
        out = bytearray(len(addresses) * CACHE_LINE_SIZE)
        offset = 0
        for address in addresses:
            if address % CACHE_LINE_SIZE or not 0 <= address <= limit:
                self._check(address)
            out[offset:offset + CACHE_LINE_SIZE] = blocks.get(
                address // CACHE_LINE_SIZE, ZERO_BLOCK)
            offset += CACHE_LINE_SIZE
        return out

    def read_blocks(self, addresses) -> list[bytes]:
        """Read a batch of 64 B blocks (:meth:`read_block` per element)."""
        blocks = self._blocks
        limit = self._size - CACHE_LINE_SIZE
        out = []
        for address in addresses:
            if address % CACHE_LINE_SIZE or not 0 <= address <= limit:
                self._check(address)
            out.append(blocks.get(address // CACHE_LINE_SIZE, ZERO_BLOCK))
        return out

    def is_written(self, address: int) -> bool:
        """True when ``address`` has been explicitly written at least once."""
        if address % CACHE_LINE_SIZE \
                or not 0 <= address <= self._size - CACHE_LINE_SIZE:
            self._check(address)
        return address // CACHE_LINE_SIZE in self._blocks

    def corrupt_block(self, address: int, data: bytes) -> None:
        """Adversary hook: overwrite a block without any simulator accounting.

        The block is remembered in :attr:`attacked_blocks` — not simulator
        accounting (the controller never saw the access, and no stats/wear/
        trace entry is made) but the *oracle's* ledger, so outcome
        classification can tell an attacked block apart from a write a fault
        plan lost in flight (:attr:`~repro.mem.nvm.NvmDevice.lost_writes`).
        """
        self.write_block(address, data)
        self._attacked.add(address)

    @property
    def attacked_blocks(self) -> frozenset:
        """Addresses the adversary ever rewrote via :meth:`corrupt_block`."""
        return frozenset(self._attacked)

    def written_addresses(self):
        """All block addresses that were ever explicitly written, ascending."""
        for index in sorted(self._blocks):
            yield index * CACHE_LINE_SIZE

    def image(self) -> dict[int, bytes]:
        """Snapshot of every written block, as ``{address: content}``.

        Two backends hold identical persistent state iff their images are
        equal — the differential oracle's definition of \"same NVM\"."""
        return {index * CACHE_LINE_SIZE: data
                for index, data in self._blocks.items()}

    def clear(self) -> None:
        """Drop all content (fresh memory)."""
        self._blocks.clear()
        self._attacked.clear()
