"""Memory-controller scheduling over a banked device.

:mod:`repro.mem.banking` replays traces in order; real controllers hold a
window of pending requests and reorder them (FR-FCFS: first-ready,
first-come-first-served) to hide bank conflicts.  This module simulates that
window so experiments can ask how much scheduling — as opposed to raw bank
count — recovers for each drain scheme.

The model: requests enter a fixed-depth window in trace order; each issue
occupies the command bus for one slot and the target bank for the device
latency; FCFS always issues the oldest request, FR-FCFS the request with
the earliest possible start time (ties to the oldest, so no starvation).
"""

from collections import deque
from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.banking import BankGeometry

DEFAULT_WINDOW = 32


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one trace."""

    policy: str
    requests: int
    makespan_ns: float
    reordered: int
    """Issues that were not the oldest pending request (FR-FCFS work)."""

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_ns * 1e-9


def schedule_trace(trace: list[tuple[int, bool]], config: SystemConfig,
                   geometry: BankGeometry, policy: str = "frfcfs",
                   window: int = DEFAULT_WINDOW) -> ScheduleResult:
    """Simulate the controller over ``trace``; returns the makespan."""
    if policy not in ("fcfs", "frfcfs"):
        raise ConfigError(f"unknown policy {policy!r}")
    if window <= 0:
        raise ConfigError("window must be positive")

    read_ns = config.memory.read_latency_ns
    write_ns = config.memory.write_latency_ns
    bank_free = [0.0] * geometry.total_banks
    pending: deque[tuple[int, bool]] = deque()
    feed = iter(trace)
    bus_free = 0.0
    makespan = 0.0
    reordered = 0

    def refill() -> None:
        while len(pending) < window:
            try:
                pending.append(next(feed))
            except StopIteration:
                return

    refill()
    while pending:
        if policy == "fcfs":
            choice = 0
        else:
            choice = min(
                range(len(pending)),
                key=lambda i: (max(bus_free,
                                   bank_free[geometry.bank_of(pending[i][0])]),
                               i))
        if choice:
            reordered += 1
        address, is_write = pending[choice]
        del pending[choice]
        bank = geometry.bank_of(address)
        start = max(bus_free, bank_free[bank])
        done = start + (write_ns if is_write else read_ns)
        bank_free[bank] = done
        bus_free = start + geometry.command_slot_ns
        makespan = max(makespan, done)
        refill()

    return ScheduleResult(
        policy=policy,
        requests=len(trace),
        makespan_ns=makespan,
        reordered=reordered,
    )


def scheduling_gain(trace: list[tuple[int, bool]], config: SystemConfig,
                    geometry: BankGeometry,
                    window: int = DEFAULT_WINDOW) -> float:
    """FCFS makespan / FR-FCFS makespan for the same trace (>= 1)."""
    if not trace:
        return 1.0
    fcfs = schedule_trace(trace, config, geometry, "fcfs", window)
    frfcfs = schedule_trace(trace, config, geometry, "frfcfs", window)
    return fcfs.makespan_ns / frfcfs.makespan_ns
