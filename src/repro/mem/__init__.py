"""Memory substrate: sparse backing store, address layout, timed NVM device."""

from repro.mem.backend import SparseMemory
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout, Region, tree_level_sizes
from repro.mem.wear import RegionWear, WearTracker

__all__ = [
    "SparseMemory",
    "NvmDevice",
    "MemoryLayout",
    "Region",
    "tree_level_sizes",
    "RegionWear",
    "WearTracker",
]
