"""Timed, accounted NVM device.

Every read and write goes through :class:`NvmDevice`, which records the
request in a :class:`~repro.stats.counters.SimStats` under the caller-supplied
kind.  The device itself has no notion of security — it is the untrusted side
of the paper's threat model, which is why the adversary in
:mod:`repro.attacks` manipulates the underlying backend directly.
"""

from repro.common.errors import AddressError
from repro.mem.backend import SparseMemory
from repro.stats.counters import SimStats
from repro.stats.events import ReadKind, WriteKind


class NvmDevice:
    """A PCM DIMM: sparse backing store + request accounting."""

    def __init__(self, size: int, stats: SimStats | None = None):
        self._backend = SparseMemory(size)
        self.stats = stats if stats is not None else SimStats()
        self.wear = None
        """Optional :class:`~repro.mem.wear.WearTracker`; when attached,
        every accounted write also bumps the block's wear counter."""
        self.trace: list[tuple[int, bool]] | None = None
        """Optional request trace of (address, is_write) pairs; enable by
        assigning a list.  Consumed by the banked-memory queueing model."""
        self.write_budget: int | None = None
        """Fault injection: when set, only this many further writes reach
        the medium — later writes are silently lost, modelling a hold-up
        source that dies mid-drain.  Accounting still records the attempt
        (the controller issued it; the cells never saw it)."""

    @property
    def size(self) -> int:
        return self._backend.size

    @property
    def backend(self) -> SparseMemory:
        """The raw store — used by recovery checks and by the adversary."""
        return self._backend

    def read(self, address: int, kind: ReadKind) -> bytes:
        """Read one 64 B block, accounted under ``kind``."""
        if not isinstance(kind, ReadKind):
            raise AddressError(f"read kind must be a ReadKind, got {kind!r}")
        data = self._backend.read_block(address)
        self.stats.record_read(kind)
        if self.trace is not None:
            self.trace.append((address, False))
        return data

    def write(self, address: int, data: bytes, kind: WriteKind) -> None:
        """Write one 64 B block, accounted under ``kind``."""
        if not isinstance(kind, WriteKind):
            raise AddressError(f"write kind must be a WriteKind, got {kind!r}")
        if self.write_budget is not None:
            if self.write_budget <= 0:
                self.stats.record_write(kind)
                return  # power died: the write is lost in flight
            self.write_budget -= 1
        self._backend.write_block(address, data)
        self.stats.record_write(kind)
        if self.wear is not None:
            self.wear.record_write(address)
        if self.trace is not None:
            self.trace.append((address, True))

    def peek(self, address: int) -> bytes:
        """Read without accounting (simulator-internal inspection only)."""
        return self._backend.read_block(address)

    def poke(self, address: int, data: bytes) -> None:
        """Write without accounting (initialization / adversary)."""
        self._backend.write_block(address, data)
