"""Timed, accounted NVM device.

Every read and write goes through :class:`NvmDevice`, which records the
request in a :class:`~repro.stats.counters.SimStats` under the caller-supplied
kind.  The device itself has no notion of security — it is the untrusted side
of the paper's threat model, which is why the adversary in
:mod:`repro.attacks` manipulates the underlying backend directly, and why
fault injection (:mod:`repro.faults`) sits between the accounting and the
medium: the controller's view of a write and the cells' view can disagree,
and that disagreement is exactly what recovery must survive.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import AddressError
from repro.faults.plan import FaultPlan, PowerCut
from repro.mem.backend import SparseMemory
from repro.stats.counters import SimStats
from repro.stats.events import ReadKind, WriteKind


class NvmDevice:
    """A PCM DIMM: sparse backing store + request accounting."""

    def __init__(self, size: int, stats: SimStats | None = None):
        self._backend = SparseMemory(size)
        self.stats = stats if stats is not None else SimStats()
        self.wear = None
        """Optional :class:`~repro.mem.wear.WearTracker`; when attached,
        every accounted write also bumps the block's wear counter."""
        self.trace: list[tuple[int, bool]] | None = None
        """Optional request trace of (address, is_write) pairs; enable by
        assigning a list.  Consumed by the banked-memory queueing model.
        The trace records *requests*, so writes a fault plan loses still
        appear here — their indices are in :attr:`lost_writes`."""
        self.fault_plan: FaultPlan | None = None
        """Optional :class:`~repro.faults.plan.FaultPlan` filtering what the
        medium persists.  Accounting (stats, wear, trace) always records the
        attempt — the controller issued it; whether the cells saw it is the
        fault plan's business."""
        self.lost_writes: list[tuple[int, WriteKind]] = []
        """(address, kind) of every write a fault plan lost in flight."""

    @property
    def attacked_blocks(self) -> frozenset:
        """Addresses the adversary rewrote behind the controller's back
        (:meth:`~repro.mem.backend.SparseMemory.corrupt_block` ledger).
        Disjoint from :attr:`lost_writes` by construction: an attack is a
        write the controller never issued, a lost write is one it did."""
        return self._backend.attacked_blocks

    @property
    def size(self) -> int:
        return self._backend.size

    @property
    def backend(self) -> SparseMemory:
        """The raw store — used by recovery checks and by the adversary."""
        return self._backend

    @property
    def write_budget(self) -> int | None:
        """Fault injection shorthand: when set, only this many further
        writes reach the medium — later writes are lost in flight,
        modelling a hold-up source that dies mid-drain.  Backed by a
        :class:`~repro.faults.plan.PowerCut` fault plan; assign a plan to
        :attr:`fault_plan` directly for richer fault classes."""
        if self.fault_plan is None:
            return None
        return self.fault_plan.remaining_budget()

    @write_budget.setter
    def write_budget(self, budget: int | None) -> None:
        if budget is None:
            self.fault_plan = None
        else:
            self.fault_plan = FaultPlan([PowerCut(after_writes=budget)])

    def restore_power(self) -> FaultPlan | None:
        """Detach the fault plan (power restored / fault window over),
        giving unfired off-power faults their shot at the medium first.
        Returns the detached plan so callers can inspect its events."""
        plan, self.fault_plan = self.fault_plan, None
        if plan is not None:
            plan.finish(self._backend)
        return plan

    def read(self, address: int, kind: ReadKind) -> bytes:
        """Read one 64 B block, accounted under ``kind``."""
        if not isinstance(kind, ReadKind):
            raise AddressError(f"read kind must be a ReadKind, got {kind!r}")
        data = self._backend.read_block(address)
        self.stats.record_read(kind)
        if self.trace is not None:
            self.trace.append((address, False))
        return data

    def read_batch(self, addresses, kind: ReadKind) -> list[bytes]:
        """Read a batch of 64 B blocks, accounted under ``kind``.

        Identical to :meth:`read` per element; when a trace is attached the
        batch falls back to scalar issue so the request log keeps its
        per-request granularity, otherwise the stats update is folded into
        one counter bump.
        """
        if not isinstance(kind, ReadKind):
            raise AddressError(f"read kind must be a ReadKind, got {kind!r}")
        if self.trace is not None:
            return [self.read(address, kind) for address in addresses]
        data = self._backend.read_blocks(addresses)
        self.stats.record_read(kind, len(data))
        return data

    def write(self, address: int, data: bytes, kind: WriteKind) -> None:
        """Write one 64 B block, accounted under ``kind``.

        The accounting channels (stats, wear, trace) record every attempt
        identically whether or not a fault plan loses or corrupts it: the
        controller issued the request and the DIMM drew the energy, so the
        scheduler/banking views must agree with the counters.  Lost writes
        are additionally flagged in :attr:`lost_writes`.
        """
        if not isinstance(kind, WriteKind):
            raise AddressError(f"write kind must be a WriteKind, got {kind!r}")
        persisted: bytes | None = data
        if self.fault_plan is not None:
            old = self._backend.read_block(address)
            if not isinstance(data, bytes):
                data = bytes(data)  # fault events splice bytes, not views
            persisted = self.fault_plan.filter_write(address, data, old)
        if persisted is not None:
            self._backend.write_block(address, persisted)
        else:
            self.lost_writes.append((address, kind))
        self.stats.record_write(kind)
        if self.wear is not None:
            self.wear.record_write(address)
        if self.trace is not None:
            self.trace.append((address, True))

    def write_batch(self, items, kind_counts=None) -> None:
        """Write a batch of ``(address, data, kind)`` blocks in list order.

        Accounting is identical to issuing each item through :meth:`write`:
        stats count every attempt by kind, wear and trace see every request
        in order, and an attached fault plan filters each write individually
        (so a power cut mid-batch loses exactly the tail it would have lost
        under scalar issue).  Only the bookkeeping is grouped — when no
        fault plan, wear tracker, or trace is attached, the batch takes a
        fast path that bulk-loads the backend and folds the stats updates
        into one counter update per kind.

        ``kind_counts`` (a ``{WriteKind: count}`` mapping) lets a caller
        that already knows its batch composition skip the per-item counting
        pass; it must sum to ``len(items)`` with each kind's true count.
        """
        if (self.fault_plan is not None or self.wear is not None
                or self.trace is not None):
            for address, data, kind in items:
                self.write(address, data, kind)
            return
        if kind_counts is None:
            kind_counts = {}
            for _, _, kind in items:
                kind_counts[kind] = kind_counts.get(kind, 0) + 1
        for kind in kind_counts:
            if not isinstance(kind, WriteKind):
                raise AddressError(
                    f"write kind must be a WriteKind, got {kind!r}")
        self._backend.write_blocks(
            [(address, data) for address, data, _ in items])
        record = self.stats.record_write
        for kind, count in kind_counts.items():
            record(kind, count)

    @property
    def grouped_io(self) -> bool:
        """Whether arena-grouped issue is observationally equivalent.

        A fault plan, wear tracker, or request trace needs to see every
        write individually and in program order; when any is attached the
        callers must fall back to the per-request (or interleaved
        ``write_batch``) form so those channels record exactly what scalar
        issue would have recorded.
        """
        return (self.fault_plan is None and self.wear is None
                and self.trace is None)

    def write_arena(self, addresses, buffer, kinds,
                    kind_counts=None) -> None:
        """Write blocks from one contiguous buffer (``buffer[64*i:]`` to
        ``addresses[i]``), accounted like :meth:`write` per element.

        ``kinds`` is either one :class:`WriteKind` for the whole batch or a
        per-element sequence; ``kind_counts`` optionally skips the counting
        pass exactly as in :meth:`write_batch`.  When :attr:`grouped_io` is
        false the batch degrades to scalar issue in list order, so fault
        plans, wear, and traces observe the same per-request stream the
        scalar path would produce.  Callers that need a specific
        *interleaving* with other writes under a fault plan must check
        :attr:`grouped_io` themselves and build that interleaved stream.
        """
        count = len(addresses)
        single = isinstance(kinds, WriteKind)
        if not self.grouped_io:
            view = memoryview(buffer)
            for index, address in enumerate(addresses):
                offset = index * CACHE_LINE_SIZE
                self.write(address,
                           bytes(view[offset:offset + CACHE_LINE_SIZE]),
                           kinds if single else kinds[index])
            return
        if kind_counts is None:
            if single:
                kind_counts = {kinds: count}
            else:
                kind_counts = {}
                for kind in kinds:
                    kind_counts[kind] = kind_counts.get(kind, 0) + 1
        for kind in kind_counts:
            if not isinstance(kind, WriteKind):
                raise AddressError(
                    f"write kind must be a WriteKind, got {kind!r}")
        self._backend.write_arena(addresses, buffer)
        record = self.stats.record_write
        for kind, kind_count in kind_counts.items():
            record(kind, kind_count)

    def read_arena(self, addresses, kind: ReadKind) -> bytearray:
        """Read a batch into one contiguous buffer, accounted under ``kind``.

        Byte ``64*i .. 64*i+63`` is :meth:`read` of ``addresses[i]``; with
        a trace attached the batch falls back to scalar issue (the request
        log keeps per-request granularity), otherwise stats fold into one
        counter update.
        """
        if not isinstance(kind, ReadKind):
            raise AddressError(f"read kind must be a ReadKind, got {kind!r}")
        if self.trace is not None:
            out = bytearray()
            for address in addresses:
                out += self.read(address, kind)
            return out
        data = self._backend.read_arena(addresses)
        self.stats.record_read(kind, len(addresses))
        return data

    def account_reads(self, kind: ReadKind, count: int) -> None:
        """Account ``count`` reads served from a controller-held copy.

        A batched controller may satisfy a read from data it wrote earlier
        in the same grouped batch (the backend already persisted identical
        bytes); the device still counts the request.  Refused when a trace
        is attached — those reads must be issued individually so the
        request log stays complete.
        """
        if not isinstance(kind, ReadKind):
            raise AddressError(f"read kind must be a ReadKind, got {kind!r}")
        if self.trace is not None:
            raise AddressError(
                "account_reads cannot stand in for traced requests")
        self.stats.record_read(kind, count)

    def peek(self, address: int) -> bytes:
        """Read without accounting (simulator-internal inspection only)."""
        return self._backend.read_block(address)

    def poke(self, address: int, data: bytes) -> None:
        """Write without accounting (initialization / adversary)."""
        self._backend.write_block(address, data)
