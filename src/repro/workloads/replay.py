"""Epoch-batched trace replay.

:func:`replay` is a drop-in for :func:`repro.workloads.generators.replay`
(same ``expected`` return value, same observable system state afterwards)
that slices the trace into epochs and executes each epoch in three fused
steps instead of two Python calls per op:

1. :meth:`~repro.cache.hierarchy.CacheHierarchy.replay_epoch` runs the whole
   epoch through the caches in one pass, deferring the memory side into an
   op-ordered ``mem_ops`` stream with :class:`~repro.cache.hierarchy.PendingFill`
   markers standing in for fetched payloads;
2. the memory side executes the stream batched —
   :meth:`~repro.secure.controller.SecureMemoryController.run_ops_batch`
   amortizes pad generation and MAC computation across the epoch (non-secure
   systems group the stream into :class:`~repro.mem.nvm.NvmDevice` batch
   calls);
3. :meth:`~repro.cache.hierarchy.CacheHierarchy.resolve_pending` swaps each
   marker for its fetched payload.

Because the memory-side stream is issued in exactly the order the scalar
replay would issue it, every observable — NVM image, SimStats counters,
cache hit/miss/LRU state, metadata caches, lost writes — is byte-identical
to scalar replay; ``REPRO_ORACLE`` episodes run both and compare
(:func:`repro.core.oracle.run_replay_differential`).

Accounting side channels the grouped paths cannot reproduce exactly
(request traces, fault plans, wear tracking) force the scalar path, as do
non-inclusive hierarchies and systems that lack the batch hooks entirely
(:class:`~repro.stats.runtime.RuntimePerfModel` accepts bare test doubles).
"""

from typing import Any, cast

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.stats.events import ReadKind, WriteKind
from repro.workloads.generators import replay as scalar_replay
from repro.workloads.trace import MemoryOp, OpKind

DEFAULT_EPOCH_OPS = 4096
"""Trace ops per fused epoch: big enough to amortize the batched crypto
kernels, small enough that an epoch's deferred fills stay cache-resident."""

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


def _eligible(system: Any, batched: bool | None) -> bool:
    """Whether ``system`` can take the epoch-batched path."""
    if batched is None:
        batched = getattr(system, "batched", False)
    if not batched:
        return False
    hierarchy = getattr(system, "hierarchy", None)
    if hierarchy is None or not getattr(hierarchy, "inclusive", False) \
            or not hasattr(hierarchy, "replay_epoch"):
        return False
    if getattr(system, "layout", None) is None:
        return False
    nvm = getattr(system, "nvm", None)
    if nvm is None or nvm.trace is not None or nvm.fault_plan is not None \
            or nvm.wear is not None:
        return False
    return True


def _run_plain(nvm: Any, mem_ops: "list[tuple[str, int, bytes | None]]") \
        -> "list[bytes | None]":
    """Non-secure memory side: the grouped-NVM equivalent of
    ``SecureEpdSystem._plain_fetch`` / ``_plain_writeback``."""
    results: list[bytes | None] = [None] * len(mem_ops)
    pos = 0
    total = len(mem_ops)
    while pos < total:
        kind = mem_ops[pos][0]
        stop = pos
        while stop < total and mem_ops[stop][0] == kind:
            stop += 1
        if kind == "r":
            addresses = [mem_ops[i][1] for i in range(pos, stop)]
            for i, block in zip(range(pos, stop),
                                nvm.read_batch(addresses, ReadKind.DATA)):
                results[i] = block
        else:
            # Eligibility guarantees grouped_io (no trace/fault/wear), so
            # the run lands as one arena write: same image, same folded
            # stats, no per-op tuple stream.
            addresses = [mem_ops[i][1] for i in range(pos, stop)]
            buffer = b"".join(
                mem_ops[i][2] if mem_ops[i][2] is not None else _ZERO_BLOCK
                for i in range(pos, stop))
            nvm.write_arena(addresses, buffer, WriteKind.DATA)
        pos = stop
    return results


def replay(system: Any, trace: "list[MemoryOp]", *,
           epoch_ops: int = DEFAULT_EPOCH_OPS,
           batched: bool | None = None) -> dict[int, bytes]:
    """Run a trace against a system, epoch-batched when possible.

    Returns the expected final content per written address, exactly as
    :func:`repro.workloads.generators.replay` does.  ``batched`` defaults to
    the system's own ``batched`` setting (the differential oracle passes an
    explicit value per side); ineligible systems fall back to the scalar
    loop.  Each unique address is validated once — validation carries no
    accounting, so the per-op re-validation of the scalar path is not an
    observable.
    """
    if epoch_ops <= 0:
        raise ConfigError("epoch_ops must be positive")
    if not _eligible(system, batched):
        return scalar_replay(system, trace)

    hierarchy = system.hierarchy
    controller = getattr(system, "controller", None)
    nvm = system.nvm
    require = system.layout.require_data_address
    write_kind = OpKind.WRITE
    for address in {op.address for op in trace}:
        require(address)
    ops_buf: list[tuple[str, int, bytes | None]] = [
        ("w", op.address, op.data) if op.kind is write_kind
        else ("r", op.address, None)
        for op in trace]
    expected: dict[int, bytes] = {
        op.address: cast(bytes, op.data)
        for op in trace if op.kind is write_kind}

    for start in range(0, len(ops_buf), epoch_ops):
        mem_ops, fills = hierarchy.replay_epoch(
            ops_buf[start:start + epoch_ops])
        if controller is not None:
            results = controller.run_ops_batch(mem_ops)
        else:
            results = _run_plain(nvm, mem_ops)
        hierarchy.resolve_pending(
            fills, [result for mem_op, result in zip(mem_ops, results)
                    if mem_op[0] == "r"])
    return expected
