"""Epoch-batched trace replay.

:func:`replay` is a drop-in for :func:`repro.workloads.generators.replay`
(same ``expected`` return value, same observable system state afterwards)
that slices the trace into epochs and executes each epoch in three fused
steps instead of two Python calls per op:

1. :meth:`~repro.cache.hierarchy.CacheHierarchy.replay_epoch` runs the whole
   epoch through the caches in one pass, deferring the memory side into an
   op-ordered ``mem_ops`` stream with :class:`~repro.cache.hierarchy.PendingFill`
   markers standing in for fetched payloads;
2. the memory side executes the stream batched —
   :meth:`~repro.secure.controller.SecureMemoryController.run_ops_batch`
   amortizes pad generation and MAC computation across the epoch (non-secure
   systems group the stream into :class:`~repro.mem.nvm.NvmDevice` batch
   calls);
3. :meth:`~repro.cache.hierarchy.CacheHierarchy.resolve_pending` swaps each
   marker for its fetched payload.

Because the memory-side stream is issued in exactly the order the scalar
replay would issue it, every observable — NVM image, SimStats counters,
cache hit/miss/LRU state, metadata caches, lost writes — is byte-identical
to scalar replay; ``REPRO_ORACLE`` episodes run both and compare
(:func:`repro.core.oracle.run_replay_differential`).

Accounting side channels the grouped paths cannot reproduce exactly
(request traces, fault plans, wear tracking) force the scalar path, as do
non-inclusive hierarchies and systems that lack the batch hooks entirely
(:class:`~repro.stats.runtime.RuntimePerfModel` accepts bare test doubles).
"""

import time
from typing import Any, cast

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.stats.events import ReadKind, WriteKind
from repro.workloads.generators import replay as scalar_replay
from repro.workloads.trace import MemoryOp, OpKind

DEFAULT_EPOCH_OPS = 4096
"""Trace ops per fused epoch: big enough to amortize the batched crypto
kernels, small enough that an epoch's deferred fills stay cache-resident."""

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


def _eligible(system: Any, batched: bool | None) -> bool:
    """Whether ``system`` can take the epoch-batched path."""
    if batched is None:
        batched = getattr(system, "batched", False)
    if not batched:
        return False
    hierarchy = getattr(system, "hierarchy", None)
    if hierarchy is None or not getattr(hierarchy, "inclusive", False) \
            or not hasattr(hierarchy, "replay_epoch"):
        return False
    if getattr(system, "layout", None) is None:
        return False
    nvm = getattr(system, "nvm", None)
    if nvm is None or nvm.trace is not None or nvm.fault_plan is not None \
            or nvm.wear is not None:
        return False
    return True


def _run_plain(nvm: Any, mem_ops: "list[tuple[str, int, bytes | None]]") \
        -> "list[bytes | None]":
    """Non-secure memory side: the grouped-NVM equivalent of
    ``SecureEpdSystem._plain_fetch`` / ``_plain_writeback``.

    Returns the epoch's fetch results only, in op order — the
    fill-aligned stream ``resolve_pending`` consumes directly (writes
    produce no result, so there is nothing to filter out afterwards).
    """
    fetched: list[bytes | None] = []
    pos = 0
    total = len(mem_ops)
    while pos < total:
        kind = mem_ops[pos][0]
        stop = pos
        while stop < total and mem_ops[stop][0] == kind:
            stop += 1
        if kind == "r":
            addresses = [mem_ops[i][1] for i in range(pos, stop)]
            fetched.extend(nvm.read_batch(addresses, ReadKind.DATA))
        else:
            # Eligibility guarantees grouped_io (no trace/fault/wear), so
            # the run lands as one arena write: same image, same folded
            # stats, no per-op tuple stream.
            addresses = [mem_ops[i][1] for i in range(pos, stop)]
            buffer = b"".join(
                mem_ops[i][2] if mem_ops[i][2] is not None else _ZERO_BLOCK
                for i in range(pos, stop))
            nvm.write_arena(addresses, buffer, WriteKind.DATA)
        pos = stop
    return fetched


def replay(system: Any, trace: "list[MemoryOp]", *,
           epoch_ops: int = DEFAULT_EPOCH_OPS,
           batched: bool | None = None) -> dict[int, bytes]:
    """Run a trace against a system, epoch-batched when possible.

    Returns the expected final content per written address, exactly as
    :func:`repro.workloads.generators.replay` does.  ``batched`` defaults to
    the system's own ``batched`` setting (the differential oracle passes an
    explicit value per side); ineligible systems fall back to the scalar
    loop.  Each unique address is validated once — validation carries no
    accounting, so the per-op re-validation of the scalar path is not an
    observable.
    """
    if epoch_ops <= 0:
        raise ConfigError("epoch_ops must be positive")
    if not _eligible(system, batched):
        return scalar_replay(system, trace)

    hierarchy = system.hierarchy
    controller = getattr(system, "controller", None)
    nvm = system.nvm
    require = system.layout.require_data_address
    write_kind = OpKind.WRITE
    for address in {op.address for op in trace}:
        require(address)
    ops_buf: list[tuple[str, int, bytes | None]] = [
        ("w", op.address, op.data) if op.kind is write_kind
        else ("r", op.address, None)
        for op in trace]
    expected: dict[int, bytes] = {
        op.address: cast(bytes, op.data)
        for op in trace if op.kind is write_kind}

    # Sub-phase spans for --profile timelines: the cache-model, memory-side,
    # and marker-resolution shares of the replay wall, accumulated across
    # epochs and recorded as three aggregate spans (placed back to back from
    # the loop's start).  Timer reads are skipped entirely when no capture
    # is active.
    from repro.experiments.profile import capturing, record_span
    profiled = capturing()
    cache_s = mem_s = resolve_s = 0.0
    loop_start = time.perf_counter() if profiled else 0.0
    t0 = t1 = 0.0

    with hierarchy.epoch_session():
        for start in range(0, len(ops_buf), epoch_ops):
            if profiled:
                t0 = time.perf_counter()
            mem_ops, fills = hierarchy.replay_epoch(
                ops_buf[start:start + epoch_ops])
            if profiled:
                t1 = time.perf_counter()
                cache_s += t1 - t0
            if controller is not None:
                fetched = controller.run_ops_batch(mem_ops, fetches=True)
            else:
                fetched = _run_plain(nvm, mem_ops)
            if profiled:
                t0 = time.perf_counter()
                mem_s += t0 - t1
            hierarchy.resolve_pending(fills, fetched)
            if profiled:
                resolve_s += time.perf_counter() - t0
    if profiled:
        record_span("cache:replay", cache_s, loop_start)
        record_span("mem:replay", mem_s, loop_start + cache_s)
        record_span("resolve:replay", resolve_s,
                    loop_start + cache_s + mem_s)
    return expected
