"""Memory traces: the unit of run-time workload replay.

A trace is a sequence of block-granular reads and writes against the data
region.  The generators in :mod:`repro.workloads.generators` produce traces
mimicking the application classes the paper's introduction motivates
(key-value stores, in-memory analytics, graph algorithms).
"""

from dataclasses import dataclass
from enum import Enum

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import AlignmentError


class OpKind(Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryOp:
    """One trace record."""

    kind: OpKind
    address: int
    data: bytes | None = None

    def __post_init__(self) -> None:
        if self.address % CACHE_LINE_SIZE:
            raise AlignmentError(
                f"trace address {self.address:#x} not line aligned")
        if self.kind is OpKind.WRITE and self.data is not None \
                and len(self.data) != CACHE_LINE_SIZE:
            raise AlignmentError("trace write payload must be one full line")


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate shape of a trace (used by tests and example output)."""

    num_ops: int
    num_reads: int
    num_writes: int
    footprint_blocks: int

    @property
    def write_fraction(self) -> float:
        return self.num_writes / self.num_ops if self.num_ops else 0.0


def summarize(trace: list[MemoryOp]) -> TraceSummary:
    """Compute the summary of a materialized trace."""
    writes = sum(1 for op in trace if op.kind is OpKind.WRITE)
    return TraceSummary(
        num_ops=len(trace),
        num_reads=len(trace) - writes,
        num_writes=writes,
        footprint_blocks=len({op.address for op in trace}),
    )
