"""Trace generators for the workload classes the paper motivates.

The paper's introduction names key-value stores, in-memory analytics,
transactional databases, and graph algorithms as the persistent-memory
applications EPD systems serve.  These generators synthesize block-granular
traces with the corresponding access shapes; they drive the run-time examples
and the crash-consistency integration tests.
"""

import random
from typing import Any, cast

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.workloads.trace import MemoryOp, OpKind


def _payload(rng: random.Random, tag: int) -> bytes:
    """A recognizable 64 B payload: an 8 B tag repeated, then noise."""
    head = tag.to_bytes(8, "little") * 4
    noise = rng.getrandbits(8 * 32).to_bytes(32, "little")
    return head + noise


def _check(footprint_blocks: int, num_ops: int) -> None:
    if footprint_blocks <= 0:
        raise ConfigError("footprint must be positive")
    if num_ops < 0:
        raise ConfigError("op count cannot be negative")


def kvstore_trace(num_ops: int, footprint_blocks: int,
                  write_fraction: float = 0.5, base: int = 0,
                  seed: int | None = None) -> list[MemoryOp]:
    """Key-value store: uniform point reads/updates over a keyspace.

    Each key occupies one line; updates rewrite the whole value (the common
    small-value KV pattern).
    """
    _check(footprint_blocks, num_ops)
    rng = make_rng(seed)
    trace: list[MemoryOp] = []
    for i in range(num_ops):
        key = rng.randrange(footprint_blocks)
        address = base + key * CACHE_LINE_SIZE
        if rng.random() < write_fraction:
            trace.append(MemoryOp(OpKind.WRITE, address, _payload(rng, key)))
        else:
            trace.append(MemoryOp(OpKind.READ, address))
    return trace


def analytics_scan_trace(num_passes: int, footprint_blocks: int,
                         base: int = 0,
                         update_every: int = 0,
                         seed: int | None = None) -> list[MemoryOp]:
    """In-memory analytics: sequential full-table scans, optionally with a
    sparse update sprinkled in every ``update_every`` blocks."""
    _check(footprint_blocks, num_passes)
    rng = make_rng(seed)
    trace: list[MemoryOp] = []
    for _ in range(num_passes):
        for block in range(footprint_blocks):
            address = base + block * CACHE_LINE_SIZE
            trace.append(MemoryOp(OpKind.READ, address))
            if update_every and block % update_every == update_every - 1:
                trace.append(MemoryOp(OpKind.WRITE, address,
                                      _payload(rng, block)))
    return trace


def graph_walk_trace(num_steps: int, footprint_blocks: int,
                     base: int = 0, locality: float = 0.8,
                     write_fraction: float = 0.2,
                     seed: int | None = None) -> list[MemoryOp]:
    """Graph traversal: a random walk where each step stays near the current
    vertex with probability ``locality`` and teleports otherwise (the
    power-law-ish mix of graph workloads)."""
    _check(footprint_blocks, num_steps)
    if not 0.0 <= locality <= 1.0:
        raise ConfigError("locality must be in [0, 1]")
    rng = make_rng(seed)
    current = 0
    trace: list[MemoryOp] = []
    for _ in range(num_steps):
        if rng.random() < locality:
            current = (current + rng.randrange(-8, 9)) % footprint_blocks
        else:
            current = rng.randrange(footprint_blocks)
        address = base + current * CACHE_LINE_SIZE
        if rng.random() < write_fraction:
            trace.append(MemoryOp(OpKind.WRITE, address,
                                  _payload(rng, current)))
        else:
            trace.append(MemoryOp(OpKind.READ, address))
    return trace


def transactional_trace(num_txns: int, footprint_blocks: int,
                        txn_size: int = 4, base: int = 0,
                        seed: int | None = None) -> list[MemoryOp]:
    """Transactional database: read-modify-write groups of ``txn_size``
    lines (each transaction reads its working set, then writes it)."""
    _check(footprint_blocks, num_txns)
    if txn_size <= 0:
        raise ConfigError("transaction size must be positive")
    rng = make_rng(seed)
    trace: list[MemoryOp] = []
    for _ in range(num_txns):
        blocks = [rng.randrange(footprint_blocks) for _ in range(txn_size)]
        for block in blocks:
            trace.append(MemoryOp(OpKind.READ,
                                  base + block * CACHE_LINE_SIZE))
        for block in blocks:
            trace.append(MemoryOp(OpKind.WRITE,
                                  base + block * CACHE_LINE_SIZE,
                                  _payload(rng, block)))
    return trace


def replay(system: Any, trace: list[MemoryOp]) -> dict[int, bytes]:
    """Run a trace against a :class:`~repro.core.system.SecureEpdSystem`.

    Returns the expected final content per written address — the oracle the
    crash-recovery integration tests compare against after recovery.
    """
    expected: dict[int, bytes] = {}
    for op in trace:
        if op.kind is OpKind.WRITE:
            system.write(op.address, op.data)
            expected[op.address] = cast(bytes, op.data)
        else:
            system.read(op.address)
    return expected
