"""Deterministic multi-tenant workload mixing.

A :class:`TenantMixer` turns "thousands of users hitting the fleet" into a
single routed op stream: each tenant owns a contiguous extent of the
aggregate data space and runs its own seeded YCSB mix over its own
footprint; tenant *popularity* is Zipf-skewed (a few hot tenants dominate,
a long tail trickles), and the per-tenant streams are interleaved by a
seeded shuffle into one arrival-ordered trace.

Everything derives from ``(master_seed, label)`` via
:func:`~repro.common.rng.spread_seed` — never ``master_seed + i``, whose
collisions make adjacent tenants replay each other's traffic (tenant ``i``
under master ``s`` is the same stream as tenant ``i+1`` under ``s-1``).
Two guarantees the property suite leans on:

- *Stream determinism*: :meth:`TenantMixer.tenant_trace` for tenant ``t``
  equals the tenant-``t`` subsequence of :meth:`TenantMixer.mix` — the
  interleave permutes across tenants, never within one.
- *Containment*: every generated address stays inside its tenant's extent,
  so routing a mixed trace can never leak one tenant's ops into another's
  address range.
"""

from collections import Counter
from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.common.rng import make_rng, spread_seed
from repro.sharding.keys import TenantExtent
from repro.workloads.trace import MemoryOp
from repro.workloads.ycsb import ycsb_trace
from repro.workloads.zipf import ZipfSampler

DEFAULT_TENANT_THETA = 0.6
"""Tenant-popularity skew: hot tenants dominate, but the tail stays live."""

DEFAULT_WORKLOADS = ("a", "b", "c", "f")
"""Per-tenant YCSB mixes drawn per tenant (update-heavy through read-only)."""


@dataclass(frozen=True)
class TenantMixPlan:
    """A fully-seeded description of one multi-tenant workload.

    Frozen and picklable: shipping the plan to a pool worker reproduces the
    exact same global trace, which is how shard workers regenerate their
    sub-traces instead of serializing op streams.
    """

    num_tenants: int
    total_ops: int
    data_size: int
    footprint_blocks: int = 64
    master_seed: int | None = None
    tenant_theta: float = DEFAULT_TENANT_THETA
    key_theta: float = 0.99
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ConfigError(
                f"need at least one tenant, got {self.num_tenants}")
        if self.total_ops < 0:
            raise ConfigError("op count cannot be negative")
        if self.footprint_blocks < 1:
            raise ConfigError("tenant footprint must be at least one line")
        if not self.workloads:
            raise ConfigError("need at least one YCSB workload letter")
        for letter in self.workloads:
            if letter not in "abcdef" or len(letter) != 1:
                raise ConfigError(f"unknown YCSB workload {letter!r}")
        if self.tenant_stride < self.footprint_bytes:
            raise ConfigError(
                f"{self.num_tenants} tenants x {self.footprint_bytes} B "
                f"do not fit in {self.data_size} B of data space")

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_blocks * CACHE_LINE_SIZE

    @property
    def tenant_stride(self) -> int:
        """Byte distance between tenant bases: tenants are spread evenly
        over the whole data space (so a sharded fleet sees traffic on every
        shard), not packed from zero."""
        return (self.data_size // self.num_tenants
                // CACHE_LINE_SIZE * CACHE_LINE_SIZE)

    def tenant_base(self, tenant_id: int) -> int:
        """Byte base of one tenant's extent."""
        if not 0 <= tenant_id < self.num_tenants:
            raise ConfigError(
                f"tenant {tenant_id} outside 0..{self.num_tenants - 1}")
        return tenant_id * self.tenant_stride

    def extents(self) -> tuple[TenantExtent, ...]:
        """The tenant extents a keyring needs (global coordinates)."""
        return tuple(
            TenantExtent(tenant, self.tenant_base(tenant),
                         self.footprint_bytes)
            for tenant in range(self.num_tenants))

    def tenant_of(self, address: int) -> int:
        """The tenant owning a global data address (-1 if unowned)."""
        if address < 0:
            return -1
        tenant = address // self.tenant_stride
        if tenant < self.num_tenants \
                and address - self.tenant_base(tenant) < self.footprint_bytes:
            return tenant
        return -1


class TenantMixer:
    """Generate and interleave the plan's per-tenant streams."""

    def __init__(self, plan: TenantMixPlan) -> None:
        self.plan = plan
        popularity = ZipfSampler(
            plan.num_tenants, plan.tenant_theta,
            seed=spread_seed(plan.master_seed, "popularity"))
        demand = Counter(popularity.sample_many(plan.total_ops))
        self.tenant_ops = tuple(
            demand.get(tenant, 0) for tenant in range(plan.num_tenants))
        chooser = make_rng(spread_seed(plan.master_seed, "workloads"))
        self.tenant_workloads = tuple(
            chooser.choice(plan.workloads)
            for _ in range(plan.num_tenants))

    def tenant_seed(self, tenant_id: int) -> int:
        """The spread per-tenant stream seed (collision-free by hashing)."""
        return spread_seed(self.plan.master_seed, "tenant", tenant_id)

    def tenant_trace(self, tenant_id: int,
                     num_ops: int | None = None) -> list[MemoryOp]:
        """One tenant's standalone YCSB stream over its own extent."""
        plan = self.plan
        ops = self.tenant_ops[tenant_id] if num_ops is None else num_ops
        if ops == 0:
            return []
        return ycsb_trace(self.tenant_workloads[tenant_id], ops,
                          plan.footprint_blocks,
                          base=plan.tenant_base(tenant_id),
                          theta=plan.key_theta,
                          seed=self.tenant_seed(tenant_id))

    def arrival_order(self) -> list[int]:
        """The interleave: which tenant issues each global op slot."""
        labels = [tenant
                  for tenant, count in enumerate(self.tenant_ops)
                  for _ in range(count)]
        make_rng(spread_seed(self.plan.master_seed, "interleave")) \
            .shuffle(labels)
        return labels

    def mix(self) -> list[MemoryOp]:
        """The single interleaved global trace (``total_ops`` ops).

        Per-tenant op order is preserved — the shuffle permutes *across*
        tenants only — so each tenant's subsequence of the mix equals its
        standalone :meth:`tenant_trace`.
        """
        streams = [iter(self.tenant_trace(tenant))
                   for tenant in range(self.plan.num_tenants)]
        return [next(streams[tenant]) for tenant in self.arrival_order()]
