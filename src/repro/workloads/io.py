"""Trace file I/O.

Traces serialize to JSON-lines (one op per line) so workloads can be
generated once, inspected with standard tools, shared between experiments,
and replayed byte-identically across library versions.
"""

import base64
import json
from pathlib import Path

from repro.common.errors import ConfigError
from repro.workloads.trace import MemoryOp, OpKind


def op_to_json(op: MemoryOp) -> str:
    record: dict[str, object] = {"op": op.kind.value, "addr": op.address}
    if op.data is not None:
        record["data"] = base64.b64encode(op.data).decode("ascii")
    return json.dumps(record, separators=(",", ":"))


def op_from_json(line: str) -> MemoryOp:
    try:
        record = json.loads(line)
        kind = OpKind(record["op"])
        address = int(record["addr"])
    except (json.JSONDecodeError, KeyError, ValueError) as error:
        raise ConfigError(f"malformed trace line: {line!r}") from error
    data = None
    if "data" in record:
        data = base64.b64decode(record["data"])
    return MemoryOp(kind, address, data)


def save_trace(trace: list[MemoryOp], path: str | Path) -> Path:
    """Write a trace as JSON-lines; returns the path written."""
    path = Path(path)
    with path.open("w") as handle:
        for op in trace:
            handle.write(op_to_json(op) + "\n")
    return path


def load_trace(path: str | Path) -> list[MemoryOp]:
    """Read a JSON-lines trace file."""
    path = Path(path)
    trace: list[MemoryOp] = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                trace.append(op_from_json(line))
    return trace
