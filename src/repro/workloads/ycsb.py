"""YCSB-style core workload mixes over the block-trace substrate.

The paper motivates EPD with key-value store workloads; YCSB's core
workloads A-F are the community-standard shapes for those.  Each generator
returns a block-granular :class:`~repro.workloads.trace.MemoryOp` trace with
the canonical operation mix and a (scrambled) Zipfian key distribution.

=========  ===========================  ==========
workload   mix                          skew
=========  ===========================  ==========
A          50% reads / 50% updates      zipfian
B          95% reads / 5% updates       zipfian
C          100% reads                   zipfian
D          95% reads / 5% inserts       latest
E          95% scans / 5% inserts       zipfian
F          read-modify-write            zipfian
=========  ===========================  ==========
"""

import random

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.workloads.trace import MemoryOp, OpKind
from repro.workloads.zipf import ZipfSampler, scrambled

SCAN_LENGTH = 8
"""Blocks touched by one workload-E scan."""


def _payload(rng: random.Random, key: int) -> bytes:
    head = key.to_bytes(8, "little") * 2
    noise = rng.getrandbits(8 * 48).to_bytes(48, "little")
    return head + noise


class _Generator:
    def __init__(self, num_ops: int, footprint_blocks: int, base: int,
                 theta: float, seed: int | None) -> None:
        if num_ops < 0:
            raise ConfigError("op count cannot be negative")
        self.rng = make_rng(seed)
        self.num_ops = num_ops
        self.footprint = footprint_blocks
        self.base = base
        self.zipf = ZipfSampler(footprint_blocks, theta,
                                seed=self.rng.randrange(1 << 30))
        self.mapping = scrambled(self.zipf, self.rng)
        self.inserted = max(1, footprint_blocks // 2)

    def address_of(self, key: int) -> int:
        return self.base + self.mapping[key % self.footprint] \
            * CACHE_LINE_SIZE

    def zipf_key(self, limit: int | None = None) -> int:
        key = self.zipf.sample()
        if limit is not None:
            key %= limit
        return key

    def latest_key(self) -> int:
        """Workload D: reads skew toward recently inserted keys."""
        offset = self.zipf.sample()
        return max(0, self.inserted - 1 - offset) % self.footprint

    def read(self, key: int) -> MemoryOp:
        return MemoryOp(OpKind.READ, self.address_of(key))

    def write(self, key: int) -> MemoryOp:
        return MemoryOp(OpKind.WRITE, self.address_of(key),
                        _payload(self.rng, key))

    def insert(self) -> MemoryOp:
        op = self.write(self.inserted % self.footprint)
        self.inserted += 1
        return op

    def scan(self, start_key: int, length: int) -> list[MemoryOp]:
        """Workload E: a range scan is sequential in *address* space."""
        start = self.address_of(start_key) - self.base
        span = self.footprint * CACHE_LINE_SIZE
        return [
            MemoryOp(OpKind.READ,
                     self.base + (start + i * CACHE_LINE_SIZE) % span)
            for i in range(length)
        ]


def ycsb_trace(workload: str, num_ops: int, footprint_blocks: int,
               base: int = 0, theta: float = 0.99,
               seed: int | None = None) -> list[MemoryOp]:
    """Generate a YCSB core-workload trace (``workload`` in 'a'..'f')."""
    workload = workload.lower()
    if workload not in "abcdef" or len(workload) != 1:
        raise ConfigError(f"unknown YCSB workload {workload!r}")
    gen = _Generator(num_ops, footprint_blocks, base, theta, seed)
    trace: list[MemoryOp] = []

    while len(trace) < num_ops:
        roll = gen.rng.random()
        if workload == "a":
            trace.append(gen.write(gen.zipf_key()) if roll < 0.5
                         else gen.read(gen.zipf_key()))
        elif workload == "b":
            trace.append(gen.write(gen.zipf_key()) if roll < 0.05
                         else gen.read(gen.zipf_key()))
        elif workload == "c":
            trace.append(gen.read(gen.zipf_key()))
        elif workload == "d":
            if roll < 0.05:
                trace.append(gen.insert())
            else:
                trace.append(gen.read(gen.latest_key()))
        elif workload == "e":
            if roll < 0.05:
                trace.append(gen.insert())
            else:
                trace.extend(gen.scan(gen.zipf_key(), SCAN_LENGTH))
        else:  # f: read-modify-write
            key = gen.zipf_key()
            trace.append(gen.read(key))
            if len(trace) < num_ops:
                trace.append(gen.write(key))

    return trace[:num_ops]
