"""Workload traces and generators."""

from repro.workloads.generators import (
    analytics_scan_trace,
    graph_walk_trace,
    kvstore_trace,
    replay,
    transactional_trace,
)
from repro.workloads.trace import MemoryOp, OpKind, TraceSummary, summarize
from repro.workloads.ycsb import ycsb_trace
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "ycsb_trace",
    "ZipfSampler",
    "analytics_scan_trace",
    "graph_walk_trace",
    "kvstore_trace",
    "replay",
    "transactional_trace",
    "MemoryOp",
    "OpKind",
    "TraceSummary",
    "summarize",
]
