"""Zipfian sampling for skewed workloads.

Key-value and graph workloads are heavily skewed in practice; YCSB uses a
Zipfian request distribution.  This sampler precomputes the CDF once and
draws in O(log n) via bisection — fast enough to generate million-op traces.
"""

import bisect
import random

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


_CDF_CACHE: dict[tuple[int, float], tuple[list[float], float]] = {}
"""Generalized-harmonic CDF tables, shared per ``(n, theta)``.

Building the table is O(n) with a float power per key; a sweep that
generates one trace per (workload, scheme, scale) cell re-derives the same
table dozens of times.  Samplers only read the table (bisection), so every
sampler over the same population shares one list.

The cache is a small LRU (:data:`CDF_CACHE_MAX` entries): each table is
O(n) floats, so an unbounded dict grows without limit under a sweep over
many populations.  Live samplers keep a direct reference to their table,
so eviction never invalidates an existing sampler — it only means the next
sampler over that population rebuilds the list (and no longer shares it
with the pre-eviction ones)."""

CDF_CACHE_MAX = 8
"""Most-recently-used CDF tables kept alive; a sweep touches one or two
populations at a time, so a handful of slots preserves all the sharing
while bounding the cache to O(max * n) floats."""


def _cdf_for(n: int, theta: float) -> tuple[list[float], float]:
    key = (n, theta)
    entry = _CDF_CACHE.get(key)
    if entry is not None:
        # LRU touch: re-insertion order is recency order.
        _CDF_CACHE[key] = _CDF_CACHE.pop(key)
        return entry
    cdf: list[float] = []
    total = 0.0
    for k in range(n):
        total += 1.0 / ((k + 1) ** theta)
        cdf.append(total)
    entry = (cdf, total)
    while len(_CDF_CACHE) >= CDF_CACHE_MAX:
        del _CDF_CACHE[next(iter(_CDF_CACHE))]
    _CDF_CACHE[key] = entry
    return entry


def clear_cdf_cache() -> None:
    """Drop every cached CDF table (tests; long-lived processes)."""
    _CDF_CACHE.clear()


class ZipfSampler:
    """Draws integers in ``[0, n)`` with P(k) proportional to 1/(k+1)^theta."""

    def __init__(self, n: int, theta: float = 0.99,
                 seed: int | None = None) -> None:
        if n <= 0:
            raise ConfigError("zipf population must be positive")
        if theta < 0:
            raise ConfigError("zipf exponent must be non-negative")
        self._rng = make_rng(seed)
        self._cdf, self._total = _cdf_for(n, theta)

    @property
    def population(self) -> int:
        return len(self._cdf)

    def sample(self) -> int:
        """One Zipf-distributed draw (0 is the hottest key)."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cdf, point)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, k: int) -> float:
        """Exact probability of drawing ``k`` (for tests)."""
        if not 0 <= k < len(self._cdf):
            raise ConfigError(f"k={k} outside population")
        low = self._cdf[k - 1] if k else 0.0
        return (self._cdf[k] - low) / self._total


def scrambled(sampler: ZipfSampler, rng: random.Random) -> list[int]:
    """A permutation mapping rank -> key, so hot keys are scattered across
    the address space (YCSB's 'scrambled zipfian')."""
    mapping = list(range(sampler.population))
    rng.shuffle(mapping)
    return mapping
