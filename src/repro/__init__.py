"""repro — a reproduction of *Horus: Persistent Security for Extended
Persistence-Domain Memory Systems* (Han, Tuck, Awad; MICRO 2022).

The package simulates a secure NVM memory system with an Extended Persistence
Domain (eADR-style), the baseline secure drain schemes the paper compares
against, and the Horus cache-hierarchy-vault drain with single- and
double-level MAC coalescing, plus recovery, an energy/battery model, and an
experiment harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import SecureEpdSystem, SystemConfig

    system = SecureEpdSystem(SystemConfig.scaled(64), scheme="horus-dlm")
    system.fill_worst_case()
    drain = system.crash()
    print(drain.total_memory_requests, drain.milliseconds)
    recovery = system.recover()
"""

from repro.common.config import (
    CacheConfig,
    MemoryConfig,
    SecurityConfig,
    SystemConfig,
)
from repro.common.errors import (
    IntegrityError,
    RecoveryError,
    ReproError,
    SecurityError,
)
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.epd.drain import DrainReport
from repro.core.recovery import RecoveryReport
from repro.energy.battery import estimate_battery
from repro.energy.model import EnergyModel
from repro.stats.counters import SimStats
from repro.stats.timing import TimingModel

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "SecurityConfig",
    "SystemConfig",
    "IntegrityError",
    "RecoveryError",
    "ReproError",
    "SecurityError",
    "SCHEMES",
    "SecureEpdSystem",
    "DrainReport",
    "RecoveryReport",
    "estimate_battery",
    "EnergyModel",
    "SimStats",
    "TimingModel",
    "__version__",
]
