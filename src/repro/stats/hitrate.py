"""Cache hit-rate collection across the whole system.

Gathers hit/miss statistics from the three data-cache levels and the three
security-metadata caches into one table — the first thing to look at when a
drain or replay costs more than expected (the paper's whole motivation is a
metadata-cache miss storm).
"""

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class CacheHitRate:
    """Hit/miss counts for one cache."""

    name: str
    hits: int
    misses: int

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


def collect_cache_stats(system: Any) -> list[CacheHitRate]:
    """Hit rates for every cache of a :class:`SecureEpdSystem`.

    Data-cache lookups include the internal probes of the inclusive fill
    path; the metadata caches are only present on secure schemes.
    """
    rates = [
        CacheHitRate(level.name, level.hits, level.misses)
        for level in system.hierarchy.levels
    ]
    if system.controller is not None:
        rates.extend(
            CacheHitRate(cache.name, cache.hits, cache.misses)
            for cache in system.controller.metadata_caches
        )
    return rates


def hit_rate_rows(system: Any) -> list[list[object]]:
    """Table rows (name, hits, misses, rate) for report formatting."""
    return [[rate.name, rate.hits, rate.misses, rate.hit_rate]
            for rate in collect_cache_stats(system)]
