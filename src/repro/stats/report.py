"""Plain-text table rendering for experiment output.

The experiment harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place (and importantly, out of the
simulation code).
"""

from collections.abc import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table with a header rule."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    rule = "  ".join("-" * w for w in widths)
    body = [line(headers), rule]
    body.extend(line(row) for row in materialized)
    return "\n".join(body)


def format_breakdown(title: str, breakdown: Mapping[str, int],
                     normalize_to: int | None = None) -> str:
    """Render a one-column breakdown, optionally with a normalized column."""
    headers = ["component", "count"]
    if normalize_to:
        headers.append("normalized")
    rows: list[list[object]] = []
    for key, value in breakdown.items():
        row: list[object] = [key, value]
        if normalize_to:
            row.append(f"{value / normalize_to:.3f}")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
