"""Operation counters.

:class:`SimStats` accumulates every event the simulator performs, broken down
by kind.  It is deliberately dumb — pure counting — so that the timing and
energy models (which interpret the counts) stay separate and testable.
"""

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.stats.events import AesKind, MacKind, ReadKind, WriteKind


@dataclass
class SimStats:
    """Counts of memory requests and crypto operations, by kind."""

    reads: Counter[ReadKind] = field(default_factory=Counter)
    writes: Counter[WriteKind] = field(default_factory=Counter)
    macs: Counter[MacKind] = field(default_factory=Counter)
    aes: Counter[AesKind] = field(default_factory=Counter)

    # -- recording ------------------------------------------------------------

    # Zero counts are skipped, not added: ``Counter({k: 0}) != Counter()``,
    # and a batched caller recording an empty batch must stay
    # indistinguishable from a scalar caller that never called at all.

    def record_read(self, kind: ReadKind, count: int = 1) -> None:
        if count:
            self.reads[kind] += count

    def record_write(self, kind: WriteKind, count: int = 1) -> None:
        if count:
            self.writes[kind] += count

    def record_mac(self, kind: MacKind, count: int = 1) -> None:
        if count:
            self.macs[kind] += count

    def record_aes(self, kind: AesKind, count: int = 1) -> None:
        if count:
            self.aes[kind] += count

    # -- totals ---------------------------------------------------------------

    @property
    def total_reads(self) -> int:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total_memory_requests(self) -> int:
        """Reads + writes: the quantity Fig. 6 / Fig. 14 report."""
        return self.total_reads + self.total_writes

    @property
    def total_macs(self) -> int:
        """MAC computations: the quantity Fig. 13 / Fig. 15 report."""
        return sum(self.macs.values())

    @property
    def total_aes(self) -> int:
        return sum(self.aes.values())

    # -- composition ----------------------------------------------------------

    def merge(self, other: "SimStats") -> None:
        """Fold another stats object into this one in place."""
        self.reads.update(other.reads)
        self.writes.update(other.writes)
        self.macs.update(other.macs)
        self.aes.update(other.aes)

    def copy(self) -> "SimStats":
        out = SimStats()
        out.merge(self)
        return out

    @classmethod
    def aggregate(cls, parts: Iterable["SimStats"]) -> "SimStats":
        """Fold many per-shard/per-episode stats into one fleet total.

        Pure composition of :meth:`merge` — order-independent, leaves the
        inputs untouched — so the aggregate of N shard runs equals the
        stats a single fused run would have recorded.
        """
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def diff(self, earlier: "SimStats") -> "SimStats":
        """Counts accumulated since ``earlier`` (an episode delta)."""
        out = SimStats()
        out.reads = self.reads - earlier.reads
        out.writes = self.writes - earlier.writes
        out.macs = self.macs - earlier.macs
        out.aes = self.aes - earlier.aes
        return out

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()
        self.macs.clear()
        self.aes.clear()

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view (stable keys) for reports and JSON dumps."""
        return {
            "reads": {str(k): v for k, v in sorted(self.reads.items(), key=lambda kv: kv[0].value)},
            "writes": {str(k): v for k, v in sorted(self.writes.items(), key=lambda kv: kv[0].value)},
            "macs": {str(k): v for k, v in sorted(self.macs.items(), key=lambda kv: kv[0].value)},
            "aes": {str(k): v for k, v in sorted(self.aes.items(), key=lambda kv: kv[0].value)},
            "total_memory_requests": self.total_memory_requests,
            "total_macs": self.total_macs,
        }
