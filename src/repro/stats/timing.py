"""Additive timing model.

The paper's evaluation quantities (drain time, recovery time, hold-up budget)
are all serialized-operation latencies: the drain path is a single stream of
dependent memory requests and crypto operations, so total time is the sum of
per-operation latencies.  Inverting the paper's own Table II/III confirms this
model reproduces its numbers (see DESIGN.md).

:class:`TimingModel` converts a :class:`~repro.stats.counters.SimStats` into
cycles and seconds using the Table I parameters carried by the system config.
"""

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.units import ns_to_cycles
from repro.stats.counters import SimStats


@dataclass(frozen=True)
class TimingBreakdown:
    """Cycles attributed to each operation class."""

    read_cycles: int
    write_cycles: int
    mac_cycles: int
    aes_cycles: int

    @property
    def total_cycles(self) -> int:
        return (self.read_cycles + self.write_cycles
                + self.mac_cycles + self.aes_cycles)

    @property
    def memory_cycles(self) -> int:
        return self.read_cycles + self.write_cycles

    @property
    def crypto_cycles(self) -> int:
        return self.mac_cycles + self.aes_cycles


class TimingModel:
    """Maps operation counts to time under the Table I latency parameters."""

    def __init__(self, config: SystemConfig) -> None:
        self._config = config
        self.read_cycles = ns_to_cycles(
            config.memory.read_latency_ns, config.frequency_hz)
        self.write_cycles = ns_to_cycles(
            config.memory.write_latency_ns, config.frequency_hz)
        self.mac_cycles = config.security.hash_latency_cycles
        self.aes_cycles = config.security.aes_latency_cycles

    @property
    def config(self) -> SystemConfig:
        return self._config

    def breakdown(self, stats: SimStats) -> TimingBreakdown:
        """Attribute cycles to each operation class of ``stats``."""
        return TimingBreakdown(
            read_cycles=stats.total_reads * self.read_cycles,
            write_cycles=stats.total_writes * self.write_cycles,
            mac_cycles=stats.total_macs * self.mac_cycles,
            aes_cycles=stats.total_aes * self.aes_cycles,
        )

    def cycles(self, stats: SimStats) -> int:
        """Total serialized cycles implied by ``stats``."""
        return self.breakdown(stats).total_cycles

    def seconds(self, stats: SimStats) -> float:
        """Total serialized wall-clock time implied by ``stats``."""
        return self.cycles(stats) / self._config.frequency_hz

    def milliseconds(self, stats: SimStats) -> float:
        return self.seconds(stats) * 1e3
