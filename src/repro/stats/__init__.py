"""Event taxonomy, operation counters, timing model, and report formatting."""

from repro.stats.chart import chart_experiment, render_bars, render_grouped
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind, ReadKind, WriteKind
from repro.stats.report import format_breakdown, format_table
from repro.stats.runtime import RuntimeBreakdown, RuntimePerfModel
from repro.stats.timing import TimingBreakdown, TimingModel

__all__ = [
    "chart_experiment",
    "render_bars",
    "render_grouped",
    "RuntimeBreakdown",
    "RuntimePerfModel",
    "SimStats",
    "AesKind",
    "MacKind",
    "ReadKind",
    "WriteKind",
    "TimingBreakdown",
    "TimingModel",
    "format_breakdown",
    "format_table",
]
