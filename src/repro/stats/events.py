"""Event taxonomy for the simulator.

Every memory request, MAC computation, and encryption the simulator performs
is tagged with one of these kinds.  The figures in the paper's evaluation are
breakdowns over exactly this taxonomy (Fig. 12 over write kinds, Fig. 13 over
MAC kinds), so the enums below are the reproduction's ground truth.
"""

from enum import Enum, unique


@unique
class ReadKind(Enum):
    """Why a 64 B block was read from NVM."""

    # Members are singletons and Enum equality is identity, so identity
    # hashing is equivalent — and C-level, which matters because every
    # simulated request hashes a kind into a Counter.
    __hash__ = object.__hash__

    DATA = "data"
    COUNTER = "counter"
    TREE_NODE = "tree_node"
    MAC = "mac"
    CHV = "chv"
    SHADOW = "shadow"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@unique
class WriteKind(Enum):
    """Why a 64 B block was written to NVM."""

    __hash__ = object.__hash__  # identity hashing, see ReadKind

    DATA = "data"
    """In-place data block write (run-time write or baseline drain flush)."""

    DATA_MAC = "data_mac"
    """Per-data-block MAC written to the main MAC region."""

    COUNTER = "counter"
    """Encryption counter block written back (metadata cache eviction)."""

    TREE_NODE = "tree_node"
    """Bonsai Merkle Tree node written back (metadata cache eviction)."""

    SHADOW = "shadow"
    """Metadata-cache content dumped to the reserved region at end of drain."""

    CHV_DATA = "chv_data"
    """Encrypted cache line written into the Cache Hierarchy Vault."""

    CHV_ADDRESS = "chv_address"
    """Coalesced block of 8 original addresses written into the CHV."""

    CHV_MAC = "chv_mac"
    """Coalesced block of 8 MACs written into the CHV."""

    CHV_METADATA = "chv_metadata"
    """Metadata-cache line flushed into the CHV at the end of a Horus drain."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@unique
class MacKind(Enum):
    """Why a MAC was computed."""

    __hash__ = object.__hash__  # identity hashing, see ReadKind

    DATA_PROTECT = "data_protect"
    """MAC over (ciphertext, counter, address) written alongside data."""

    TREE_UPDATE = "tree_update"
    """Recompute of a tree-node slot after a child changed."""

    VERIFY = "verify"
    """Integrity verification of a block fetched from NVM."""

    CACHE_TREE = "cache_tree"
    """Small (Anubis-style) tree over the metadata cache at drain time."""

    CHV_DATA = "chv_data"
    """Horus per-flushed-line MAC over (ciphertext, address, drain counter)."""

    CHV_LEVEL2 = "chv_level2"
    """Horus-DLM second-level MAC over a register of 8 first-level MACs."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@unique
class AesKind(Enum):
    """Why a counter-mode pad was generated (one AES-block latency each)."""

    __hash__ = object.__hash__  # identity hashing, see ReadKind

    ENCRYPT = "encrypt"
    DECRYPT = "decrypt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


BASELINE_WRITE_KINDS = (
    WriteKind.DATA,
    WriteKind.DATA_MAC,
    WriteKind.COUNTER,
    WriteKind.TREE_NODE,
    WriteKind.SHADOW,
)
"""Write kinds a baseline (in-place) drain can produce."""

HORUS_WRITE_KINDS = (
    WriteKind.CHV_DATA,
    WriteKind.CHV_ADDRESS,
    WriteKind.CHV_MAC,
    WriteKind.CHV_METADATA,
)
"""Write kinds a Horus drain can produce."""


@unique
class CellOutcome(Enum):
    """How one adversarial-campaign (or crash-matrix) cell ended.

    The campaign engine and the crash matrix classify every episode into
    exactly one of these; :data:`CellOutcome.SILENT` existing in any result
    set is, by the threat model, a bug in a scheme that claims protection.
    """

    __hash__ = object.__hash__  # identity hashing, see ReadKind

    RECOVERED = "recovered-exact"
    """Every line written before the crash read back bit-exact."""

    DETECTED = "detected"
    """Recovery or the read sweep raised a typed integrity/recovery error."""

    LOST_UNPROTECTED = "lost-unprotected"
    """Data differs and the scheme has no integrity machinery (nosec only)."""

    SILENT = "silent-corruption"
    """A scheme that claims protection returned wrong data without raising."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
