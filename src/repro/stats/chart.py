"""Terminal bar charts.

The paper's figures are bar charts; the runner can render each regenerated
series as horizontal ASCII bars (``--chart``) so the visual shape — who
wins, by what factor — is inspectable straight from the terminal.
"""

from collections.abc import Mapping, Sequence
from typing import Protocol

FULL = "#"
DEFAULT_WIDTH = 48


class ResultLike(Protocol):
    """The slice of an ExperimentResult the chart renderer consumes."""

    @property
    def experiment_id(self) -> str: ...

    @property
    def headers(self) -> Sequence[str]: ...

    @property
    def rows(self) -> Sequence[Sequence[object]]: ...


def render_bars(labels: Sequence[str], values: Sequence[float],
                width: int = DEFAULT_WIDTH,
                reference: float | None = None) -> str:
    """Render one horizontal bar per (label, value).

    Bars scale so the largest value (or ``reference``) spans ``width``
    characters; each line ends with the numeric value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    if width <= 0:
        raise ValueError("width must be positive")
    peak = max(values) if reference is None else reference
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        cells = round(width * min(value, peak) / peak)
        if value > 0 and cells == 0:
            cells = 1
        bar = FULL * cells
        lines.append(f"{label.ljust(label_width)} | {bar} {value:,.3f}")
    return "\n".join(lines)


def render_spans(labels: Sequence[str], starts: Sequence[float],
                 durations: Sequence[float],
                 width: int = DEFAULT_WIDTH) -> str:
    """Render horizontal time spans (a minimal Gantt view).

    Each line shows ``[start, start + duration)`` as a bar offset within the
    global ``[0, max end)`` window — the runner's ``--profile`` timeline uses
    this to make parallel overlap (or the lack of it) visible.
    """
    if not (len(labels) == len(starts) == len(durations)):
        raise ValueError("labels, starts and durations must align")
    if not labels:
        return ""
    if width <= 0:
        raise ValueError("width must be positive")
    window = max(start + duration
                 for start, duration in zip(starts, durations))
    if window <= 0:
        window = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, start, duration in zip(labels, starts, durations):
        lead = round(width * min(start, window) / window)
        cells = round(width * min(duration, window) / window)
        if duration > 0 and cells == 0:
            cells = 1
        lead = min(lead, width - cells)
        span = " " * lead + FULL * cells
        lines.append(f"{label.ljust(label_width)} |{span.ljust(width)}| "
                     f"{duration:,.3f}s @ {start:,.3f}s")
    return "\n".join(lines)


def render_grouped(groups: Mapping[str, Mapping[str, float]],
                   width: int = DEFAULT_WIDTH) -> str:
    """Render grouped bars: ``{group: {series: value}}`` (e.g. LLC sweeps),
    scaled by the global maximum so groups are comparable."""
    peak = max((value for series in groups.values()
                for value in series.values()), default=1.0)
    blocks = []
    for group, series in groups.items():
        blocks.append(f"{group}:")
        body = render_bars(list(series), list(series.values()),
                           width=width, reference=peak)
        blocks.append("  " + body.replace("\n", "\n  "))
    return "\n".join(blocks)


def chart_experiment(result: ResultLike, value_column: int = -1,
                     width: int = DEFAULT_WIDTH) -> str:
    """Bar-chart one column of an ExperimentResult's table.

    Rows whose chosen column is not numeric are skipped; the first column is
    the bar label.
    """
    labels: list[str] = []
    values: list[float] = []
    for row in result.rows:
        value = row[value_column]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        labels.append(str(row[0]))
        values.append(float(value))
    header = f"{result.experiment_id} — {result.headers[value_column]}"
    return header + "\n" + render_bars(labels, values, width=width)
