"""Run-time performance model.

The drain studies use only the memory/crypto latencies; run-time replay also
exercises Table I's cache access latencies (L1 2 cycles, L2 20, LLC 32).
:class:`RuntimePerfModel` turns a replayed workload — the hierarchy's
access-level counts plus the secure controller's operation delta — into
total cycles and cycles/op, enabling the classic secure-memory run-time
overhead comparison (and the check that Horus adds *nothing* at run time,
its premise in Section IV-B).
"""

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.common.config import SystemConfig
from repro.stats.counters import SimStats
from repro.stats.timing import TimingModel


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Cycles attributed to cache access vs memory vs crypto."""

    cache_cycles: int
    memory_cycles: int
    crypto_cycles: int
    accesses: int

    @property
    def total_cycles(self) -> int:
        return self.cache_cycles + self.memory_cycles + self.crypto_cycles

    @property
    def cycles_per_access(self) -> float:
        return self.total_cycles / self.accesses if self.accesses else 0.0


class RuntimePerfModel:
    """Maps (cache access counts, controller op delta) to run-time cycles."""

    def __init__(self, config: SystemConfig) -> None:
        self._config = config
        self._timing = TimingModel(config)
        # A hit at level N traversed every level above it first.
        l1 = config.l1.latency_cycles
        l2 = l1 + config.l2.latency_cycles
        llc = l2 + config.llc.latency_cycles
        self._access_cost = {"l1": l1, "l2": l2, "llc": llc, "miss": llc}

    def breakdown(self, access_counts: Counter[str],
                  stats_delta: SimStats) -> RuntimeBreakdown:
        cache_cycles = sum(self._access_cost[level] * count
                           for level, count in access_counts.items())
        timing = self._timing.breakdown(stats_delta)
        return RuntimeBreakdown(
            cache_cycles=cache_cycles,
            memory_cycles=timing.memory_cycles,
            crypto_cycles=timing.crypto_cycles,
            accesses=sum(access_counts.values()),
        )

    def replay(self, system: Any, trace: Iterable[Any]) -> RuntimeBreakdown:
        """Replay a workload trace on a system and measure it.

        ``system`` is anything with ``read``/``write``/``stats`` and a
        ``hierarchy`` (a :class:`~repro.core.system.SecureEpdSystem`).
        Full systems replay epoch-batched (observably identical to the
        scalar loop); bare test doubles fall back to per-op calls inside
        :func:`repro.workloads.replay.replay`.
        """
        from repro.workloads.replay import replay as replay_trace

        before = system.stats.copy()
        system.hierarchy.access_counts.clear()
        replay_trace(system, list(trace))
        return self.breakdown(system.hierarchy.access_counts,
                              system.stats.diff(before))
