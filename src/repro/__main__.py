"""``python -m repro`` — the command-line interface.

With no subcommand this regenerates the paper's evaluation (the experiment
runner); see :mod:`repro.cli` for ``info`` / ``simulate`` / ``audit``.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
