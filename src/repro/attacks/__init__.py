"""Adversarial operations for security testing."""

from repro.attacks.adversary import Adversary

__all__ = ["Adversary"]
