"""The off-chip adversary of the threat model (Section IV-A).

The attacker controls everything outside the processor chip: it can read the
bus, and it can tamper with, replay, splice, or spoof NVM content — including
the CHV between a crash and the recovery.  The adversary manipulates the raw
backing store directly, bypassing all simulator accounting, exactly like a
physical attack would bypass the memory controller.

Side channels (power, timing, access patterns) are outside the threat model
and outside this class.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import AddressError
from repro.mem.nvm import NvmDevice


class Adversary:
    """Physical attacker operating on the NVM backing store."""

    def __init__(self, nvm: NvmDevice):
        self._backend = nvm.backend
        self._marks: dict[int, bytes] = {}

    def observe(self, address: int) -> bytes:
        """Bus snooping / memory scanning: read a block without detection."""
        return self._backend.read_block(address)

    def tamper(self, address: int, byte_offset: int = 0,
               xor_mask: int = 0xFF) -> bytes:
        """Flip bits in one byte of a block; returns the original content."""
        if not 0 <= byte_offset < CACHE_LINE_SIZE:
            raise AddressError(f"byte offset {byte_offset} out of block")
        original = self._backend.read_block(address)
        mutated = bytearray(original)
        mutated[byte_offset] ^= xor_mask & 0xFF
        self._backend.corrupt_block(address, bytes(mutated))
        return original

    def spoof(self, address: int, content: bytes) -> bytes:
        """Replace a block with attacker-chosen content; returns original."""
        original = self._backend.read_block(address)
        self._backend.corrupt_block(address, content)
        return original

    def snapshot(self, address: int) -> bytes:
        """Capture a block for a later replay."""
        return self._backend.read_block(address)

    def replay(self, address: int, snapshot: bytes) -> None:
        """Write back previously captured (stale but authentic) content."""
        self._backend.corrupt_block(address, snapshot)

    def splice(self, address_a: int, address_b: int) -> None:
        """Swap the contents of two blocks (relocation/splicing attack)."""
        a = self._backend.read_block(address_a)
        b = self._backend.read_block(address_b)
        self._backend.corrupt_block(address_a, b)
        self._backend.corrupt_block(address_b, a)

    def graft(self, address: int, content: bytes,
              offset: int = 0) -> bytes:
        """Transplant a byte span into a block, leaving the rest intact.

        The surgical form of :meth:`spoof` for packed metadata: MAC and
        counter blocks hold many slots per 64 B line, and a cross-tenant
        transplant must move exactly one victim slot without disturbing its
        neighbours (whose MACs are still authentic).  Returns the original
        block content.
        """
        if not content:
            raise AddressError("graft content must be non-empty")
        if not 0 <= offset <= CACHE_LINE_SIZE - len(content):
            raise AddressError(
                f"graft span [{offset}, {offset + len(content)}) out of "
                f"block")
        original = self._backend.read_block(address)
        mutated = bytearray(original)
        mutated[offset:offset + len(content)] = content
        self._backend.corrupt_block(address, bytes(mutated))
        return original

    def mark(self, address: int) -> bytes:
        """Remember a block's current content as a rollback point.

        Unlike :meth:`snapshot` (whose capture the *caller* carries around
        for a later :meth:`replay`), marks live inside the adversary — the
        attacker bookmarking interesting state early in an episode to
        revert to later.  Returns the captured content.
        """
        content = self._backend.read_block(address)
        self._marks[address] = content
        return content

    def rollback(self, address: int) -> bytes:
        """Revert a block to its content at the last :meth:`mark`.

        Returns the content the rollback displaced.  Raises
        :class:`AddressError` if the block was never marked — a rollback
        needs a recorded past.
        """
        if address not in self._marks:
            raise AddressError(f"no rollback mark for block {address:#x}")
        displaced = self._backend.read_block(address)
        self._backend.corrupt_block(address, self._marks[address])
        return displaced
