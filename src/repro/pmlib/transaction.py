"""Failure-atomic transactions over a secure EPD system.

The programming model the paper's Section II-A argues EPD enables: no
flushes, no fences — a store is durable when it hits the cache — and
multi-block atomicity comes from an undo log in the same persistence domain.

    tx = TransactionManager(system, log_base)
    with tx.transaction() as t:
        t.write(a, new_a)
        t.write(b, new_b)
    # both or (after a crash + recover_transactions) neither
"""

from contextlib import contextmanager

from repro.pmlib.log import TxState, UndoLog


class Transaction:
    """One open transaction; obtained from ``TransactionManager``."""

    def __init__(self, system, log: UndoLog):
        self._system = system
        self._log = log
        self._entries = 0
        self._logged: set[int] = set()

    def write(self, address: int, data: bytes) -> None:
        """A transactional store: pre-image logged once per block."""
        if address not in self._logged:
            old = self._system.read(address)
            self._log.append(self._entries, address, old)
            self._entries += 1
            self._logged.add(address)
        self._system.write(address, data)

    def read(self, address: int) -> bytes:
        return self._system.read(address)


class TransactionManager:
    """Owns the undo-log location and the transaction lifecycle."""

    def __init__(self, system, log_base: int, capacity: int = 64):
        self._system = system
        self.log = UndoLog(system, log_base, capacity)

    @contextmanager
    def transaction(self):
        """Context manager: commit on clean exit, roll back on exception."""
        self.log.begin()
        txn = Transaction(self._system, self.log)
        try:
            yield txn
        except BaseException:
            self.log.abort()
            raise
        else:
            self.log.commit()

    def recover(self) -> int:
        """Post-crash cleanup: undo any transaction the crash interrupted.

        Call after ``system.recover()`` — the log content itself is part of
        the drained-and-restored persistent state.
        """
        return self.log.recover()

    @property
    def in_flight(self) -> bool:
        return self.log.read_header()[0] is TxState.ACTIVE
