"""A persistent block heap.

The paper motivates EPD with persistent applications (PMDK-style).  This
allocator manages a range of the protected data region; its bitmap lives in
persistent memory too, so the heap structure itself survives crashes.  Every
bitmap update is a single 64 B block write — atomic at the memory system's
granularity — so the allocator needs no logging of its own.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError

_BITS_PER_BLOCK = CACHE_LINE_SIZE * 8


class PersistentHeap:
    """Block-granular allocator over ``[base, base + blocks * 64)``.

    The first ``ceil(blocks / 512)`` blocks of the range hold the
    allocation bitmap; the rest are allocatable.
    """

    def __init__(self, system, base: int, blocks: int):
        if base % CACHE_LINE_SIZE:
            raise ConfigError("heap base must be line aligned")
        if blocks < 2:
            raise ConfigError("heap needs at least 2 blocks")
        self._system = system
        self._base = base
        self._bitmap_blocks = -(-blocks // _BITS_PER_BLOCK)
        self._capacity = blocks - self._bitmap_blocks
        if self._capacity <= 0:
            raise ConfigError("heap too small for its own bitmap")

    @property
    def capacity(self) -> int:
        """Allocatable blocks."""
        return self._capacity

    @property
    def data_base(self) -> int:
        return self._base + self._bitmap_blocks * CACHE_LINE_SIZE

    # ------------------------------------------------------------------

    def _bitmap_block_address(self, index: int) -> int:
        return self._base + (index // _BITS_PER_BLOCK) * CACHE_LINE_SIZE

    def _read_bitmap(self, index: int) -> tuple[bytearray, int]:
        raw = bytearray(self._system.read(self._bitmap_block_address(index)))
        return raw, index % _BITS_PER_BLOCK

    def _is_set(self, index: int) -> bool:
        raw, bit = self._read_bitmap(index)
        return bool(raw[bit // 8] & (1 << (bit % 8)))

    def _set_bit(self, index: int, value: bool) -> None:
        raw, bit = self._read_bitmap(index)
        if value:
            raw[bit // 8] |= 1 << (bit % 8)
        else:
            raw[bit // 8] &= ~(1 << (bit % 8))
        self._system.write(self._bitmap_block_address(index), bytes(raw))

    # ------------------------------------------------------------------

    def alloc(self) -> int:
        """Allocate one block; returns its address.

        First-fit over the persistent bitmap; the single bitmap-block write
        that claims the slot is the linearization (and durability) point.
        """
        for index in range(self._capacity):
            if not self._is_set(index):
                self._set_bit(index, True)
                return self.data_base + index * CACHE_LINE_SIZE
        raise MemoryError("persistent heap exhausted")

    def free(self, address: int) -> None:
        """Return a block to the heap."""
        index = self._index_of(address)
        if not self._is_set(index):
            raise ConfigError(f"double free of {address:#x}")
        self._set_bit(index, False)

    def is_allocated(self, address: int) -> bool:
        return self._is_set(self._index_of(address))

    def allocated_count(self) -> int:
        return sum(1 for i in range(self._capacity) if self._is_set(i))

    def _index_of(self, address: int) -> int:
        offset = address - self.data_base
        if offset < 0 or offset % CACHE_LINE_SIZE \
                or offset // CACHE_LINE_SIZE >= self._capacity:
            raise ConfigError(f"{address:#x} is not a heap block")
        return offset // CACHE_LINE_SIZE
