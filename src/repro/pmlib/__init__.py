"""Persistent-programming layer: heap, undo log, failure-atomic transactions.

The persistent-application substrate the paper's introduction motivates
(PMDK-style), built on the EPD property that cache residency is durability.
"""

from repro.pmlib.heap import PersistentHeap
from repro.pmlib.log import TxState, UndoLog
from repro.pmlib.structures import PersistentCounterArray, PersistentQueue
from repro.pmlib.transaction import Transaction, TransactionManager

__all__ = [
    "PersistentHeap",
    "PersistentCounterArray",
    "PersistentQueue",
    "TxState",
    "UndoLog",
    "Transaction",
    "TransactionManager",
]
