"""Persistent undo log.

EPD makes each 64 B store durable the moment it lands in the cache — but
*atomicity* across multiple stores still needs logging.  The undo log lives
in the same persistence domain as the data, so (per the paper's
programmability argument) no flushes or fences appear anywhere: writing a
log entry IS persisting it.

Layout (all 64 B blocks):

* header — magic | state (IDLE / ACTIVE / COMMITTED) | entry count
* per entry — one block holding the target address, one holding the old data
"""

from enum import IntEnum

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError, RecoveryError

_MAGIC = 0x48_4F_52_55_53_4C_4F_47  # "HORUSLOG"


class TxState(IntEnum):
    IDLE = 0
    ACTIVE = 1
    COMMITTED = 2


class UndoLog:
    """A single-transaction undo log at a fixed persistent location."""

    def __init__(self, system, base: int, capacity: int = 64):
        if base % CACHE_LINE_SIZE:
            raise ConfigError("log base must be line aligned")
        if capacity <= 0:
            raise ConfigError("log needs room for at least one entry")
        self._system = system
        self._base = base
        self.capacity = capacity

    @property
    def size_blocks(self) -> int:
        """Blocks the log occupies (header + 2 per entry)."""
        return 1 + 2 * self.capacity

    # -- header -----------------------------------------------------------

    def _write_header(self, state: TxState, count: int) -> None:
        payload = (_MAGIC.to_bytes(8, "little")
                   + int(state).to_bytes(8, "little")
                   + count.to_bytes(8, "little"))
        self._system.write(self._base, payload.ljust(CACHE_LINE_SIZE, b"\0"))

    def read_header(self) -> tuple[TxState, int]:
        raw = self._system.read(self._base)
        if int.from_bytes(raw[:8], "little") != _MAGIC:
            return TxState.IDLE, 0          # never initialized
        state = TxState(int.from_bytes(raw[8:16], "little"))
        count = int.from_bytes(raw[16:24], "little")
        return state, count

    # -- entries ------------------------------------------------------------

    def _entry_base(self, index: int) -> int:
        return self._base + (1 + 2 * index) * CACHE_LINE_SIZE

    def append(self, count: int, address: int, old_data: bytes) -> None:
        """Record entry ``count`` (address + pre-image), then bump the
        header — the write ordering that makes undo sound."""
        if count >= self.capacity:
            raise ConfigError("undo log full")
        entry = self._entry_base(count)
        self._system.write(
            entry, address.to_bytes(8, "little").ljust(CACHE_LINE_SIZE, b"\0"))
        self._system.write(entry + CACHE_LINE_SIZE, old_data)
        self._write_header(TxState.ACTIVE, count + 1)

    def read_entry(self, index: int) -> tuple[int, bytes]:
        entry = self._entry_base(index)
        address = int.from_bytes(self._system.read(entry)[:8], "little")
        old_data = self._system.read(entry + CACHE_LINE_SIZE)
        return address, old_data

    # -- protocol -------------------------------------------------------------

    def begin(self) -> None:
        state, _ = self.read_header()
        if state is TxState.ACTIVE:
            raise ConfigError("a transaction is already active")
        self._write_header(TxState.ACTIVE, 0)

    def commit(self) -> None:
        _, count = self.read_header()
        self._write_header(TxState.COMMITTED, count)
        self._write_header(TxState.IDLE, 0)

    def abort(self) -> None:
        """Roll back in reverse order, then clear."""
        state, count = self.read_header()
        if state is not TxState.ACTIVE:
            raise RecoveryError("abort without an active transaction")
        for index in reversed(range(count)):
            address, old_data = self.read_entry(index)
            self._system.write(address, old_data)
        self._write_header(TxState.IDLE, 0)

    def recover(self) -> int:
        """Post-crash: undo an interrupted transaction.

        Returns the number of entries rolled back (0 when the log was idle
        or the transaction had committed).
        """
        state, count = self.read_header()
        if state is TxState.ACTIVE:
            self.abort()
            return count
        if state is TxState.COMMITTED:
            self._write_header(TxState.IDLE, 0)
        return 0
