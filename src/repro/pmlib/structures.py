"""Persistent data structures with single-block commit points.

Built on the observation that a 64 B block write is the memory system's
atomicity granule: each structure keeps its mutable metadata in one header
block and orders writes so the header update is the commit point.  A crash
between a payload write and its header update leaves the payload invisible
— consistent by construction, no undo log needed.

(Compare :mod:`repro.pmlib.transaction`, which buys multi-block atomicity
with logging; these structures show the cheaper pattern when one commit
block suffices.)
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError

_MAGIC = 0x51_55_45_55_45_50_4D_31  # "QUEUEPM1"


class PersistentQueue:
    """A fixed-capacity FIFO ring of 64 B items in persistent memory.

    Layout: header block (magic | head | tail) followed by ``capacity``
    slot blocks.  ``head``/``tail`` are monotone counters; occupancy is
    their difference, slot index is the counter mod capacity.
    """

    def __init__(self, system, base: int, capacity: int):
        if base % CACHE_LINE_SIZE:
            raise ConfigError("queue base must be line aligned")
        if capacity <= 0:
            raise ConfigError("queue needs at least one slot")
        self._system = system
        self._base = base
        self.capacity = capacity
        if self._read_header() is None:
            self._write_header(0, 0)

    @property
    def size_blocks(self) -> int:
        return 1 + self.capacity

    # -- header ---------------------------------------------------------------

    def _write_header(self, head: int, tail: int) -> None:
        payload = (_MAGIC.to_bytes(8, "little")
                   + head.to_bytes(8, "little")
                   + tail.to_bytes(8, "little"))
        self._system.write(self._base, payload.ljust(CACHE_LINE_SIZE, b"\0"))

    def _read_header(self) -> tuple[int, int] | None:
        raw = self._system.read(self._base)
        if int.from_bytes(raw[:8], "little") != _MAGIC:
            return None
        return (int.from_bytes(raw[8:16], "little"),
                int.from_bytes(raw[16:24], "little"))

    def _slot_address(self, counter: int) -> int:
        return self._base + (1 + counter % self.capacity) * CACHE_LINE_SIZE

    # -- operations -------------------------------------------------------------

    def __len__(self) -> int:
        head, tail = self._read_header()
        return tail - head

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity

    def enqueue(self, item: bytes) -> None:
        """Write the slot, then publish it via the header (commit point)."""
        if len(item) != CACHE_LINE_SIZE:
            raise ConfigError("queue items are exactly one 64 B line")
        head, tail = self._read_header()
        if tail - head >= self.capacity:
            raise ConfigError("queue full")
        self._system.write(self._slot_address(tail), item)
        self._write_header(head, tail + 1)

    def dequeue(self) -> bytes:
        head, tail = self._read_header()
        if head == tail:
            raise ConfigError("queue empty")
        item = self._system.read(self._slot_address(head))
        self._write_header(head + 1, tail)
        return item

    def peek(self) -> bytes | None:
        head, tail = self._read_header()
        if head == tail:
            return None
        return self._system.read(self._slot_address(head))


class PersistentCounterArray:
    """A persistent array of 64-bit counters, 8 per block.

    Increment is read-modify-write of one block — atomic at the memory
    system's granule, so counters never tear across a crash.
    """

    def __init__(self, system, base: int, count: int):
        if base % CACHE_LINE_SIZE:
            raise ConfigError("array base must be line aligned")
        if count <= 0:
            raise ConfigError("array needs at least one counter")
        self._system = system
        self._base = base
        self.count = count

    @property
    def size_blocks(self) -> int:
        return -(-self.count // 8)

    def _locate(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.count:
            raise ConfigError(f"counter {index} out of range")
        return (self._base + (index // 8) * CACHE_LINE_SIZE,
                (index % 8) * 8)

    def get(self, index: int) -> int:
        address, offset = self._locate(index)
        raw = self._system.read(address)
        return int.from_bytes(raw[offset:offset + 8], "little")

    def add(self, index: int, delta: int = 1) -> int:
        address, offset = self._locate(index)
        raw = bytearray(self._system.read(address))
        value = int.from_bytes(raw[offset:offset + 8], "little") + delta
        if value < 0:
            raise ConfigError("counter would go negative")
        raw[offset:offset + 8] = value.to_bytes(8, "little")
        self._system.write(address, bytes(raw))
        return value
