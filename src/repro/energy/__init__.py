"""Energy and battery-size estimation for drain episodes."""

from repro.energy.battery import (
    BatteryEstimate,
    battery_volume_cm3,
    estimate_battery,
)
from repro.energy.model import EnergyBreakdown, EnergyModel

__all__ = [
    "BatteryEstimate",
    "battery_volume_cm3",
    "estimate_battery",
    "EnergyBreakdown",
    "EnergyModel",
]
