"""Battery sizing (Section V-G, Table III).

The hold-up source must store the worst-case drain energy; its volume is
``energy (Wh) / volumetric energy density``, evaluated for the two
technologies the paper considers (following BBB's methodology): super
capacitors and lithium thin-film batteries.
"""

from dataclasses import dataclass

from repro.common.constants import (
    LI_THIN_ENERGY_DENSITY_WH_PER_CM3,
    SUPERCAP_ENERGY_DENSITY_WH_PER_CM3,
)
from repro.energy.model import EnergyBreakdown


@dataclass(frozen=True)
class BatteryEstimate:
    """Required backup-source volume for one drain episode (Table III row)."""

    scheme: str
    supercap_cm3: float
    li_thin_cm3: float


def battery_volume_cm3(energy_j: float, density_wh_per_cm3: float) -> float:
    """Volume needed to store ``energy_j`` at the given energy density."""
    if density_wh_per_cm3 <= 0:
        raise ValueError("energy density must be positive")
    return (energy_j / 3600.0) / density_wh_per_cm3


def estimate_battery(breakdown: EnergyBreakdown) -> BatteryEstimate:
    """Battery volumes for both technologies the paper evaluates."""
    return BatteryEstimate(
        scheme=breakdown.scheme,
        supercap_cm3=battery_volume_cm3(
            breakdown.total_j, SUPERCAP_ENERGY_DENSITY_WH_PER_CM3),
        li_thin_cm3=battery_volume_cm3(
            breakdown.total_j, LI_THIN_ENERGY_DENSITY_WH_PER_CM3),
    )
