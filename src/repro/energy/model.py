"""Drain-episode energy model (Section V-G).

Energy during draining has four contributors in the paper: processor energy,
NVM writes, NVM reads, and secure operations; the paper measures the last to
be negligible and excludes it, which we mirror.  Processor energy is power x
drain time with the constant drain-mode power derived from the paper's own
Table II (see DESIGN.md).
"""

from dataclasses import dataclass

from repro.common.constants import (
    NVM_READ_ENERGY_J,
    NVM_WRITE_ENERGY_J,
    PROCESSOR_DRAIN_POWER_W,
)
from repro.epd.drain import DrainReport


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules per contributor for one drain episode (Table II rows)."""

    scheme: str
    processor_j: float
    nvm_write_j: float
    nvm_read_j: float

    @property
    def total_j(self) -> float:
        return self.processor_j + self.nvm_write_j + self.nvm_read_j

    @property
    def total_wh(self) -> float:
        return self.total_j / 3600.0


class EnergyModel:
    """Maps a drain report to its energy breakdown."""

    def __init__(self,
                 processor_power_w: float = PROCESSOR_DRAIN_POWER_W,
                 write_energy_j: float = NVM_WRITE_ENERGY_J,
                 read_energy_j: float = NVM_READ_ENERGY_J) -> None:
        if min(processor_power_w, write_energy_j, read_energy_j) < 0:
            raise ValueError("energy parameters must be non-negative")
        self.processor_power_w = processor_power_w
        self.write_energy_j = write_energy_j
        self.read_energy_j = read_energy_j

    def breakdown(self, report: DrainReport) -> EnergyBreakdown:
        return EnergyBreakdown(
            scheme=report.scheme,
            processor_j=self.processor_power_w * report.seconds,
            nvm_write_j=self.write_energy_j * report.total_writes,
            nvm_read_j=self.read_energy_j * report.total_reads,
        )
