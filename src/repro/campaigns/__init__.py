"""Adversarial campaign engine: attacks × faults × recovery, classified.

The crash matrix (:mod:`repro.faults.matrix`) answers "does every scheme
survive every drain-stream *fault*?".  The campaign engine generalizes the
question to the full threat model of Section IV-A: an active adversary who
can tamper with, spoof, splice, replay, or roll back NVM blocks — data, MAC,
counter, CHV, or shadow-dump blocks — at any point of an episode's life
(mid replay epoch, mid drain, between crash and recovery, *during* recovery
via a nested power cut, or after recovery), against every scheme variant.

Every cell of the lattice runs a complete
fill → replay epoch → fault/attack → crash → restore → recover → read sweep
episode and classifies the end state with the same single classification
path the crash matrix uses (:mod:`repro.campaigns.classify`).  The hard
invariant the whole package exists to enforce: **no cell is ever
``silent-corruption``** — a scheme either returns bit-exact data or raises a
typed error; the only scheme allowed to lose data quietly is ``nosec``,
whose cells are pinned to ``lost-unprotected``.
"""

from repro.campaigns.classify import (
    DETECTED,
    LOST_UNPROTECTED,
    RECOVERED,
    SILENT,
    classify_outcome,
    run_recovery_and_sweep,
)
from repro.campaigns.engine import (
    CAMPAIGN_LINES,
    DRAIN_SEED,
    FILL_SEED,
    CampaignCell,
    CampaignResult,
    CampaignSkip,
    EpisodeProfile,
    TORN_PREFIX,
    fault_plan_for,
    fill_lines,
    profile_episode,
    render_markdown,
    run_campaign,
    run_campaign_cell,
    run_fault_episode,
)
from repro.campaigns.scenarios import (
    DEFAULT_SCENARIOS,
    FAULT_CLASSES,
    MID_DRAIN,
    MID_RECOVERY,
    MID_REPLAY,
    POST_RECOVERY,
    PRE_RECOVERY,
    SCHEME_VARIANTS,
    WINDOWS,
    Scenario,
    applicability,
    variant_name,
)

__all__ = [
    "CAMPAIGN_LINES",
    "DEFAULT_SCENARIOS",
    "DETECTED",
    "DRAIN_SEED",
    "FAULT_CLASSES",
    "FILL_SEED",
    "LOST_UNPROTECTED",
    "MID_DRAIN",
    "MID_RECOVERY",
    "MID_REPLAY",
    "POST_RECOVERY",
    "PRE_RECOVERY",
    "RECOVERED",
    "SCHEME_VARIANTS",
    "SILENT",
    "TORN_PREFIX",
    "WINDOWS",
    "CampaignCell",
    "CampaignResult",
    "CampaignSkip",
    "EpisodeProfile",
    "Scenario",
    "applicability",
    "classify_outcome",
    "fault_plan_for",
    "fill_lines",
    "profile_episode",
    "render_markdown",
    "run_campaign",
    "run_campaign_cell",
    "run_fault_episode",
    "run_recovery_and_sweep",
    "variant_name",
]
