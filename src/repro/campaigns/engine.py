"""The campaign engine: run one adversarial cell end to end, or the grid.

Every cell runs a complete episode —

    fill → replay epoch → [injection] → crash/drain → [injection]
         → power restore → [injection] → recover → [injection] → read sweep

— with exactly one scenario injected at exactly one window, then classifies
the end state through :mod:`repro.campaigns.classify`.  The crash matrix's
machinery (patterned fill, clean-twin episode profiling, fault plans) lives
here now; :mod:`repro.faults.matrix` delegates so there is a single
classification path for both suites.

Injection mechanics per window:

* **mid-replay** — the attack fires at the midpoint of the replay epoch's
  op stream.  At EPD scale the epoch's stores all land in the hierarchy
  (persistent-by-cache: no controller traffic), so the engine issues one
  probe read of a never-written line and arms the controller's ``op_hook``
  to fire the attack exactly when that read reaches the memory side.
* **mid-drain** — an :class:`~repro.faults.plan.AdversaryAt` timing hook
  pinned to the ``lines // 2``-th write of the drain's NVM stream (every
  drain persists at least ``lines`` blocks, so the hook always fires).
  Fault scenarios instead use the crash matrix's effective-write targeting
  from a clean twin profile.
* **pre-recovery** — between ``restore_power()`` and ``recover()``: the
  classic crash-to-recovery exposure the paper's Section IV-A calls out.
* **mid-recovery** — a recovery step hook performs the attack mid-restore
  and then raises :class:`~repro.faults.plan.PowerInterrupt` (a nested
  power cut); the engine drops volatile state and re-runs recovery, which
  must be idempotent from the persistent registers.
* **post-recovery** — after ``recover()`` returns, before the sweep.

``replay`` scenarios run a *double* episode: a first fill/crash/recover
round captures authentic vault or data blocks, which the attack later
re-injects into the second episode — the stale-but-authentic freshness
attack the persistent drain counters exist to defeat.
"""

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.attacks.adversary import Adversary
from repro.campaigns.classify import DETECTED, run_recovery_and_sweep
from repro.campaigns.scenarios import (
    DEFAULT_SCENARIOS,
    MID_DRAIN,
    MID_RECOVERY,
    MID_REPLAY,
    POST_RECOVERY,
    PRE_RECOVERY,
    SCHEME_VARIANTS,
    WINDOWS,
    Scenario,
    applicability,
    variant_name,
)
from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE
from repro.common.errors import ConfigError, IntegrityError, RecoveryError
from repro.core.chv import MAC_GROUP_DLM, MAC_GROUP_SLM, ChvLayout, VaultRotation
from repro.core.system import SecureEpdSystem
from repro.sharding.keys import TenantExtent, TenantKeyring, TenantKeySchedule
from repro.experiments.cache import ResultCache, campaign_cell_key
from repro.faults.plan import (
    AdversaryAt,
    BitFlip,
    DroppedWrite,
    Fault,
    FaultPlan,
    PowerCut,
    PowerInterrupt,
    TornWrite,
)

FILL_SEED = 11
DRAIN_SEED = 23

CAMPAIGN_LINES = 24
"""Default lines per campaign cell — spans several CHV coalescing groups
(including a partial SLM group) while keeping the 300+-cell grid fast."""

TORN_PREFIX = CACHE_LINE_SIZE // 2
"""Bytes a torn write persists (the first half-block)."""

_FILL_STRIDE = CACHE_LINE_SIZE * 64
_TAMPER_OFFSET = 7
_TAMPER_MASK = 0x40
_SPOOF_PAYLOAD = bytes((0xA5 ^ (i * 29)) & 0xFF for i in range(CACHE_LINE_SIZE))


# ---------------------------------------------------------------------------
# Fill / episode machinery (moved from repro.faults.matrix)
# ---------------------------------------------------------------------------

def _build(config: SystemConfig, scheme: str, rotate_vault: bool,
           tenants: "tuple[TenantExtent, ...] | None" = None
           ) -> SecureEpdSystem:
    """One campaign system; ``tenants`` installs per-tenant key domains."""
    key_schedule = None
    if tenants is not None and scheme != "nosec":
        key_schedule = TenantKeySchedule(TenantKeyring(tenants))
    return SecureEpdSystem(config, scheme=scheme, rotate_vault=rotate_vault,
                           key_schedule=key_schedule)


def campaign_tenants(lines: int) -> tuple[TenantExtent, ...]:
    """The tenant-splice cells' two-tenant split of the filled range."""
    half = (lines // 2) * _FILL_STRIDE
    return (TenantExtent(0, 0, half),
            TenantExtent(1, half, (lines - lines // 2) * _FILL_STRIDE))


def _tenant_splice_attack(system: SecureEpdSystem, adversary: Adversary,
                          victim: int, pair: int) -> Callable[[], None]:
    """Transplant tenant A's block into tenant B's range (and vice versa).

    Swaps the two data blocks *and* their 8-byte MAC slots, so what lands
    in each range is an internally-consistent (ciphertext, MAC) pair that
    authentically belongs to the other tenant — the strongest relocation an
    off-chip attacker can stage without breaking a MAC.  Per-tenant keys
    (and the MAC's address binding) are what must reject it.
    """

    def attack() -> None:
        layout = system.layout
        adversary.splice(victim, pair)
        mac_victim = layout.mac_block_address(victim)
        mac_pair = layout.mac_block_address(pair)
        offset_victim = layout.mac_slot(victim) * MAC_SIZE
        offset_pair = layout.mac_slot(pair) * MAC_SIZE
        slot_victim = adversary.observe(mac_victim)[
            offset_victim:offset_victim + MAC_SIZE]
        slot_pair = adversary.observe(mac_pair)[
            offset_pair:offset_pair + MAC_SIZE]
        adversary.graft(mac_victim, slot_pair, offset_victim)
        adversary.graft(mac_pair, slot_victim, offset_pair)

    return attack


def _pattern(address: int) -> bytes:
    seed = (address * 2654435761) & 0xFFFFFFFF
    return bytes((seed >> (8 * (i % 4))) & 0xFF ^ (i * 37) & 0xFF
                 for i in range(CACHE_LINE_SIZE))


def _pattern2(address: int) -> bytes:
    """The replay epoch's second-generation content (distinct per line and
    distinct from :func:`_pattern`, so stale-version attacks are visible)."""
    seed = (address * 2246822519 + 0x61) & 0xFFFFFFFF
    return bytes((seed >> (8 * (i % 4))) & 0xFF ^ (i * 53) & 0xFF
                 for i in range(CACHE_LINE_SIZE))


def fill_lines(system: SecureEpdSystem, lines: int) -> dict[int, bytes]:
    """Write ``lines`` patterned cache lines; returns the crash oracle.

    The stride keeps the lines in distinct counter blocks so the episode
    carries a realistic amount of metadata, and the count is chosen by
    callers to span several CHV coalescing groups (including a partial one).
    """
    expected: dict[int, bytes] = {}
    for i in range(lines):
        address = i * _FILL_STRIDE
        data = _pattern(address)
        system.write(address, data)
        expected[address] = data
    return expected


class _EffectProbe(Fault):
    """Passive fault that records which writes actually change the medium.

    A drain can rewrite a block with the bytes it already holds (e.g. an
    in-place flush of a line an eviction persisted earlier); tearing or
    dropping such a write is a physical no-op.  The probe's twin run tells
    the matrix which write indices are *effective*, so every injected fault
    is guaranteed to matter.
    """

    name = "probe"

    def __init__(self, split: int):
        self.split = split
        self.changed: list[int] = []
        self.tail_changed: list[int] = []

    def apply(self, index: int, address: int, data: bytes,
              old: bytes) -> tuple[bytes | None, bool]:
        if data != old:
            self.changed.append(index)
        if data[self.split:] != old[self.split:]:
            self.tail_changed.append(index)
        return data, False


@dataclass(frozen=True)
class EpisodeProfile:
    """What the clean twin run of an episode looked like."""

    total_writes: int
    changed: tuple[int, ...]
    """Write indices whose data differed from the medium's old content."""
    tail_changed: tuple[int, ...]
    """Write indices whose *second half* differed (a half-block tear of
    these writes changes the persisted outcome)."""


def profile_episode(config: SystemConfig, scheme: str, rotate_vault: bool,
                    lines: int, runtime: bool = False) -> EpisodeProfile:
    """Run the clean twin episode and profile its NVM write stream.

    ``runtime=True`` includes the campaign's replay-epoch phase between
    fill and crash (campaign fault cells); the crash matrix profiles the
    bare fill → crash episode.
    """
    twin = _build(config, scheme, rotate_vault)
    expected = fill_lines(twin, lines)
    if runtime:
        _run_replay_epoch(twin, expected)
    probe = _EffectProbe(TORN_PREFIX)
    twin.nvm.fault_plan = FaultPlan([probe])
    twin.crash(seed=DRAIN_SEED)
    plan = twin.nvm.restore_power()
    assert plan is not None
    return EpisodeProfile(plan.writes_seen, tuple(probe.changed),
                          tuple(probe.tail_changed))


def _nearest(indices: tuple[int, ...], target: int, label: str) -> int:
    if not indices:
        raise RecoveryError(f"episode has no {label} writes to fault")
    return min(indices, key=lambda i: (abs(i - target), i))


def fault_plan_for(fault: str, profile: EpisodeProfile) -> FaultPlan:
    """A representative, guaranteed-effective mid-drain ``fault`` instance."""
    mid = profile.total_writes // 2
    if fault == "power-cut":
        # Cut just before an effective write, so at least one write that
        # mattered is lost along with the rest of the episode.
        return FaultPlan([PowerCut(
            after_writes=_nearest(profile.changed, mid, "effective"))])
    if fault == "torn-write":
        return FaultPlan([TornWrite(
            at_write=_nearest(profile.tail_changed, mid, "tail-effective"),
            persisted_bytes=TORN_PREFIX)])
    if fault == "dropped-write":
        return FaultPlan([DroppedWrite(
            at_write=_nearest(profile.changed, mid, "effective"))])
    if fault == "bit-flip":
        return FaultPlan([BitFlip(
            at_write=_nearest(profile.changed, mid, "effective"),
            byte_offset=_TAMPER_OFFSET, xor_mask=_TAMPER_MASK)])
    raise ValueError(f"unknown fault class {fault!r}")


# ---------------------------------------------------------------------------
# Cell / result records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignCell:
    """One (scheme variant, scenario, window) outcome."""

    scheme: str
    scenario: str
    window: str
    outcome: str
    detail: str

    @property
    def silent(self) -> bool:
        return self.outcome == "silent-corruption"


@dataclass(frozen=True)
class CampaignSkip:
    """One lattice combination that cannot physically run, and why."""

    scheme: str
    scenario: str
    window: str
    reason: str


@dataclass(frozen=True)
class CampaignResult:
    """The whole grid: every runnable cell plus every accounted skip."""

    cells: tuple[CampaignCell, ...]
    skips: tuple[CampaignSkip, ...]
    lines: int

    @property
    def lattice(self) -> int:
        """Total combinations enumerated (cells + skips)."""
        return len(self.cells) + len(self.skips)

    def silent_cells(self) -> tuple[CampaignCell, ...]:
        """The cells violating the zero-silent-corruption invariant."""
        return tuple(cell for cell in self.cells if cell.silent)

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.outcome] = counts.get(cell.outcome, 0) + 1
        return counts


def render_markdown(result: CampaignResult) -> str:
    """Detection-coverage table, one row per cell."""
    rows = ["| scheme | scenario | window | outcome | detail |",
            "|---|---|---|---|---|"]
    for cell in result.cells:
        rows.append(f"| {cell.scheme} | {cell.scenario} | {cell.window} "
                    f"| {cell.outcome} | {cell.detail} |")
    return "\n".join(rows)


# ---------------------------------------------------------------------------
# Replay epoch (run-time phase) and the mid-replay injection
# ---------------------------------------------------------------------------

def _run_replay_epoch(system: SecureEpdSystem, expected: dict[int, bytes],
                      inject: Callable[[], None] | None = None) -> None:
    """Rewrite every filled line with second-generation content.

    Models the trace-replay epoch between two drains: stores land in the
    (persistent) hierarchy, interleaved with loads.  ``inject`` fires once
    at the stream's midpoint (the mid-replay window); ``expected`` is
    updated in place to the new oracle.
    """
    ops: list[tuple[str, int]] = []
    for i, address in enumerate(sorted(expected)):
        ops.append(("w", address))
        if i % 3 == 0:
            ops.append(("r", address))
    mid = len(ops) // 2
    lines = len(expected)
    for index, (kind, address) in enumerate(ops):
        if inject is not None and index == mid:
            _inject_mid_replay(system, inject, lines)
            inject = None
        if kind == "w":
            data = _pattern2(address)
            system.write(address, data)
            expected[address] = data
        else:
            system.read(address)
    if inject is not None:
        _inject_mid_replay(system, inject, lines)


def _probe_address(system: SecureEpdSystem, lines: int) -> int:
    """A data address the episode never wrote (guaranteed LLC miss)."""
    data = system.layout.data
    address = data.block_at((data.size // CACHE_LINE_SIZE) // 2)
    if address <= (lines - 1) * _FILL_STRIDE:
        raise ConfigError(
            "data region too small for a mid-replay probe read")
    return address


def _inject_mid_replay(system: SecureEpdSystem, attack: Callable[[], None],
                       lines: int) -> None:
    """Fire ``attack`` at the memory side, mid replay epoch.

    EPD means the epoch's stores persist in the cache — the controller sees
    no traffic — so the engine issues a probe read of a never-written line
    and uses the controller's ``op_hook`` to land the attack exactly when
    that read reaches the memory side.  For ``nosec`` (no controller) the
    attack fires directly; the medium is reachable at any time anyway.
    """
    controller = system.controller
    probe = _probe_address(system, lines)
    if controller is None:
        attack()
        system.read(probe)
        return
    fired: list[str] = []

    def hook(kind: str, address: int) -> None:
        if not fired:
            fired.append(kind)
            attack()

    controller.op_hook = hook
    try:
        system.read(probe)
    finally:
        controller.op_hook = None
    if not fired:
        attack()


# ---------------------------------------------------------------------------
# Attack construction
# ---------------------------------------------------------------------------

def _chv_slot_address(system: SecureEpdSystem, rotate_vault: bool,
                      position: int) -> int:
    """NVM address of the current episode's vault slot for ``position``.

    Derives the rotation exactly like the drain engine does — from the
    episode-start drain counter (``DC - eDC``) and the scheme's MAC
    coalescing group — so the attack lands on the block recovery will read.
    """
    dc = system.drain_counter
    if dc is None:
        raise ConfigError("CHV attacks require a Horus scheme")
    chv = ChvLayout.for_layout(system.layout)
    group = MAC_GROUP_DLM if system.scheme == "horus-dlm" else MAC_GROUP_SLM
    rotation = VaultRotation.for_episode(
        chv, dc.value - dc.ephemeral, rotate_vault, group_align=group)
    return chv.data_address(rotation.data_slot(position))


def _attack_targets(system: SecureEpdSystem, target: str, victim: int,
                    pair: int) -> tuple[int, int]:
    """The (primary, secondary) NVM addresses a non-CHV attack aims at."""
    layout = system.layout
    if target == "data":
        return victim, pair
    if target == "mac":
        address = layout.mac_block_address(victim)
        return address, address
    if target == "counter":
        address = layout.counter_block_address(victim)
        return address, address
    if target == "shadow":
        return layout.shadow.block_at(0), layout.shadow.block_at(1)
    raise ConfigError(f"unknown attack target {target!r}")


def _make_attack(system: SecureEpdSystem, adversary: Adversary,
                 scenario: Scenario, rotate_vault: bool,
                 targets: tuple[int, int], stale: bytes | None,
                 during_drain: bool) -> Callable[[], None]:
    """Bind one scenario to concrete block addresses as a zero-arg action.

    CHV slots are resolved lazily at fire time: during the drain the stream
    itself is advancing the counters, and between crash and recovery the
    persistent DC/eDC registers pin the episode's rotation — both exactly
    what a physical attacker watching the bus would reconstruct.
    """
    action = scenario.action

    def resolve() -> tuple[int, int]:
        if scenario.target == "chv":
            dc = system.drain_counter
            if dc is None:
                raise ConfigError("CHV attacks require a Horus scheme")
            # Position 0 is persisted first, so a mid-drain attack on it
            # always lands on already-vaulted state; after the crash the
            # episode's middle position is known from eDC.
            position = 0 if during_drain else dc.ephemeral // 2
            return (_chv_slot_address(system, rotate_vault, position),
                    _chv_slot_address(system, rotate_vault, position + 1))
        return targets

    def attack() -> None:
        primary, secondary = resolve()
        if action == "tamper":
            adversary.tamper(primary, byte_offset=_TAMPER_OFFSET,
                             xor_mask=_TAMPER_MASK)
        elif action == "spoof":
            adversary.spoof(primary, _SPOOF_PAYLOAD)
        elif action == "splice":
            adversary.splice(primary, secondary)
        elif action == "replay":
            if stale is None:
                raise ConfigError("replay attack without a captured block")
            adversary.replay(primary, stale)
        elif action == "rollback":
            adversary.rollback(primary)
        else:
            raise ConfigError(f"unknown attack action {action!r}")

    return attack


def _recovery_steps(system: SecureEpdSystem) -> int:
    """How many step-hook firings the pending recovery will produce."""
    dc = system.drain_counter
    if dc is not None:
        return dc.ephemeral
    controller = system.controller
    if controller is None:
        raise ConfigError("scheme has no recovery phase")
    return int(controller.shadow_count)


def _nested_cut_recover(system: SecureEpdSystem,
                        attack: Callable[[], None]) -> Callable[[], object]:
    """Recovery drive for the mid-recovery window.

    Halfway through the restore the attack runs against the medium and the
    power fails again (:class:`PowerInterrupt`).  The engine then drops the
    half-restored volatile state (:meth:`SecureEpdSystem.power_cycle`) and
    re-runs recovery from the persistent registers — which re-reads the now
    tampered NVM image, so re-recovery is where detection must happen.
    """

    def run() -> object:
        engine = system.recovery_engine
        if engine is None:
            raise ConfigError("mid-recovery window needs a recovery engine")
        step = _recovery_steps(system) // 2
        fired: list[int] = []

        def hook(position: int) -> None:
            if position == step and not fired:
                fired.append(position)
                attack()
                raise PowerInterrupt(
                    f"nested power cut at recovery step {position}")

        engine.step_hook = hook
        try:
            try:
                system.recover()
            except PowerInterrupt:
                pass
        finally:
            engine.step_hook = None
        if not fired:
            raise RecoveryError(
                f"recovery finished before step {step}; the nested power "
                f"cut never fired")
        system.power_cycle()
        return system.recover()

    return run


# ---------------------------------------------------------------------------
# Episode runners
# ---------------------------------------------------------------------------

def run_fault_episode(config: SystemConfig, scheme: str, rotate_vault: bool,
                      fault: str, lines: int, profile: EpisodeProfile,
                      runtime: bool = False) -> tuple[str, str]:
    """One drain-stream fault cell: the crash matrix's episode, classified.

    ``runtime=True`` is the campaign flavour (fill → replay epoch → faulted
    drain); the matrix runs the bare fill → faulted drain.  The profile
    must come from a twin with the same ``runtime`` setting.
    """
    system = _build(config, scheme, rotate_vault)
    expected = fill_lines(system, lines)
    if runtime:
        _run_replay_epoch(system, expected)
    system.nvm.fault_plan = fault_plan_for(fault, profile)
    system.crash(seed=DRAIN_SEED)
    plan = system.nvm.restore_power()
    assert plan is not None
    if not plan.events:
        raise RecoveryError(
            f"fault {fault!r} never fired for "
            f"{variant_name(scheme, rotate_vault)} "
            f"({plan.writes_seen} writes seen)")
    return run_recovery_and_sweep(system, expected)


def _run_attack_episode(config: SystemConfig, scheme: str,
                        rotate_vault: bool, scenario: Scenario, window: str,
                        lines: int) -> tuple[str, str]:
    """One adversarial cell: the full episode with the attack at ``window``."""
    if lines < 4:
        raise ConfigError("attack cells need at least 4 lines")
    tenant_cell = scenario.target == "tenant"
    system = _build(config, scheme, rotate_vault,
                    tenants=campaign_tenants(lines) if tenant_cell else None)
    adversary = Adversary(system.nvm)
    if tenant_cell:
        # Victim in tenant 0's half, pair in tenant 1's half.
        victim = (lines // 4) * _FILL_STRIDE
        pair = (lines // 2 + lines // 4) * _FILL_STRIDE
        targets = (victim, pair)
    else:
        victim = (lines // 2) * _FILL_STRIDE
        pair = (lines // 2 + 1) * _FILL_STRIDE
        targets = ((0, 0) if scenario.target == "chv"
                   else _attack_targets(system, scenario.target or "data",
                                        victim, pair))
    # Rollback point: the pre-episode content of the primary target.
    adversary.mark(targets[0])

    expected = fill_lines(system, lines)

    stale: bytes | None = None
    if scenario.action == "replay":
        # Episode one: crash, capture authentic blocks, recover cleanly.
        # The capture is stale the moment episode two overwrites the state;
        # persistent drain counters are what must notice re-injection.
        system.crash(seed=DRAIN_SEED)
        system.nvm.restore_power()
        if scenario.target == "chv":
            stale = adversary.snapshot(
                _chv_slot_address(system, rotate_vault, 0))
        else:
            stale = adversary.snapshot(targets[0])
        system.recover()

    if tenant_cell:
        attack = _tenant_splice_attack(system, adversary, victim, pair)
    else:
        attack = _make_attack(system, adversary, scenario, rotate_vault,
                              targets, stale,
                              during_drain=window == MID_DRAIN)

    # A mid-replay attack can be caught *at run time*: once the tampered
    # block is re-fetched by a later op of the same epoch, the controller
    # raises.  That is the strongest possible detection (before the crash,
    # not after), so the typed errors are a classification, not a failure.
    try:
        _run_replay_epoch(system, expected,
                          inject=attack if window == MID_REPLAY else None)
    except (IntegrityError, RecoveryError) as exc:
        return DETECTED, f"runtime: {type(exc).__name__}: {exc}"

    if window == MID_DRAIN:
        # Every drain persists at least ``lines`` blocks, so the hook is
        # guaranteed to fire mid-stream for every scheme — including the
        # replay scenarios' second episode, whose stream a clean twin of
        # the first episode would not predict.
        plan = FaultPlan([AdversaryAt(at_write=max(1, lines // 2),
                                      action=attack)])
        system.nvm.fault_plan = plan
    # Likewise the drain itself re-reads state the attack may have touched
    # (page re-encryption, tree updates): detection during the drain ends
    # the episode with the power still on.
    try:
        system.crash(seed=DRAIN_SEED)
    except (IntegrityError, RecoveryError) as exc:
        return DETECTED, f"drain: {type(exc).__name__}: {exc}"
    plan_back = system.nvm.restore_power()
    if window == MID_DRAIN:
        assert plan_back is not None
        if not plan_back.events:
            raise RecoveryError(
                f"mid-drain attack never fired for "
                f"{variant_name(scheme, rotate_vault)} "
                f"({plan_back.writes_seen} writes seen)")

    if window == PRE_RECOVERY:
        attack()
    recover: Callable[[], object] | None = None
    after: Callable[[], None] | None = None
    if window == MID_RECOVERY:
        recover = _nested_cut_recover(system, attack)
    elif window == POST_RECOVERY:
        after = attack
    return run_recovery_and_sweep(system, expected, recover=recover,
                                  after_recover=after)


def run_campaign_cell(config: SystemConfig, scheme: str, rotate_vault: bool,
                      scenario: Scenario, window: str,
                      lines: int = CAMPAIGN_LINES,
                      profile: EpisodeProfile | None = None) -> CampaignCell:
    """Run one applicable cell of the grid and classify it."""
    reason = applicability(scheme, scenario, window)
    if reason is not None:
        raise ConfigError(
            f"cell ({variant_name(scheme, rotate_vault)}, {scenario.name}, "
            f"{window}) is not applicable: {reason}")
    if scenario.kind == "fault":
        if profile is None:
            profile = profile_episode(config, scheme, rotate_vault, lines,
                                      runtime=True)
        outcome, detail = run_fault_episode(config, scheme, rotate_vault,
                                            scenario.action, lines, profile,
                                            runtime=True)
    else:
        outcome, detail = _run_attack_episode(config, scheme, rotate_vault,
                                              scenario, window, lines)
    return CampaignCell(variant_name(scheme, rotate_vault), scenario.name,
                        window, outcome, detail)


# ---------------------------------------------------------------------------
# The grid
# ---------------------------------------------------------------------------

def _run_cached_cell(config: SystemConfig, scheme: str, rotate_vault: bool,
                     scenario: Scenario, window: str, lines: int,
                     profile: EpisodeProfile | None,
                     cache: ResultCache | None) -> CampaignCell:
    key: str | None = None
    if cache is not None:
        key = campaign_cell_key(config, variant_name(scheme, rotate_vault),
                                scenario.name, window, lines,
                                FILL_SEED, DRAIN_SEED)
        hit = cache.get(key)
        if isinstance(hit, CampaignCell):
            return hit
    cell = run_campaign_cell(config, scheme, rotate_vault, scenario, window,
                             lines, profile)
    if cache is not None and key is not None:
        cache.put(key, cell)
    return cell


def _cell_task(config: SystemConfig, scheme: str, rotate_vault: bool,
               scenario: Scenario, window: str, lines: int,
               profile: EpisodeProfile | None,
               cache_spec: tuple[str, bool, bool] | None,
               ) -> tuple[CampaignCell, dict[str, int] | None]:
    """Worker-process entry: rebuild the cache from its spec, run a cell."""
    cache: ResultCache | None = None
    if cache_spec is not None:
        root, enabled, refresh = cache_spec
        cache = ResultCache(root=root, enabled=enabled, refresh=refresh)
    cell = _run_cached_cell(config, scheme, rotate_vault, scenario, window,
                            lines, profile, cache)
    counters = cache.counters() if cache is not None else None
    return cell, counters


def run_campaign(config: SystemConfig,
                 variants: Sequence[tuple[str, bool]] = SCHEME_VARIANTS,
                 scenarios: Sequence[Scenario] = DEFAULT_SCENARIOS,
                 windows: Sequence[str] = WINDOWS,
                 lines: int = CAMPAIGN_LINES,
                 jobs: int = 1,
                 cache: ResultCache | None = None) -> CampaignResult:
    """Run the full variants × scenarios × windows grid.

    Inapplicable combinations become accounted :class:`CampaignSkip`
    records, never silent drops: ``result.lattice`` always equals
    ``len(variants) * len(scenarios) * len(windows)``.  With ``jobs > 1``
    cells fan out over a process pool; ``cache`` (a
    :class:`~repro.experiments.cache.ResultCache`) makes re-runs
    incremental per cell.
    """
    if not config.security.functional:
        raise ConfigError(
            "campaigns classify functional episodes; "
            "config.security.functional must be True")
    tasks: list[tuple[str, bool, Scenario, str]] = []
    skips: list[CampaignSkip] = []
    for scheme, rotate in variants:
        for scenario in scenarios:
            for window in windows:
                reason = applicability(scheme, scenario, window)
                if reason is None:
                    tasks.append((scheme, rotate, scenario, window))
                else:
                    skips.append(CampaignSkip(
                        variant_name(scheme, rotate), scenario.name,
                        window, reason))

    # Fault cells share one clean twin profile per variant (runtime twin).
    profiles: dict[tuple[str, bool], EpisodeProfile] = {}
    for scheme, rotate, scenario, _window in tasks:
        if scenario.kind == "fault" and (scheme, rotate) not in profiles:
            profiles[(scheme, rotate)] = profile_episode(
                config, scheme, rotate, lines, runtime=True)

    cells: list[CampaignCell] = []
    if jobs > 1 and len(tasks) > 1:
        spec = (None if cache is None
                else (str(cache.root), cache.enabled, cache.refresh))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_cell_task, config, scheme, rotate, scenario,
                            window, lines, profiles.get((scheme, rotate)),
                            spec)
                for scheme, rotate, scenario, window in tasks
            ]
            for future in futures:
                cell, counters = future.result()
                cells.append(cell)
                if cache is not None and counters is not None:
                    getattr(cache, "absorb_counters")(counters)
    else:
        for scheme, rotate, scenario, window in tasks:
            cells.append(_run_cached_cell(
                config, scheme, rotate, scenario, window, lines,
                profiles.get((scheme, rotate)), cache))
    return CampaignResult(tuple(cells), tuple(skips), lines)
