"""Run the adversarial campaign grid from the command line.

::

    python -m repro.campaigns                    # full grid, serial
    python -m repro.campaigns --jobs 4           # cells fan out over a pool
    python -m repro.campaigns --scale 64         # bigger simulated system
    python -m repro.campaigns --no-cache         # ignore the result cache

Exits non-zero if any cell classifies as ``silent-corruption`` — the grid
is the zero-silent-corruption invariant made executable, so a silent cell
must fail loudly in CI and everywhere else.
"""

import argparse
import sys

from repro.campaigns.engine import (
    CAMPAIGN_LINES,
    CampaignResult,
    render_markdown,
    run_campaign,
)
from repro.common.config import SystemConfig
from repro.experiments.cache import ResultCache


def _summary(result: CampaignResult) -> str:
    counts = result.outcome_counts()
    ordered = ", ".join(f"{outcome}: {count}"
                        for outcome, count in sorted(counts.items()))
    return (f"{len(result.cells)} cells ({ordered}); "
            f"{len(result.skips)} inapplicable combinations skipped "
            f"with reasons; lattice {result.lattice}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns",
        description="Adversarial campaign grid: scheme variants x "
                    "attack/fault scenarios x injection windows.")
    parser.add_argument("--scale", type=int, default=512,
                        help="SystemConfig.scaled() divisor (default 512)")
    parser.add_argument("--lines", type=int, default=CAMPAIGN_LINES,
                        help=f"dirty lines per episode "
                             f"(default {CAMPAIGN_LINES})")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for cell fan-out")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute every cell but keep storing")
    parser.add_argument("--markdown", action="store_true",
                        help="print the full per-cell table")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.lines < 4:
        parser.error("--lines must be >= 4")

    config = SystemConfig.scaled(args.scale)
    cache = ResultCache(enabled=not args.no_cache, refresh=args.refresh)
    result = run_campaign(config, lines=args.lines, jobs=args.jobs,
                          cache=cache)

    if args.markdown:
        print(render_markdown(result))
        print()
    print(_summary(result))
    print(f"cache: {cache.hits} hits, {cache.misses} misses, "
          f"{cache.stores} stores")

    silent = result.silent_cells()
    if silent:
        print(f"\nSILENT-CORRUPTION INVARIANT VIOLATED "
              f"({len(silent)} cells):", file=sys.stderr)
        for cell in silent:
            print(f"  {cell.scheme} / {cell.scenario} / {cell.window}: "
                  f"{cell.detail}", file=sys.stderr)
        return 1
    print("zero silent-corruption cells: invariant holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
