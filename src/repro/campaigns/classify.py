"""The single outcome-classification path for crash cells.

Both the crash matrix and the adversarial campaigns end every cell the same
way: recover (however the cell wants recovery driven), then sweep every line
the episode wrote and compare against the fill oracle.  Keeping one
implementation here is what makes the zero-silent-corruption invariant a
single predicate instead of several slightly different ones.

Outcomes (see :class:`repro.stats.events.CellOutcome`):

* ``recovered-exact`` — every line reads back bit-exact;
* ``detected`` — recovery or the sweep raised :class:`IntegrityError` /
  :class:`RecoveryError`: the system *knows* state was lost or tampered;
* ``lost-unprotected`` — data differs and the scheme is ``nosec`` (no
  integrity machinery; the paper's by-design non-goal);
* ``silent-corruption`` — a scheme that claims protection returned wrong
  bytes without raising.  Always a bug.
"""

from collections.abc import Callable

from repro.common.errors import IntegrityError, RecoveryError
from repro.core.system import SecureEpdSystem
from repro.stats.events import CellOutcome

RECOVERED = CellOutcome.RECOVERED.value
DETECTED = CellOutcome.DETECTED.value
LOST_UNPROTECTED = CellOutcome.LOST_UNPROTECTED.value
SILENT = CellOutcome.SILENT.value


def run_recovery_and_sweep(
    system: SecureEpdSystem,
    expected: dict[int, bytes],
    recover: Callable[[], object] | None = None,
    after_recover: Callable[[], None] | None = None,
) -> tuple[str, str]:
    """Drive recovery, sweep every expected line, classify; returns
    ``(outcome, detail)``.

    ``recover`` replaces the plain ``system.recover()`` call when the cell
    needs a richer recovery drive (the mid-recovery window's nested power
    cut); ``after_recover`` runs between a successful recovery and the read
    sweep (the post-recovery injection window).  The read sweep is a
    legitimate detection channel: Base-EU and nosec have no recovery step,
    so whatever they notice, they notice at first use.

    For ``nosec`` mismatches, the backend's ``attacked_blocks`` ledger (when
    non-empty) splits the detail into adversary-rewritten lines versus
    writes genuinely lost in flight — ``lost-unprotected`` covers both, but
    the forensics differ.
    """
    try:
        if recover is not None:
            recover()
        else:
            system.recover()
    except (IntegrityError, RecoveryError) as exc:
        return DETECTED, f"recover: {type(exc).__name__}: {exc}"

    if after_recover is not None:
        after_recover()

    mismatched: list[int] = []
    for address in sorted(expected):
        try:
            actual = system.read(address)
        except (IntegrityError, RecoveryError) as exc:
            return DETECTED, (f"read {address:#x}: "
                              f"{type(exc).__name__}: {exc}")
        if actual != expected[address]:
            mismatched.append(address)

    if mismatched:
        cells = ", ".join(f"{a:#x}" for a in mismatched[:4])
        detail = f"{len(mismatched)} wrong lines (first: {cells})"
        if system.scheme == "nosec":
            attacked = system.nvm.attacked_blocks
            if attacked:
                lost = {a for a, _ in system.nvm.lost_writes}
                n_attacked = sum(1 for a in mismatched if a in attacked)
                n_lost = sum(1 for a in mismatched
                             if a in lost and a not in attacked)
                detail += (f"; {n_attacked} attacked, "
                           f"{n_lost} lost in flight")
            return LOST_UNPROTECTED, detail
        return SILENT, detail
    return RECOVERED, "all lines bit-exact"


def classify_outcome(system: SecureEpdSystem,
                     expected: dict[int, bytes]) -> tuple[str, str]:
    """Recover and sweep with the default drive (the crash-matrix path)."""
    return run_recovery_and_sweep(system, expected)
