"""The campaign lattice: scheme variants × scenarios × injection windows.

A *scenario* is either one adversary action aimed at one block kind
(``tamper``/``spoof``/``splice``/``replay``/``rollback`` × ``data``/
``mac``/``counter``/``chv``/``shadow``) or one drain-stream fault class
from the crash matrix.  A *window* is when the injection lands in the
episode's life.  :func:`applicability` is the lattice's skip oracle: every
(variant, scenario, window) combination is either runnable or carries an
explicit reason why the combination does not physically exist — nothing is
silently dropped.
"""

from dataclasses import dataclass

SCHEME_VARIANTS: tuple[tuple[str, bool], ...] = (
    ("nosec", False),
    ("base-lu", False),
    ("base-eu", False),
    ("horus-slm", False),
    ("horus-slm", True),
    ("horus-dlm", False),
    ("horus-dlm", True),
)
"""(scheme, rotate_vault) pairs the matrix and the campaigns sweep."""

FAULT_CLASSES = ("power-cut", "torn-write", "dropped-write", "bit-flip")
"""The crash matrix's drain-stream fault classes."""

ATTACK_ACTIONS = ("tamper", "spoof", "splice", "replay", "rollback")
"""Adversary verbs (Section IV-A threat model)."""

ATTACK_TARGETS = ("data", "mac", "counter", "chv", "shadow", "tenant")
"""Block kinds an attack can aim at (``tenant`` = cross-tenant transplant:
one tenant's ciphertext *and* MAC slot moved into another tenant's range)."""

MID_REPLAY = "mid-replay"
"""During the replay epoch (run time), before the crash."""

MID_DRAIN = "mid-drain"
"""Pinned to the middle of the drain's NVM write stream."""

PRE_RECOVERY = "pre-recovery"
"""Between the crash and the start of recovery (the classic window)."""

MID_RECOVERY = "mid-recovery"
"""During recovery, followed by a nested power cut and re-recovery."""

POST_RECOVERY = "post-recovery"
"""After recovery completed, before the application's first reads."""

WINDOWS: tuple[str, ...] = (MID_REPLAY, MID_DRAIN, PRE_RECOVERY,
                            MID_RECOVERY, POST_RECOVERY)


@dataclass(frozen=True)
class Scenario:
    """One adversarial scenario: an attack (action × target) or a fault.

    Fault scenarios have ``target=None`` and an ``action`` naming a crash-
    matrix fault class; attack scenarios pair an adversary verb with the
    block kind it aims at.
    """

    action: str
    target: str | None = None

    @property
    def kind(self) -> str:
        """``"fault"`` for drain-stream faults, ``"attack"`` otherwise."""
        return "fault" if self.action in FAULT_CLASSES else "attack"

    @property
    def name(self) -> str:
        if self.target is None:
            return self.action
        return f"{self.action}-{self.target}"


DEFAULT_SCENARIOS: tuple[Scenario, ...] = (
    # Integrity attacks: flip bits in every protected block kind.
    Scenario("tamper", "data"),
    Scenario("tamper", "mac"),
    Scenario("tamper", "counter"),
    Scenario("tamper", "chv"),
    Scenario("tamper", "shadow"),
    # Spoofing: replace a block with attacker-chosen content.
    Scenario("spoof", "data"),
    Scenario("spoof", "chv"),
    # Splicing: swap two authentic blocks (relocation).
    Scenario("splice", "data"),
    Scenario("splice", "chv"),
    # Cross-tenant transplant: tenant A's ciphertext + MAC slot grafted
    # into tenant B's range (runs under per-tenant key schedules).
    Scenario("splice", "tenant"),
    # Replay: re-inject stale-but-authentic content from a *previous*
    # episode (what the persistent drain counters exist to catch).
    Scenario("replay", "data"),
    Scenario("replay", "chv"),
    # Rollback: revert a block to its pre-episode content.
    Scenario("rollback", "data"),
    # The crash matrix's fault classes ride in the same lattice.
    Scenario("power-cut"),
    Scenario("torn-write"),
    Scenario("dropped-write"),
    Scenario("bit-flip"),
)
"""The default 13-attack + 4-fault scenario set (a 595-combination
lattice over the seven scheme variants and five windows)."""


def variant_name(scheme: str, rotate_vault: bool) -> str:
    """Display name of a (scheme, rotate_vault) variant."""
    return f"{scheme}+rot" if rotate_vault else scheme


def applicability(scheme: str, scenario: Scenario,
                  window: str) -> str | None:
    """Why this (variant, scenario, window) cell cannot run — or ``None``.

    Inapplicable combinations are *recorded* as skips with these reasons,
    never silently dropped; the lattice accounting test asserts
    ``cells + skips == variants × scenarios × windows``.
    """
    if scenario.kind == "fault":
        if window != MID_DRAIN:
            return ("drain-stream faults are defined by the drain's write "
                    "stream; only the mid-drain window has one")
        return None
    target = scenario.target
    if target in ("mac", "counter") and scheme == "nosec":
        return "nosec keeps no MAC/counter metadata to attack"
    if target == "tenant" and scheme == "nosec":
        return "nosec has no MACs for per-tenant keys to separate"
    if target == "chv":
        if not scheme.startswith("horus"):
            return "only Horus schemes keep a CHV"
        if window == MID_REPLAY:
            return "the CHV is not written until the drain"
    if target == "shadow":
        if scheme != "base-lu":
            return "only Base-LU persists a shadow dump"
        if window == MID_REPLAY:
            return "the shadow dump is not written until the drain"
    if window == MID_RECOVERY and scheme in ("nosec", "base-eu"):
        return "scheme has no recovery phase to interrupt"
    return None
