"""Struct-of-arrays cache model for the fused replay hot loop.

The scalar hierarchy's dict-of-:class:`~repro.cache.line.CacheLine`
representation is the right shape for drains, recovery, and the
fault/attack paths — but it is the wrong shape for trace replay, where the
profile is dominated by per-access ``CacheLine`` attribute chases, per-line
dataclass allocation, and the set-index divmods repeated at every level.

:class:`SoALevel` splits one cache level into parallel per-set lanes that
carry only what the replay core branches on:

* a **payload lane** per set — an insertion-ordered dict mapping resident
  address to payload.  Slot order *is* LRU→MRU order, exactly as in
  :class:`~repro.cache.cache.SetAssociativeCache`: an LRU touch is a
  pop-and-reinsert, the eviction victim is ``next(iter(set))`` (both O(1)),
  and a value store on a resident key leaves the order untouched (the
  merge-without-touch the scalar ``lookup(touch=False)`` paths rely on).
  An earlier revision of this module kept true flat slot lanes with an
  LRU *stamp* lane and min-scan victim selection; it replayed byte-
  identically but measurably slower — the O(ways) stamp scan on every
  eviction lost to the dict's O(1) head pop, so the layout keeps the
  dict as the per-set lane and drops the stamps.
* a **dirty lane** per level — the set of resident dirty addresses.
  Replay only ever asks "is this victim dirty" and "mark this line
  dirty", so one hash membership test replaces a ``line.dirty`` chase.

What is vectorized behind the :func:`arena_accelerated` switch is the
per-epoch address decomposition: :func:`decompose_sets` computes every
op's set index for all three levels in one numpy u64 pass per level
(:func:`~repro.crypto.arena.tile_u64`-style bulk kernels), with a
byte-identical pure-Python fallback (``REPRO_ARENA=0``).  The replay core
then maps each lane through the level's set list at C speed and runs
divmod-free on the trace addresses.

Payload lanes hold the same objects the dict model would hold —
``bytes``, ``None``, or :class:`~repro.cache.hierarchy.PendingFill`
markers — so marker *identity* survives the dematerialize/materialize
round trip and ``resolve_pending`` works unchanged in either mode.
"""

from collections.abc import Sequence
from typing import Any

from repro.cache.cache import SetAssociativeCache
from repro.cache.line import CacheLine
from repro.common.config import CacheConfig
from repro.crypto.arena import arena_accelerated

_np: Any
try:
    import numpy
except ImportError:  # pragma: no cover - numpy is an optional extra
    _np = None
else:
    _np = numpy

#: Geometry tuple consumed by :func:`decompose_sets`:
#: ``(line_size, num_sets)``.
Geometry = tuple[int, int]


def decompose_sets(addresses: Sequence[int],
                   geometries: Sequence[Geometry]) -> list[list[int]]:
    """Per-level set indices for every address, one bulk pass per level.

    For geometry ``(line_size, num_sets)`` the set index of address ``a``
    is ``(a // line_size) % num_sets``.  Accelerated mode evaluates all
    addresses per level in one numpy u64 expression; the fallback (and any
    address numpy cannot hold) produces the same Python ints from the same
    arithmetic.
    """
    if _np is not None and len(addresses) > 1 and arena_accelerated():
        try:
            lane = _np.asarray(addresses, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            pass
        else:
            return [
                (lane // line_size % num_sets).tolist()
                for line_size, num_sets in geometries
            ]
    return [
        [a // line_size % num_sets for a in addresses]
        for line_size, num_sets in geometries
    ]


class SoALevel:
    """One cache level split into per-set payload lanes plus a dirty lane.

    Built from (and restored into) a :class:`SetAssociativeCache` by
    :meth:`from_cache` / :meth:`restore`; between those boundaries the
    fused replay pass owns the state and the source cache's sets are empty
    (a stale scalar read during a session has nothing to return, rather
    than silently stale lines).
    """

    __slots__ = ("config", "num_sets", "ways", "line_size", "sets", "dirty")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets: int = config.num_sets
        self.ways: int = config.ways
        self.line_size: int = config.line_size
        #: Payload lane per set: address -> ``bytes`` / ``None`` /
        #: ``PendingFill``, in LRU->MRU insertion order.
        self.sets: list[dict[int, Any]] = [{} for _ in range(self.num_sets)]
        #: Dirty lane: the resident addresses whose line is dirty.
        self.dirty: set[int] = set()

    def __len__(self) -> int:
        return sum(len(s) for s in self.sets)

    @classmethod
    def from_cache(cls, cache: SetAssociativeCache) -> "SoALevel":
        """Dematerialize ``cache`` into the lane form.

        Each set dict is consumed in its own LRU->MRU insertion order, so
        the payload lane reproduces the order exactly; the cache's sets are
        cleared in place.
        """
        level = cls(cache.config)
        sets = level.sets
        dirty_add = level.dirty.add
        for set_index, cache_set in enumerate(cache._sets):
            if not cache_set:
                continue
            lane = sets[set_index]
            for address, line in cache_set.items():
                lane[address] = line.data
                if line.dirty:
                    dirty_add(address)
            cache_set.clear()
        return level

    def restore(self, cache: SetAssociativeCache) -> None:
        """Materialize back into ``cache``'s (empty) sets.

        Lines are rebuilt per set in payload-lane order — the dict model's
        LRU->MRU insertion order — with payload objects carried by
        reference, so values, dirty bits, orders, and marker identity all
        match what the dict pass would have left behind.
        """
        sets = cache._sets
        dirty = self.dirty
        new_line = CacheLine.__new__
        for set_index, lane in enumerate(self.sets):
            if not lane:
                continue
            target = sets[set_index]
            for address, payload in lane.items():
                line = new_line(CacheLine)
                line.address = address
                line.data = payload
                line.dirty = address in dirty
                target[address] = line
