"""Set-associative cache with true-LRU replacement.

Used for the three data-cache levels and (via
:mod:`repro.metadata.cache`) for the three security-metadata caches.  Sets
are plain insertion-ordered ``dict`` instances: LRU->MRU is insertion
order, an LRU touch is a pop-and-reinsert, and the eviction victim is
``next(iter(set))``.  Same semantics as an ``OrderedDict`` with
``move_to_end``/``popitem(last=False)``, but plain-dict lookups and
reinserts are measurably cheaper at trace scale.
"""

from collections.abc import Iterator

from repro.common.address import require_block_aligned
from repro.common.config import CacheConfig
from repro.cache.line import CacheLine


class SetAssociativeCache:
    """A single cache level."""

    def __init__(self, config: CacheConfig):
        self._config = config
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._config.name

    def set_index(self, address: int) -> int:
        """Set an aligned address maps to."""
        return (address // self._config.line_size) % self._config.num_sets

    # -- core operations --------------------------------------------------------

    def lookup(self, address: int, touch: bool = True) -> CacheLine | None:
        """Return the resident line for ``address`` (or None), updating LRU."""
        require_block_aligned(address, self._config.line_size)
        cache_set = self._sets[self.set_index(address)]
        line = cache_set.get(address)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            cache_set[address] = cache_set.pop(address)
        return line

    def insert(self, line: CacheLine) -> CacheLine | None:
        """Install ``line``; return the evicted victim when the set was full.

        Inserting an address already resident replaces that line in place
        (no eviction).
        """
        require_block_aligned(line.address, self._config.line_size)
        cache_set = self._sets[self.set_index(line.address)]
        victim = None
        if line.address in cache_set:
            del cache_set[line.address]
            cache_set[line.address] = line
            return None
        if len(cache_set) >= self._config.ways:
            victim = cache_set.pop(next(iter(cache_set)))
        cache_set[line.address] = line
        return victim

    def invalidate(self, address: int) -> CacheLine | None:
        """Remove and return the line for ``address`` if resident."""
        cache_set = self._sets[self.set_index(address)]
        return cache_set.pop(address, None)

    def contains(self, address: int) -> bool:
        return address in self._sets[self.set_index(address)]

    def set_occupancy(self, index: int) -> int:
        """Lines currently resident in set ``index``."""
        return len(self._sets[index])

    # -- iteration / bulk -------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> Iterator[CacheLine]:
        """All resident lines, in set order then LRU->MRU order."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def dirty_lines(self) -> Iterator[CacheLine]:
        for line in self.lines():
            if line.dirty:
                yield line

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def clear_stats(self) -> None:
        self.hits = 0
        self.misses = 0
