"""Cache-hierarchy fill patterns.

The paper sizes the EPD hold-up budget for the worst case: every line of every
cache level dirty, with contents so sparse that almost every flushed line
misses in the security-metadata caches (Section V-A fills lines >= 16 KiB
apart).

:func:`worst_case_addresses` produces, for a cache level, a full set of
addresses that

* respect the level's set mapping (the fill is honest — each set receives
  exactly ``ways`` lines), and
* place every line in a *distinct 4 KiB counter-block page*, so each flushed
  line touches a counter block no other line shares — the property that
  actually drives the paper's worst case (a 16 KiB stride is one way to get
  it; honoring set mapping requires the slightly richer pattern below).

Page selection: a 4 KiB page spans 64 consecutive block addresses, hence 64
consecutive sets.  For a cache with ``num_sets`` sets, pages whose index is
congruent to ``s // 64 (mod num_sets/64)`` are exactly the pages that can host
a line of set ``s``.  A :class:`PageAllocator` hands out pages satisfying the
congruence, never reusing a page, and partitions the page space so different
cache levels cannot collide either.
"""

from collections.abc import Iterator
from typing import Any

from repro.common.config import CacheConfig, SystemConfig
from repro.common.constants import CACHE_LINE_SIZE, COUNTER_BLOCK_COVERAGE
from repro.common.errors import ConfigError
from repro.crypto.arena import arena_accelerated

_np: Any
try:
    import numpy
except ImportError:  # pragma: no cover - numpy is an optional extra
    _np = None
else:
    _np = numpy

_BLOCKS_PER_PAGE = COUNTER_BLOCK_COVERAGE // CACHE_LINE_SIZE  # 64


class PageAllocator:
    """Hands out distinct 4 KiB page indices, optionally under a congruence."""

    def __init__(self, num_pages: int):
        if num_pages <= 0:
            raise ConfigError("page allocator needs a positive page count")
        self._num_pages = num_pages
        self._next_free: dict[tuple[int, int], int] = {}
        self._taken: set[int] = set()

    @property
    def used(self) -> int:
        return len(self._taken)

    @property
    def fresh(self) -> bool:
        """True while nothing has been drawn (no pages, no cursors)."""
        return not self._taken and not self._next_free

    def allocate(self, residue: int = 0, period: int = 1) -> int:
        """Return an unused page index ``p`` with ``p % period == residue``."""
        key = (period, residue)
        cursor = self._next_free.get(key, residue)
        while cursor in self._taken:
            cursor += period
        if cursor >= self._num_pages:
            raise ConfigError(
                f"out of pages (period={period}, residue={residue}): "
                f"memory too small for this fill")
        self._next_free[key] = cursor + period
        self._taken.add(cursor)
        return cursor


def worst_case_addresses(config: CacheConfig, allocator: PageAllocator) -> Iterator[int]:
    """Yield ``config.num_lines`` addresses filling every set of the level,
    each in its own 4 KiB page."""
    num_sets = config.num_sets
    period = max(1, num_sets // _BLOCKS_PER_PAGE)
    for s in range(num_sets):
        residue = (s // _BLOCKS_PER_PAGE) % period
        for _ in range(config.ways):
            page = allocator.allocate(residue, period)
            offset = (s - page * _BLOCKS_PER_PAGE) % num_sets
            if offset >= _BLOCKS_PER_PAGE:
                raise ConfigError(
                    f"page {page} cannot host set {s} of {config.name}")
            yield page * COUNTER_BLOCK_COVERAGE + offset * CACHE_LINE_SIZE


def worst_case_addresses_bulk(config: CacheConfig,
                              allocator: PageAllocator) -> list[int]:
    """All worst-case fill addresses of a level at once (numpy lanes).

    Equals ``list(worst_case_addresses(config, allocator))`` — same
    addresses in the same order, same final allocator state — computed in
    closed form: on a *fresh* allocator the ``k``-th draw of residue class
    ``r`` is page ``r + k*period``, so every page, offset and address of
    the fill is pure index arithmetic.  A used allocator (whose cursors
    the closed form cannot reconstruct), a numpy-less install
    (``REPRO_ARENA=0``), or any fill the closed form would reject (page
    overflow, set outside its page) falls back to the scalar generator,
    which also reproduces the generator's exact ``ConfigError`` and
    partial allocator mutation on pathological configs.
    """
    if not (arena_accelerated() and allocator.fresh):
        return list(worst_case_addresses(config, allocator))
    num_sets = config.num_sets
    ways = config.ways
    period = max(1, num_sets // _BLOCKS_PER_PAGE)
    sets = _np.arange(num_sets, dtype=_np.int64)
    groups = sets // _BLOCKS_PER_PAGE
    residues = groups % period
    ranks = (groups // period) * _BLOCKS_PER_PAGE + sets % _BLOCKS_PER_PAGE
    draws = ranks[:, None] * ways + _np.arange(ways, dtype=_np.int64)
    pages = residues[:, None] + period * draws
    offsets = (sets[:, None] - pages * _BLOCKS_PER_PAGE) % num_sets
    if int(pages.max()) >= allocator._num_pages \
            or bool((offsets >= _BLOCKS_PER_PAGE).any()):
        return list(worst_case_addresses(config, allocator))
    addresses: list[int] = (
        pages * COUNTER_BLOCK_COVERAGE
        + offsets * CACHE_LINE_SIZE).reshape(-1).tolist()
    # Commit the allocator state exactly as the generator would have left
    # it: every page taken, and each class cursor one period past its
    # last draw (class r draws pages r, r+period, ..., consecutively).
    allocator._taken.update(pages.reshape(-1).tolist())
    class_sets = _np.bincount(residues, minlength=period)
    for residue in range(period):
        count = int(class_sets[residue]) * ways
        if count:
            allocator._next_free[(period, residue)] = \
                residue + period * count
    return addresses


def sequential_addresses(config: CacheConfig, base: int = 0) -> Iterator[int]:
    """Best-case contiguous fill: ``num_lines`` consecutive line addresses.

    A contiguous footprint maximizes security-metadata locality (64 lines per
    counter block), the opposite extreme from :func:`worst_case_addresses`.
    Used by the spatial-locality ablation.
    """
    for i in range(config.num_lines):
        yield base + i * CACHE_LINE_SIZE


def strided_addresses(config: CacheConfig, stride: int,
                      base: int = 0) -> Iterator[int]:
    """Fixed-stride fill (ignores set mapping; for ablations over locality).

    ``stride`` must be a multiple of the line size.  Note a pure power-of-two
    stride concentrates addresses in few sets; callers using this with a real
    set-mapped cache should expect conflict evictions — the locality ablation
    uses capacity-style accounting instead.
    """
    if stride % CACHE_LINE_SIZE:
        raise ConfigError(f"stride {stride} must be a multiple of "
                          f"{CACHE_LINE_SIZE}")
    for i in range(config.num_lines):
        yield base + i * stride


def page_of(address: int) -> int:
    """Counter-block page index of a data address (for tests)."""
    return address // COUNTER_BLOCK_COVERAGE


def make_allocator(config: SystemConfig) -> PageAllocator:
    """Page allocator spanning the whole data region of ``config``."""
    return PageAllocator(config.memory.size // COUNTER_BLOCK_COVERAGE)
