"""Three-level inclusive cache hierarchy.

Supports the two modes the paper exercises:

* **run-time mode** — ordinary ``read``/``write`` traffic with write-back,
  write-allocate, inclusive caching; LLC evictions call the supplied
  ``writeback`` handler (the secure memory controller) and misses call
  ``fetch``;
* **drain mode** — :meth:`fill_worst_case` populates every line of every
  level dirty (the EPD worst case the hold-up budget is sized for) and
  :meth:`drain_lines` enumerates the flush stream; the paper's flushed-block
  total (295,936 for Table I) is the sum of line counts over all levels, so
  inclusive duplicates are flushed once per level that holds them.
"""

from collections import Counter
from collections.abc import Callable, Iterator

from repro.cache.cache import SetAssociativeCache
from repro.cache.fill import make_allocator, worst_case_addresses
from repro.cache.line import CacheLine
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.rng import make_rng

FetchFn = Callable[[int], bytes]
WritebackFn = Callable[[int, bytes], None]


def _pattern_data(address: int) -> bytes:
    """Deterministic, address-unique 64 B payload for fills and tests."""
    return (address & ((1 << 64) - 1)).to_bytes(8, "little") * 8


class CacheHierarchy:
    """L1 / L2 / LLC hierarchy, inclusive (default) or non-inclusive.

    Commercial EPD systems support both (the paper notes eADR "already
    supports flushing all caches in non-inclusive LLC systems"); the drain
    worst case differs — inclusive hierarchies flush duplicated copies,
    non-inclusive ones flush one copy of more distinct lines — and Horus
    recovery option 2 (writeback) is the recommended mode for non-inclusive
    LLCs, whose capacity cannot hold the whole recovered hierarchy.
    """

    def __init__(self, config: SystemConfig, functional: bool = True,
                 inclusive: bool = True):
        self._config = config
        self._functional = functional
        self.inclusive = inclusive
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.llc = SetAssociativeCache(config.llc)
        self.fetch: FetchFn | None = None
        self.writeback: WritebackFn | None = None
        self.access_counts: Counter = Counter()
        """Where run-time accesses were served: 'l1' / 'l2' / 'llc' /
        'miss'.  Consumed by the run-time performance model."""

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def levels(self) -> tuple[SetAssociativeCache, ...]:
        return (self.l1, self.l2, self.llc)

    def __len__(self) -> int:
        return sum(len(level) for level in self.levels)

    def dirty_line_count(self) -> int:
        return sum(1 for level in self.levels for _ in level.dirty_lines())

    # ------------------------------------------------------------------
    # Drain-mode support
    # ------------------------------------------------------------------

    def fill_worst_case(self, seed: int | None = None) -> int:
        """Populate every line of every level dirty, worst-case sparse.

        Inclusive: the LLC receives a full honest fill (every set, every way)
        with each line in its own 4 KiB counter page; L1 and L2 are filled
        with subsets of the LLC's addresses (preserving inclusion) greedily
        by their own set mapping.  Non-inclusive: every level receives its
        own full fill of *distinct* addresses (one shared page allocator
        keeps counter pages unique hierarchy-wide).  Returns the number of
        lines installed.
        """
        self.invalidate_all()
        allocator = make_allocator(self._config)
        rng = make_rng(seed)

        if not self.inclusive:
            for level in self.levels:
                addresses = list(worst_case_addresses(level.config, allocator))
                rng.shuffle(addresses)
                for address in addresses:
                    data = _pattern_data(address) if self._functional else None
                    if level.insert(CacheLine(address, data, dirty=True)) \
                            is not None:
                        raise ConfigError(
                            "worst-case fill must not evict")
            return len(self)

        llc_addresses = list(worst_case_addresses(self._config.llc, allocator))
        rng.shuffle(llc_addresses)

        for address in llc_addresses:
            data = _pattern_data(address) if self._functional else None
            if self.llc.insert(CacheLine(address, data, dirty=True)) is not None:
                raise ConfigError("worst-case fill must not evict from LLC")

        for upper in (self.l2, self.l1):
            remaining = upper.config.num_lines
            for address in llc_addresses:
                if remaining == 0:
                    break
                if upper.set_occupancy(upper.set_index(address)) >= upper.config.ways:
                    continue
                if upper.contains(address):
                    continue
                data = _pattern_data(address) if self._functional else None
                upper.insert(CacheLine(address, data, dirty=True))
                remaining -= 1

        return len(self)

    def fill_sequential(self, base: int = 0) -> int:
        """Populate every line dirty with a *contiguous* footprint.

        The locality best case: 64 consecutive lines share each counter
        block, maximizing metadata-cache hit rates during a baseline drain.
        Used by the spatial-locality ablation as the opposite pole of
        :meth:`fill_worst_case`.
        """
        self.invalidate_all()
        addresses = []
        for i in range(self._config.llc.num_lines):
            addresses.append(base + i * self._config.llc.line_size)
        for address in addresses:
            data = _pattern_data(address) if self._functional else None
            if self.llc.insert(CacheLine(address, data, dirty=True)) is not None:
                raise ConfigError("sequential fill must not evict from LLC")
        for upper in (self.l2, self.l1):
            remaining = upper.config.num_lines
            for address in addresses:
                if remaining == 0:
                    break
                if upper.set_occupancy(upper.set_index(address)) >= upper.config.ways:
                    continue
                data = _pattern_data(address) if self._functional else None
                upper.insert(CacheLine(address, data, dirty=True))
                remaining -= 1
        return len(self)

    def drain_lines(self, seed: int | None = None) -> Iterator[CacheLine]:
        """The flush stream: every dirty line of every level.

        Upper levels drain before the LLC (as their content must reach memory
        through the flush too in the worst-case accounting); the order within
        the stream is shuffled, reflecting the paper's randomly-filled sparse
        contents.
        """
        self._sync_coherence()
        lines = [line for level in self.levels for line in level.dirty_lines()]
        make_rng(seed).shuffle(lines)
        yield from lines

    def _sync_coherence(self) -> None:
        """Propagate the freshest copy of every line down the hierarchy.

        The paper notes the coherence protocol brings the most recent version
        from upper-level caches at flush time; here that means duplicated
        inclusive copies must agree before the flush stream is formed.  This
        is on-chip traffic — no accounting.
        """
        for upper, lower in ((self.l1, self.l2), (self.l2, self.llc)):
            for line in upper.dirty_lines():
                below = lower.lookup(line.address, touch=False)
                if below is not None:
                    below.data = line.data
                    below.dirty = True

    def invalidate_all(self) -> None:
        for level in self.levels:
            level.clear()

    def restore_dirty(self, address: int, data: bytes | None) -> None:
        """Recovery hook: refill a recovered block into the LLC, dirty.

        The paper's recovery option 1 places verified CHV blocks back in the
        LLC in dirty state.
        """
        victim = self.llc.insert(CacheLine(address, data, dirty=True))
        if victim is not None and victim.dirty:
            self._do_writeback(victim)

    # ------------------------------------------------------------------
    # Run-time mode
    # ------------------------------------------------------------------

    def attach(self, fetch: FetchFn, writeback: WritebackFn) -> None:
        """Connect the hierarchy to a memory-side controller."""
        self.fetch = fetch
        self.writeback = writeback

    def read(self, address: int) -> bytes:
        """Run-time read of one line."""
        line = self.l1.lookup(address)
        if line is not None:
            self.access_counts["l1"] += 1
            return line.data
        if not self.inclusive:
            return self._read_non_inclusive(address)

        line = self.l2.lookup(address)
        if line is None:
            line = self.llc.lookup(address)
            if line is None:
                self.access_counts["miss"] += 1
                data = self._do_fetch(address)
                self._install_llc(CacheLine(address, data, dirty=False))
                line = self.llc.lookup(address, touch=False)
            else:
                self.access_counts["llc"] += 1
            self._install(self.l2, CacheLine(line.address, line.data, False))
        else:
            self.access_counts["l2"] += 1
        l2_line = self.l2.lookup(address, touch=False)
        self._install(self.l1, CacheLine(l2_line.address, l2_line.data, False))
        return self.l1.lookup(address, touch=False).data

    def _read_non_inclusive(self, address: int) -> bytes:
        """NINE (non-inclusive, non-exclusive) fill: hits anywhere copy the
        line into L1; misses fill L1 only, and dirty victims trickle down."""
        for name, level in (("l2", self.l2), ("llc", self.llc)):
            line = level.lookup(address)
            if line is not None:
                self.access_counts[name] += 1
                self._install(self.l1, CacheLine(address, line.data, False))
                return line.data
        self.access_counts["miss"] += 1
        data = self._do_fetch(address)
        self._install(self.l1, CacheLine(address, data, dirty=False))
        return data

    def write(self, address: int, data: bytes) -> None:
        """Run-time write of one full line (write-allocate into L1)."""
        self.read(address)
        line = self.l1.lookup(address, touch=False)
        line.data = data
        line.dirty = True
        # In the EPD model the whole hierarchy is persistent: visibility is
        # persistence, so no flush is needed — this is the paper's premise.

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _do_fetch(self, address: int) -> bytes:
        if self.fetch is None:
            raise ConfigError("hierarchy is not attached to a memory side")
        return self.fetch(address)

    def _do_writeback(self, line: CacheLine) -> None:
        if self.writeback is None:
            raise ConfigError("hierarchy is not attached to a memory side")
        self.writeback(line.address, line.data)

    def _install(self, level: SetAssociativeCache, line: CacheLine) -> None:
        """Install into L1 or L2; dirty victims move toward memory.

        Inclusive: the level below must already hold the address, so the
        victim merges into that copy.  Non-inclusive: the victim is inserted
        into the level below (possibly displacing another victim, which
        cascades), and clean victims are simply dropped.
        """
        victim = level.insert(line)
        if victim is None:
            return
        below = self.l2 if level is self.l1 else self.llc
        if self.inclusive:
            if level is self.l2:
                # Inclusion: an address leaving L2 must leave L1 too, and
                # the L1 copy may be the freshest version.
                copy = self.l1.invalidate(victim.address)
                if copy is not None and copy.dirty:
                    victim.data = copy.data
                    victim.dirty = True
            if not victim.dirty:
                return
            below_line = below.lookup(victim.address, touch=False)
            if below_line is None:
                raise ConfigError(
                    f"inclusion violated: {victim.address:#x} in "
                    f"{level.name} but not in {below.name}")
            below_line.data = victim.data
            below_line.dirty = True
            return
        if not victim.dirty:
            return
        existing = below.lookup(victim.address, touch=False)
        if existing is not None:
            existing.data = victim.data
            existing.dirty = True
        elif below is self.llc:
            self._install_llc(victim)
        else:
            self._install(below, victim)

    def _install_llc(self, line: CacheLine) -> None:
        """Install into the LLC; dirty victims are written back to memory.

        Under inclusion, evicting an LLC line also back-invalidates any
        upper-level copies (taking their fresher data with them); without
        inclusion there is nothing to invalidate.
        """
        victim = self.llc.insert(line)
        if victim is None:
            return
        data, dirty = victim.data, victim.dirty
        if self.inclusive:
            for upper in (self.l1, self.l2):
                copy = upper.invalidate(victim.address)
                if copy is not None and copy.dirty:
                    data, dirty = copy.data, True
        if dirty:
            self._do_writeback(CacheLine(victim.address, data, True))
