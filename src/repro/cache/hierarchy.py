"""Three-level inclusive cache hierarchy.

Supports the two modes the paper exercises:

* **run-time mode** — ordinary ``read``/``write`` traffic with write-back,
  write-allocate, inclusive caching; LLC evictions call the supplied
  ``writeback`` handler (the secure memory controller) and misses call
  ``fetch``;
* **drain mode** — :meth:`fill_worst_case` populates every line of every
  level dirty (the EPD worst case the hold-up budget is sized for) and
  :meth:`drain_lines` enumerates the flush stream; the paper's flushed-block
  total (295,936 for Table I) is the sum of line counts over all levels, so
  inclusive duplicates are flushed once per level that holds them.
"""

from collections import Counter
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any

from repro.cache.cache import SetAssociativeCache
from repro.cache.fill import (
    PageAllocator,
    make_allocator,
    worst_case_addresses,
    worst_case_addresses_bulk,
)
from repro.cache.line import CacheLine
from repro.cache.soa import SoALevel, decompose_sets
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.rng import Rng, make_rng
from repro.crypto.arena import tile_u64
from repro.crypto.batch import batching_enabled

FetchFn = Callable[[int], bytes]
WritebackFn = Callable[[int, bytes], None]

#: Sentinel distinguishing "absent" from a legitimate ``None`` payload in
#: the fused pass's lane probes (non-functional hierarchies carry ``None``).
_MISSING = object()


def _pattern_data(address: int) -> bytes:
    """Deterministic, address-unique 64 B payload for fills and tests."""
    return (address & ((1 << 64) - 1)).to_bytes(8, "little") * 8


class PendingFill:
    """Marker payload for a line whose fetch is deferred to epoch end.

    The fused epoch pass (:meth:`CacheHierarchy.replay_epoch`) installs one
    of these wherever the scalar pass would install freshly fetched data;
    :meth:`CacheHierarchy.resolve_pending` swaps in the real payloads once
    the memory side has executed the epoch's batched fetch stream.  Object
    identity (not value) ties a marker to its fetch — the hierarchy never
    branches on payload contents, so deferring them changes nothing else.
    """

    __slots__ = ("address",)

    def __init__(self, address: int):
        self.address = address

    def __repr__(self) -> str:
        return f"PendingFill({self.address:#x})"


def _raw_line(address: int, data: Any, dirty: bool) -> CacheLine:
    """A :class:`CacheLine` without ``__init__`` validation.

    The fused pass installs :class:`PendingFill` markers as payloads, which
    the dataclass length check would reject — and skipping per-line dataclass
    construction is part of the fast path's point.
    """
    line = CacheLine.__new__(CacheLine)
    line.address = address
    line.data = data
    line.dirty = dirty
    return line


class CacheHierarchy:
    """L1 / L2 / LLC hierarchy, inclusive (default) or non-inclusive.

    Commercial EPD systems support both (the paper notes eADR "already
    supports flushing all caches in non-inclusive LLC systems"); the drain
    worst case differs — inclusive hierarchies flush duplicated copies,
    non-inclusive ones flush one copy of more distinct lines — and Horus
    recovery option 2 (writeback) is the recommended mode for non-inclusive
    LLCs, whose capacity cannot hold the whole recovered hierarchy.
    """

    def __init__(self, config: SystemConfig, functional: bool = True,
                 inclusive: bool = True):
        self._config = config
        self._functional = functional
        self.inclusive = inclusive
        self.l1 = SetAssociativeCache(config.l1)
        self.l2 = SetAssociativeCache(config.l2)
        self.llc = SetAssociativeCache(config.llc)
        self.fetch: FetchFn | None = None
        self.writeback: WritebackFn | None = None
        self.access_counts: Counter[str] = Counter()
        """Where run-time accesses were served: 'l1' / 'l2' / 'llc' /
        'miss'.  Consumed by the run-time performance model."""
        # Struct-of-arrays epoch state: None outside an epoch session.
        # While set, the level dicts are empty and the SoA lanes are the
        # sole representation (see cache/soa.py); every scalar entry point
        # below materializes first via _ensure_materialized().
        self._soa: "tuple[SoALevel, SoALevel, SoALevel] | None" = None

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def levels(self) -> tuple[SetAssociativeCache, ...]:
        return (self.l1, self.l2, self.llc)

    def __len__(self) -> int:
        self._ensure_materialized()
        return sum(len(level) for level in self.levels)

    def dirty_line_count(self) -> int:
        self._ensure_materialized()
        return sum(1 for level in self.levels for _ in level.dirty_lines())

    # ------------------------------------------------------------------
    # Struct-of-arrays epoch sessions
    # ------------------------------------------------------------------

    def dematerialize(self) -> None:
        """Flatten every level into its struct-of-arrays form.

        Idempotent: entering twice is a no-op.  While dematerialized the
        level dicts are empty — state lives in the SoA lanes until
        :meth:`materialize` rebuilds the dict-of-``CacheLine`` form.
        """
        if self._soa is not None:
            return
        self._soa = (SoALevel.from_cache(self.l1),
                     SoALevel.from_cache(self.l2),
                     SoALevel.from_cache(self.llc))

    def materialize(self) -> None:
        """Rebuild the dict-of-``CacheLine`` form from the SoA lanes.

        A no-op outside a session.  Orders (set order, LRU→MRU), values,
        dirty bits, and payload-object identity (:class:`PendingFill`
        markers included) are exactly what the dict pass would have left.
        """
        soa = self._soa
        if soa is None:
            return
        self._soa = None
        for soa_level, level in zip(soa, self.levels):
            soa_level.restore(level)

    @contextmanager
    def epoch_session(self) -> Iterator["CacheHierarchy"]:
        """Hold the hierarchy in SoA form across many :meth:`replay_epoch`
        calls, amortizing the dematerialize/materialize boundary over a
        whole trace instead of paying it per epoch."""
        if self._soa is not None:
            raise ConfigError("epoch sessions do not nest")
        self.dematerialize()
        try:
            yield self
        finally:
            self.materialize()

    def _ensure_materialized(self) -> None:
        """Scalar entry points see dict state even mid-session.

        Drains, fills, recovery, and the fault/attack paths all operate on
        the dict-of-``CacheLine`` representation; any such call landing
        inside an epoch session materializes first (the session's exit
        materialize then becomes a no-op-then-rebuild on next epoch).
        """
        if self._soa is not None:
            self.materialize()

    # ------------------------------------------------------------------
    # Drain-mode support
    # ------------------------------------------------------------------

    def fill_worst_case(self, seed: int | None = None,
                        batched: bool | None = None) -> int:
        """Populate every line of every level dirty, worst-case sparse.

        Inclusive: the LLC receives a full honest fill (every set, every way)
        with each line in its own 4 KiB counter page; L1 and L2 are filled
        with subsets of the LLC's addresses (preserving inclusion) greedily
        by their own set mapping.  Non-inclusive: every level receives its
        own full fill of *distinct* addresses (one shared page allocator
        keeps counter pages unique hierarchy-wide).  Returns the number of
        lines installed.

        ``batched`` (default: :func:`~repro.crypto.batch.batching_enabled`)
        selects a fast path that performs the same inserts through direct
        set operations — same allocator, same shuffle, same final lines,
        LRU orders and statistics, minus the per-line method and dataclass
        overhead that dominates paper-scale episode setup.
        """
        self.invalidate_all()  # materializes any active epoch session
        allocator = make_allocator(self._config)
        rng = make_rng(seed)
        if batching_enabled(batched):
            return self._fill_worst_case_batched(allocator, rng)

        if not self.inclusive:
            for level in self.levels:
                addresses = list(worst_case_addresses(level.config, allocator))
                rng.shuffle(addresses)
                for address in addresses:
                    data = _pattern_data(address) if self._functional else None
                    if level.insert(CacheLine(address, data, dirty=True)) \
                            is not None:
                        raise ConfigError(
                            "worst-case fill must not evict")
            return len(self)

        llc_addresses = list(worst_case_addresses(self._config.llc, allocator))
        rng.shuffle(llc_addresses)

        for address in llc_addresses:
            data = _pattern_data(address) if self._functional else None
            if self.llc.insert(CacheLine(address, data, dirty=True)) is not None:
                raise ConfigError("worst-case fill must not evict from LLC")

        for upper in (self.l2, self.l1):
            remaining = upper.config.num_lines
            for address in llc_addresses:
                if remaining == 0:
                    break
                if upper.set_occupancy(upper.set_index(address)) >= upper.config.ways:
                    continue
                if upper.contains(address):
                    continue
                data = _pattern_data(address) if self._functional else None
                upper.insert(CacheLine(address, data, dirty=True))
                remaining -= 1

        return len(self)

    def _fill_worst_case_batched(self, allocator: PageAllocator,
                                 rng: Rng) -> int:
        """The :meth:`fill_worst_case` fast path: identical address streams
        (same allocator draws, same shuffles) installed with direct set-dict
        operations instead of per-line :meth:`SetAssociativeCache.insert`
        calls.  Insert semantics are transcribed exactly — duplicates
        replace in place and refresh LRU; a full set raises after evicting,
        as the scalar insert would."""
        functional = self._functional
        new_line = CacheLine.__new__

        def bulk_insert(level: SetAssociativeCache,
                        addresses: list[int], message: str) -> None:
            sets = level._sets
            line_size = level.config.line_size
            num_sets = level.config.num_sets
            ways = level.config.ways
            # One tiled buffer holds every pattern payload; per-line bytes
            # are single slices instead of to_bytes + repeat round-trips.
            payloads = tile_u64(addresses, 8) if functional else None
            offset = 0
            for address in addresses:
                line = new_line(CacheLine)
                line.address = address
                line.data = payloads[offset:offset + 64] \
                    if payloads is not None else None
                line.dirty = True
                offset += 64
                cache_set = sets[(address // line_size) % num_sets]
                if address in cache_set:
                    del cache_set[address]
                    cache_set[address] = line
                    continue
                if len(cache_set) >= ways:
                    del cache_set[next(iter(cache_set))]
                    cache_set[address] = line
                    raise ConfigError(message)
                cache_set[address] = line

        if not self.inclusive:
            for level in self.levels:
                addresses = worst_case_addresses_bulk(level.config, allocator)
                rng.shuffle(addresses)
                bulk_insert(level, addresses, "worst-case fill must not evict")
            return len(self)

        llc_addresses = worst_case_addresses_bulk(self._config.llc, allocator)
        rng.shuffle(llc_addresses)
        bulk_insert(self.llc, llc_addresses,
                    "worst-case fill must not evict from LLC")

        for upper in (self.l2, self.l1):
            sets = upper._sets
            line_size = upper.config.line_size
            num_sets = upper.config.num_sets
            ways = upper.config.ways
            remaining = upper.config.num_lines
            for address in llc_addresses:
                if remaining == 0:
                    break
                cache_set = sets[(address // line_size) % num_sets]
                if len(cache_set) >= ways or address in cache_set:
                    continue
                cache_set[address] = _raw_line(
                    address,
                    _pattern_data(address) if functional else None, True)
                remaining -= 1

        return len(self)

    def fill_sequential(self, base: int = 0) -> int:
        """Populate every line dirty with a *contiguous* footprint.

        The locality best case: 64 consecutive lines share each counter
        block, maximizing metadata-cache hit rates during a baseline drain.
        Used by the spatial-locality ablation as the opposite pole of
        :meth:`fill_worst_case`.
        """
        self.invalidate_all()
        addresses = []
        for i in range(self._config.llc.num_lines):
            addresses.append(base + i * self._config.llc.line_size)
        for address in addresses:
            data = _pattern_data(address) if self._functional else None
            if self.llc.insert(CacheLine(address, data, dirty=True)) is not None:
                raise ConfigError("sequential fill must not evict from LLC")
        for upper in (self.l2, self.l1):
            remaining = upper.config.num_lines
            for address in addresses:
                if remaining == 0:
                    break
                if upper.set_occupancy(upper.set_index(address)) >= upper.config.ways:
                    continue
                data = _pattern_data(address) if self._functional else None
                upper.insert(CacheLine(address, data, dirty=True))
                remaining -= 1
        return len(self)

    def drain_lines(self, seed: int | None = None) -> Iterator[CacheLine]:
        """The flush stream: every dirty line of every level.

        Upper levels drain before the LLC (as their content must reach memory
        through the flush too in the worst-case accounting); the order within
        the stream is shuffled, reflecting the paper's randomly-filled sparse
        contents.
        """
        self._ensure_materialized()
        self._sync_coherence()
        lines = [line for level in self.levels for line in level.dirty_lines()]
        make_rng(seed).shuffle(lines)
        yield from lines

    def _sync_coherence(self) -> None:
        """Propagate the freshest copy of every line down the hierarchy.

        The paper notes the coherence protocol brings the most recent version
        from upper-level caches at flush time; here that means duplicated
        inclusive copies must agree before the flush stream is formed.  This
        is on-chip traffic — no accounting.
        """
        for upper, lower in ((self.l1, self.l2), (self.l2, self.llc)):
            for line in upper.dirty_lines():
                below = lower.lookup(line.address, touch=False)
                if below is not None:
                    below.data = line.data
                    below.dirty = True

    def invalidate_all(self) -> None:
        self._ensure_materialized()
        for level in self.levels:
            level.clear()

    def restore_dirty(self, address: int, data: bytes | None) -> None:
        """Recovery hook: refill a recovered block into the LLC, dirty.

        The paper's recovery option 1 places verified CHV blocks back in the
        LLC in dirty state.
        """
        self._ensure_materialized()
        victim = self.llc.insert(CacheLine(address, data, dirty=True))
        if victim is not None and victim.dirty:
            self._do_writeback(victim)

    # ------------------------------------------------------------------
    # Run-time mode
    # ------------------------------------------------------------------

    def attach(self, fetch: FetchFn, writeback: WritebackFn) -> None:
        """Connect the hierarchy to a memory-side controller."""
        self.fetch = fetch
        self.writeback = writeback

    def read(self, address: int) -> bytes:
        """Run-time read of one line."""
        self._ensure_materialized()
        line = self.l1.lookup(address)
        if line is not None:
            self.access_counts["l1"] += 1
            # Payloads are None only in non-functional (counting-only)
            # runs, whose callers ignore read results entirely.
            return line.data  # type: ignore[return-value]
        if not self.inclusive:
            return self._read_non_inclusive(address)

        line = self.l2.lookup(address)
        if line is None:
            line = self.llc.lookup(address)
            if line is None:
                self.access_counts["miss"] += 1
                data = self._do_fetch(address)
                self._install_llc(CacheLine(address, data, dirty=False))
                line = self.llc.lookup(address, touch=False)
                assert line is not None  # just installed
            else:
                self.access_counts["llc"] += 1
            self._install(self.l2, CacheLine(line.address, line.data, False))
        else:
            self.access_counts["l2"] += 1
        l2_line = self.l2.lookup(address, touch=False)
        assert l2_line is not None  # resident: hit above or just installed
        self._install(self.l1, CacheLine(l2_line.address, l2_line.data, False))
        line = self.l1.lookup(address, touch=False)
        assert line is not None  # just installed
        return line.data  # type: ignore[return-value]

    def _read_non_inclusive(self, address: int) -> bytes:
        """NINE (non-inclusive, non-exclusive) fill: hits anywhere copy the
        line into L1; misses fill L1 only, and dirty victims trickle down."""
        for name, level in (("l2", self.l2), ("llc", self.llc)):
            line = level.lookup(address)
            if line is not None:
                self.access_counts[name] += 1
                self._install(self.l1, CacheLine(address, line.data, False))
                return line.data  # type: ignore[return-value]
        self.access_counts["miss"] += 1
        data = self._do_fetch(address)
        self._install(self.l1, CacheLine(address, data, dirty=False))
        return data

    def write(self, address: int, data: bytes) -> None:
        """Run-time write of one full line (write-allocate into L1)."""
        self.read(address)
        line = self.l1.lookup(address, touch=False)
        assert line is not None  # read() write-allocated it
        line.data = data
        line.dirty = True
        # In the EPD model the whole hierarchy is persistent: visibility is
        # persistence, so no flush is needed — this is the paper's premise.

    # ------------------------------------------------------------------
    # Batched run-time mode (fused epoch replay)
    # ------------------------------------------------------------------

    def replay_epoch(self, ops: "list[tuple[str, int, bytes | None]]") \
            -> "tuple[list[tuple[str, int, bytes | None]], list[PendingFill]]":
        """Run one epoch of trace ops through the caches in a fused pass.

        ``ops`` holds ``("w", address, data)`` / ``("r", address, None)``
        tuples (block-aligned addresses).  The pass transcribes
        :meth:`read` / :meth:`write` / :meth:`_install` / :meth:`_install_llc`
        against the set dicts directly — every lookup, LRU touch, hit/miss
        increment and ``access_counts`` bump lands exactly where the scalar
        methods put it — but *defers* the memory side: misses install
        :class:`PendingFill` markers and the would-be fetch/writeback calls
        are collected, in issue order, into the returned ``mem_ops`` list
        (same tuple shape as ``ops``).  The caller executes ``mem_ops``
        against the memory side (e.g.
        :meth:`~repro.secure.controller.SecureMemoryController.run_ops_batch`)
        and hands each fetch result back via :meth:`resolve_pending`.

        The deferral is sound because cache control flow never inspects
        payload bytes, and dirty lines always hold real payloads (a line
        only becomes dirty through a trace write, which overwrites its
        marker), so emitted writebacks are marker-free.

        The pass runs on the struct-of-arrays form (:mod:`repro.cache.soa`):
        a direct call dematerializes on entry and materializes before
        returning; callers replaying many epochs wrap the loop in
        :meth:`epoch_session` to pay the boundary once per trace.
        """
        if not self.inclusive:
            raise ConfigError(
                "fused epoch replay requires an inclusive hierarchy")
        if self._soa is not None:
            return self._replay_epoch_soa(ops)
        self.dematerialize()
        try:
            return self._replay_epoch_soa(ops)
        finally:
            self.materialize()

    def _replay_epoch_soa(self, ops: "list[tuple[str, int, bytes | None]]") \
            -> "tuple[list[tuple[str, int, bytes | None]], list[PendingFill]]":
        """The fused pass on SoA lanes: transcribes the dict pass exactly
        (every hit/miss increment, ``access_counts`` bump, LRU movement,
        victim choice, and emission lands in the same place), with an LRU
        touch as a pop-and-reinsert on the payload lane, victim selection
        as the lane's O(1) head pop, and dirtiness as one hash probe on
        the dirty lane."""
        soa = self._soa
        assert soa is not None
        soa1, soa2, soa3 = soa
        l1, l2, llc = self.l1, self.l2, self.llc
        sets1, sets2, sets3 = soa1.sets, soa2.sets, soa3.sets
        dty1, dty2, dty3 = soa1.dirty, soa2.dirty, soa3.dirty
        w1, w2, w3 = soa1.ways, soa2.ways, soa3.ways
        ls1, ns1 = soa1.line_size, soa1.num_sets
        ls2, ns2 = soa2.line_size, soa2.num_sets
        ls3, ns3 = soa3.line_size, soa3.num_sets
        # One bulk pass per level turns every op address into its set index
        # (vectorized under arena acceleration), and one C-level map per
        # level turns the index lane into the payload-lane dicts themselves;
        # the scalar core below then runs divmod-free on the trace addresses
        # (victim merges recompute sets for *victim* addresses, which the
        # lanes cannot cover — those are off the per-op path).
        lane1, lane2, lane3 = decompose_sets(
            [op[1] for op in ops], ((ls1, ns1), (ls2, ns2), (ls3, ns3)))
        set1s = map(sets1.__getitem__, lane1)
        set2s = map(sets2.__getitem__, lane2)
        set3s = map(sets3.__getitem__, lane3)
        missing = _MISSING
        new_marker = PendingFill.__new__
        marker_cls = PendingFill
        mem_ops: list[tuple[str, int, bytes | None]] = []
        fills: list[PendingFill] = []
        emit = mem_ops.append
        add_fill = fills.append
        l1_hits = l1_misses = l2_hits = l2_misses = 0
        llc_hits = llc_misses = 0
        c_l1 = c_l2 = c_llc = c_miss = 0

        try:
            for (kind, address, payload), set1, set2, set3 in zip(
                    ops, set1s, set2s, set3s):
                hit = set1.pop(address, missing)
                if hit is not missing:
                    # read(): L1 hit — touch is a pop-and-reinsert (the
                    # pop doubles as the presence probe).
                    l1_hits += 1
                    set1[address] = hit
                    c_l1 += 1
                else:
                    l1_misses += 1
                    lower_data = set2.pop(address, missing)
                    if lower_data is missing:
                        l2_misses += 1
                        lower_data = set3.pop(address, missing)
                        if lower_data is missing:
                            # read(): full miss — deferred fetch, then
                            # _install_llc + the touch=False re-lookup.
                            llc_misses += 1
                            c_miss += 1
                            marker = new_marker(marker_cls)
                            marker.address = address
                            add_fill(marker)
                            emit(("r", address, None))
                            lower_data = marker
                            if len(set3) >= w3:
                                vaddr = next(iter(set3))
                                vdata = set3.pop(vaddr)
                                vdirty = vaddr in dty3
                                if vdirty:
                                    dty3.remove(vaddr)
                                set3[address] = marker
                                # Inclusion: back-invalidate upper copies,
                                # taking their fresher data (L1 checked
                                # first, an L2 copy overrides — exactly the
                                # scalar _install_llc order).
                                copy = sets1[vaddr // ls1 % ns1].pop(
                                    vaddr, missing)
                                if copy is not missing and vaddr in dty1:
                                    dty1.remove(vaddr)
                                    vdata = copy
                                    vdirty = True
                                copy = sets2[vaddr // ls2 % ns2].pop(
                                    vaddr, missing)
                                if copy is not missing and vaddr in dty2:
                                    dty2.remove(vaddr)
                                    vdata = copy
                                    vdirty = True
                                if vdirty:
                                    emit(("w", vaddr, vdata))
                            else:
                                set3[address] = marker
                            llc_hits += 1
                        else:
                            # read(): LLC hit — the probing pop plus this
                            # reinsert is the LRU touch.
                            llc_hits += 1
                            set3[address] = lower_data
                            c_llc += 1
                        # _install(l2, ...) + the touch=False re-lookup.
                        if len(set2) >= w2:
                            vaddr = next(iter(set2))
                            vdata = set2.pop(vaddr)
                            vdirty = vaddr in dty2
                            if vdirty:
                                dty2.remove(vaddr)
                            set2[address] = lower_data
                            copy = sets1[vaddr // ls1 % ns1].pop(
                                vaddr, missing)
                            if copy is not missing and vaddr in dty1:
                                dty1.remove(vaddr)
                                vdata = copy
                                vdirty = True
                            if vdirty:
                                below = sets3[vaddr // ls3 % ns3]
                                if vaddr not in below:
                                    llc_misses += 1
                                    raise ConfigError(
                                        f"inclusion violated: {vaddr:#x} in "
                                        f"{l2.name} but not in {llc.name}")
                                llc_hits += 1
                                below[vaddr] = vdata
                                dty3.add(vaddr)
                        else:
                            set2[address] = lower_data
                    else:
                        # read(): L2 hit — the probing pop plus this
                        # reinsert is the LRU touch.
                        l2_hits += 1
                        set2[address] = lower_data
                        c_l2 += 1
                    # read()'s unconditional touch=False L2 re-lookup.
                    l2_hits += 1
                    # _install(l1, ...) + the touch=False re-lookup.
                    if len(set1) >= w1:
                        vaddr = next(iter(set1))
                        vdata = set1.pop(vaddr)
                        vdirty = vaddr in dty1
                        if vdirty:
                            dty1.remove(vaddr)
                        set1[address] = lower_data
                        if vdirty:
                            below = sets2[vaddr // ls2 % ns2]
                            if vaddr not in below:
                                l2_misses += 1
                                raise ConfigError(
                                    f"inclusion violated: {vaddr:#x} in "
                                    f"{l1.name} but not in {l2.name}")
                            l2_hits += 1
                            below[vaddr] = vdata
                            dty2.add(vaddr)
                    else:
                        set1[address] = lower_data
                    l1_hits += 1
                if kind == "w":
                    # write(): the touch=False L1 re-lookup, then mutate
                    # in place (a value store keeps the LRU order).
                    l1_hits += 1
                    set1[address] = payload
                    dty1.add(address)
        finally:
            l1.hits += l1_hits
            l1.misses += l1_misses
            l2.hits += l2_hits
            l2.misses += l2_misses
            llc.hits += llc_hits
            llc.misses += llc_misses
            counts = self.access_counts
            if c_l1:
                counts["l1"] += c_l1
            if c_l2:
                counts["l2"] += c_l2
            if c_llc:
                counts["llc"] += c_llc
            if c_miss:
                counts["miss"] += c_miss
        return mem_ops, fills

    def resolve_pending(self, fills: "list[PendingFill]",
                        fetched: "list[bytes | None]") -> None:
        """Swap every resident epoch marker for its fetched payload.

        ``fetched`` aligns with ``fills`` (the order markers were emitted by
        :meth:`replay_epoch`).  Markers evicted clean during the epoch are
        simply gone; every surviving one is replaced, so no marker outlives
        its epoch.
        """
        if len(fills) != len(fetched):
            raise ConfigError("fills and fetched results must align")
        if not fills:
            return
        # A marker only ever resides at lines whose address matches it:
        # payloads move between levels strictly along same-address
        # install/merge chains, and a written line stops being a marker.
        # Each fill therefore resolves with one lookup per level instead
        # of a full-hierarchy scan — against the SoA index/payload lanes
        # inside an epoch session, the set dicts otherwise.
        soa = self._soa
        if soa is not None:
            lanes = [(level.sets, level.line_size, level.num_sets)
                     for level in soa]
            for marker, data in zip(fills, fetched):
                address = marker.address
                for sets, line_size, num_sets in lanes:
                    lane = sets[address // line_size % num_sets]
                    if lane.get(address) is marker:
                        lane[address] = data
            return
        levels = [(level._sets, level.config.line_size,
                   level.config.num_sets) for level in self.levels]
        for marker, data in zip(fills, fetched):
            address = marker.address
            for sets, line_size, num_sets in levels:
                line = sets[(address // line_size) % num_sets].get(address)
                if line is not None and line.data is marker:
                    line.data = data

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _do_fetch(self, address: int) -> bytes:
        if self.fetch is None:
            raise ConfigError("hierarchy is not attached to a memory side")
        return self.fetch(address)

    def _do_writeback(self, line: CacheLine) -> None:
        if self.writeback is None:
            raise ConfigError("hierarchy is not attached to a memory side")
        # Dirty lines carry real payloads in functional runs; handlers in
        # counting-only runs never read the bytes.
        self.writeback(line.address, line.data)  # type: ignore[arg-type]

    def _install(self, level: SetAssociativeCache, line: CacheLine) -> None:
        """Install into L1 or L2; dirty victims move toward memory.

        Inclusive: the level below must already hold the address, so the
        victim merges into that copy.  Non-inclusive: the victim is inserted
        into the level below (possibly displacing another victim, which
        cascades), and clean victims are simply dropped.
        """
        victim = level.insert(line)
        if victim is None:
            return
        below = self.l2 if level is self.l1 else self.llc
        if self.inclusive:
            if level is self.l2:
                # Inclusion: an address leaving L2 must leave L1 too, and
                # the L1 copy may be the freshest version.
                copy = self.l1.invalidate(victim.address)
                if copy is not None and copy.dirty:
                    victim.data = copy.data
                    victim.dirty = True
            if not victim.dirty:
                return
            below_line = below.lookup(victim.address, touch=False)
            if below_line is None:
                raise ConfigError(
                    f"inclusion violated: {victim.address:#x} in "
                    f"{level.name} but not in {below.name}")
            below_line.data = victim.data
            below_line.dirty = True
            return
        if not victim.dirty:
            return
        existing = below.lookup(victim.address, touch=False)
        if existing is not None:
            existing.data = victim.data
            existing.dirty = True
        elif below is self.llc:
            self._install_llc(victim)
        else:
            self._install(below, victim)

    def _install_llc(self, line: CacheLine) -> None:
        """Install into the LLC; dirty victims are written back to memory.

        Under inclusion, evicting an LLC line also back-invalidates any
        upper-level copies (taking their fresher data with them); without
        inclusion there is nothing to invalidate.
        """
        victim = self.llc.insert(line)
        if victim is None:
            return
        data, dirty = victim.data, victim.dirty
        if self.inclusive:
            for upper in (self.l1, self.l2):
                copy = upper.invalidate(victim.address)
                if copy is not None and copy.dirty:
                    data, dirty = copy.data, True
        if dirty:
            self._do_writeback(CacheLine(victim.address, data, True))
