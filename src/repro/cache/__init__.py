"""Cache substrate: lines, set-associative caches, hierarchy, fill patterns."""

from repro.cache.cache import SetAssociativeCache
from repro.cache.fill import (
    PageAllocator,
    make_allocator,
    page_of,
    sequential_addresses,
    strided_addresses,
    worst_case_addresses,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import CacheLine

__all__ = [
    "SetAssociativeCache",
    "CacheHierarchy",
    "CacheLine",
    "PageAllocator",
    "make_allocator",
    "page_of",
    "sequential_addresses",
    "strided_addresses",
    "worst_case_addresses",
]
