"""Cache line representation."""

from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE


@dataclass(slots=True)
class CacheLine:
    """One 64 B line: tag address, payload, and dirty state.

    ``data`` may be ``None`` when the simulation runs in counting-only
    (non-functional) mode; all bookkeeping still works.
    """

    address: int
    data: bytes | None = None
    dirty: bool = False

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) != CACHE_LINE_SIZE:
            raise ValueError(
                f"cache line payload must be {CACHE_LINE_SIZE} B, "
                f"got {len(self.data)}")

    def copy(self) -> "CacheLine":
        return CacheLine(self.address, self.data, self.dirty)
