"""Command-line interface.

Subcommands::

    python -m repro info        [--scale N]             # config & layout
    python -m repro simulate    [--scheme S] [--scale N]  # drain + recovery
    python -m repro audit       [--scale N] [--tamper ADDR]
    python -m repro experiments [runner args...]        # regenerate figures

``python -m repro`` with no subcommand runs the experiment runner, which is
the most common use.  Runner flags are forwarded verbatim — notably
``--jobs N`` (parallel fan-out across worker processes), ``--no-cache`` /
``--refresh`` (persistent result cache under ``results/.cache/``), and
``--profile`` (per-experiment timing and cache-hit accounting).
"""

import argparse
import sys

from repro.common.config import SystemConfig
from repro.common.units import format_bytes
from repro.core.analytic import horus_drain_seconds
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.mem.regions import MemoryLayout
from repro.stats.hitrate import hit_rate_rows
from repro.stats.report import format_table

SUBCOMMANDS = ("info", "simulate", "audit", "experiments")


def cmd_info(args) -> int:
    config = SystemConfig.scaled(args.scale)
    layout = MemoryLayout(config)
    print(f"configuration: 1/{args.scale} of Table I")
    print(format_table(
        ["cache", "size", "ways", "lines"],
        [[c.name, format_bytes(c.size), c.ways, c.num_lines]
         for c in config.cache_levels]))
    print(f"\nworst-case flushed blocks: {config.total_cache_lines:,}")
    print(f"worst-case fill stride: {format_bytes(config.worst_case_stride)}")
    print(f"integrity tree: {layout.num_tree_levels} node levels over "
          f"{layout.num_counter_blocks:,} counter blocks\n")
    print(format_table(
        ["region", "base", "size"],
        [[r.name, f"{r.base:#x}", format_bytes(r.size)]
         for r in layout.regions]))
    print("\nclosed-form worst-case Horus drain:")
    for dlm in (False, True):
        name = "horus-dlm" if dlm else "horus-slm"
        print(f"  {name}: {horus_drain_seconds(config, dlm) * 1e3:.3f} ms")
    return 0


def cmd_simulate(args) -> int:
    config = SystemConfig.scaled(args.scale)
    system = SecureEpdSystem(config, scheme=args.scheme)
    filled = system.fill_worst_case(seed=args.seed)
    report = system.crash(seed=args.seed + 1)
    print(f"scheme {args.scheme}: drained {filled:,} worst-case lines")
    print(format_table(
        ["metric", "value"],
        [["memory requests", report.total_memory_requests],
         ["  reads", report.total_reads],
         ["  writes", report.total_writes],
         ["MAC calculations", report.total_macs],
         ["drain time (ms)", report.milliseconds]]))
    print("\nwrite breakdown:")
    print(format_table(
        ["kind", "count"],
        [[str(kind), count]
         for kind, count in sorted(report.stats.writes.items(),
                                   key=lambda kv: kv[0].value) if count]))
    recovery = system.recover()
    if recovery is not None:
        print(f"\nrecovery: {recovery.blocks_restored:,} blocks in "
              f"{recovery.milliseconds:.3f} ms")
    print("\ncache hit rates:")
    print(format_table(["cache", "hits", "misses", "rate"],
                       hit_rate_rows(system)))
    return 0


def cmd_audit(args) -> int:
    from repro.attacks.adversary import Adversary
    from repro.secure.audit import audit_memory

    config = SystemConfig.scaled(args.scale)
    system = SecureEpdSystem(config, scheme="base-eu")
    for i in range(args.blocks):
        system.controller.write(i * 4096, i.to_bytes(8, "little") * 8)
    system.controller.flush_metadata()
    system.controller.drop_volatile_state()
    if args.tamper is not None:
        Adversary(system.nvm).tamper(args.tamper)
        print(f"tampered with block {args.tamper:#x}")
    report = audit_memory(system.controller)
    print(f"audited {report.blocks_checked} blocks: "
          f"{'clean' if report.clean else 'FAILURES'}")
    for address, reason in report.failures:
        print(f"  {address:#x}: {reason}")
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # No subcommand (or a runner flag/experiment name): run the experiments.
    if not argv or argv[0] not in SUBCOMMANDS:
        from repro.experiments.runner import main as runner_main
        return runner_main(argv)
    if argv[0] == "experiments":
        from repro.experiments.runner import main as runner_main
        return runner_main(argv[1:])

    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print configuration and layout")
    info.add_argument("--scale", type=int, default=16)
    info.set_defaults(func=cmd_info)

    simulate = sub.add_parser("simulate",
                              help="worst-case drain + recovery")
    simulate.add_argument("--scheme", choices=SCHEMES, default="horus-dlm")
    simulate.add_argument("--scale", type=int, default=64)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=cmd_simulate)

    audit = sub.add_parser("audit", help="full-memory integrity audit")
    audit.add_argument("--scale", type=int, default=128)
    audit.add_argument("--blocks", type=int, default=16)
    audit.add_argument("--tamper", type=lambda v: int(v, 0), default=None)
    audit.set_defaults(func=cmd_audit)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
