"""Command-line interface.

Subcommands::

    python -m repro info        [--scale N]             # config & layout
    python -m repro simulate    [--scheme S] [--scale N]  # drain + recovery
    python -m repro audit       [--scale N] [--tamper ADDR]
    python -m repro shards      [--shards N] [--jobs N]  # sharded fleet run
    python -m repro experiments [runner args...]        # regenerate figures

``python -m repro`` with no subcommand runs the experiment runner, which is
the most common use.  Runner flags are forwarded verbatim — notably
``--jobs N`` (parallel fan-out across worker processes), ``--no-cache`` /
``--refresh`` (persistent result cache under ``results/.cache/``), and
``--profile`` (per-experiment timing and cache-hit accounting).
"""

import argparse
import sys

from repro.common.config import SystemConfig
from repro.common.rng import spread_seed
from repro.common.units import format_bytes
from repro.core.analytic import horus_drain_seconds
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.mem.regions import MemoryLayout
from repro.stats.hitrate import hit_rate_rows
from repro.stats.report import format_table

SUBCOMMANDS = ("info", "simulate", "audit", "shards", "experiments")


def cmd_info(args) -> int:
    config = SystemConfig.scaled(args.scale)
    layout = MemoryLayout(config)
    print(f"configuration: 1/{args.scale} of Table I")
    print(format_table(
        ["cache", "size", "ways", "lines"],
        [[c.name, format_bytes(c.size), c.ways, c.num_lines]
         for c in config.cache_levels]))
    print(f"\nworst-case flushed blocks: {config.total_cache_lines:,}")
    print(f"worst-case fill stride: {format_bytes(config.worst_case_stride)}")
    print(f"integrity tree: {layout.num_tree_levels} node levels over "
          f"{layout.num_counter_blocks:,} counter blocks\n")
    print(format_table(
        ["region", "base", "size"],
        [[r.name, f"{r.base:#x}", format_bytes(r.size)]
         for r in layout.regions]))
    print("\nclosed-form worst-case Horus drain:")
    for dlm in (False, True):
        name = "horus-dlm" if dlm else "horus-slm"
        print(f"  {name}: {horus_drain_seconds(config, dlm) * 1e3:.3f} ms")
    return 0


def cmd_simulate(args) -> int:
    config = SystemConfig.scaled(args.scale)
    system = SecureEpdSystem(config, scheme=args.scheme)
    filled = system.fill_worst_case(seed=args.seed)
    report = system.crash(seed=spread_seed(args.seed, "drain"))
    print(f"scheme {args.scheme}: drained {filled:,} worst-case lines")
    print(format_table(
        ["metric", "value"],
        [["memory requests", report.total_memory_requests],
         ["  reads", report.total_reads],
         ["  writes", report.total_writes],
         ["MAC calculations", report.total_macs],
         ["drain time (ms)", report.milliseconds]]))
    print("\nwrite breakdown:")
    print(format_table(
        ["kind", "count"],
        [[str(kind), count]
         for kind, count in sorted(report.stats.writes.items(),
                                   key=lambda kv: kv[0].value) if count]))
    recovery = system.recover()
    if recovery is not None:
        print(f"\nrecovery: {recovery.blocks_restored:,} blocks in "
              f"{recovery.milliseconds:.3f} ms")
    print("\ncache hit rates:")
    print(format_table(["cache", "hits", "misses", "rate"],
                       hit_rate_rows(system)))
    return 0


def cmd_audit(args) -> int:
    from repro.attacks.adversary import Adversary
    from repro.secure.audit import audit_memory

    config = SystemConfig.scaled(args.scale)
    system = SecureEpdSystem(config, scheme="base-eu")
    for i in range(args.blocks):
        system.controller.write(i * 4096, i.to_bytes(8, "little") * 8)
    system.controller.flush_metadata()
    system.controller.drop_volatile_state()
    if args.tamper is not None:
        Adversary(system.nvm).tamper(args.tamper)
        print(f"tampered with block {args.tamper:#x}")
    report = audit_memory(system.controller)
    print(f"audited {report.blocks_checked} blocks: "
          f"{'clean' if report.clean else 'FAILURES'}")
    for address, reason in report.failures:
        print(f"  {address:#x}: {reason}")
    return 0 if report.clean else 1


def cmd_shards(args) -> int:
    from repro.sharding.drain import make_drain_policy
    from repro.sharding.pool import (
        make_plan,
        run_pooled,
        ShardRunSpec,
    )

    config = SystemConfig.scaled(args.scale)
    plan = make_plan(config, args.shards, args.tenants, args.ops,
                     master_seed=args.seed)
    spec = ShardRunSpec(
        config=config, num_shards=args.shards, scheme=args.scheme,
        plan=plan, drain_seed=spread_seed(args.seed, "drain"),
        drain_policy=args.drain_policy, power_budget_w=args.power_budget)
    results = run_pooled(spec, jobs=args.jobs)
    print(f"fleet: {args.shards} shards x {args.scheme}, "
          f"{args.tenants} tenants, {args.ops:,} ops "
          f"(policy {args.drain_policy})")
    print(format_table(
        ["shard", "ops", "reads", "writes", "drain ms", "drain J",
         "nvm sha256"],
        [[r.observables.shard, r.observables.ops, r.observables.op_reads,
          r.observables.op_writes, r.drain_seconds * 1e3,
          r.drain_energy_j, r.observables.nvm_sha256[:16]]
         for r in results]))
    schedule = make_drain_policy(args.drain_policy, args.power_budget) \
        .schedule_measured([(r.drain_seconds, r.drain_energy_j)
                            for r in results])
    total_ops = sum(r.observables.ops for r in results)
    print(f"\nfleet totals: {total_ops:,} routed ops, "
          f"{schedule.energy_j:.4f} J drain energy, "
          f"{schedule.milliseconds:.3f} ms {schedule.policy} drain wall "
          f"at {schedule.peak_power_w:.2f} W peak")
    return 0 if total_ops == args.ops else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # No subcommand (or a runner flag/experiment name): run the experiments.
    if not argv or argv[0] not in SUBCOMMANDS:
        from repro.experiments.runner import main as runner_main
        return runner_main(argv)
    if argv[0] == "experiments":
        from repro.experiments.runner import main as runner_main
        return runner_main(argv[1:])

    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print configuration and layout")
    info.add_argument("--scale", type=int, default=16)
    info.set_defaults(func=cmd_info)

    simulate = sub.add_parser("simulate",
                              help="worst-case drain + recovery")
    simulate.add_argument("--scheme", choices=SCHEMES, default="horus-dlm")
    simulate.add_argument("--scale", type=int, default=64)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=cmd_simulate)

    audit = sub.add_parser("audit", help="full-memory integrity audit")
    audit.add_argument("--scale", type=int, default=128)
    audit.add_argument("--blocks", type=int, default=16)
    audit.add_argument("--tamper", type=lambda v: int(v, 0), default=None)
    audit.set_defaults(func=cmd_audit)

    shards = sub.add_parser(
        "shards", help="multi-tenant fleet across controller shards")
    shards.add_argument("--shards", type=int, default=4)
    shards.add_argument("--scheme", choices=SCHEMES, default="horus-dlm")
    shards.add_argument("--scale", type=int, default=128)
    shards.add_argument("--tenants", type=int, default=32)
    shards.add_argument("--ops", type=int, default=4096)
    shards.add_argument("--seed", type=int, default=1)
    shards.add_argument("--jobs", type=int, default=None,
                        help="pool workers (default: one per shard)")
    from repro.sharding.drain import DRAIN_POLICIES
    shards.add_argument("--drain-policy", choices=DRAIN_POLICIES,
                        default="simultaneous")
    shards.add_argument("--power-budget", type=float, default=None,
                        help="watt cap for --drain-policy budgeted")
    shards.set_defaults(func=cmd_shards)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
