"""BBB-style battery-backed buffer persistence (related work, paper ref [1]).

BBB (Alshboul et al., HPCA'21) extends the persistence domain to the same
point as eADR with a much smaller battery: a small battery-backed buffer next
to L1 absorbs every store, making it persistent immediately; buffer evictions
write through to NVM at run time.  It is the midpoint of the spectrum this
library models:

=========  =======================  =============================
system     run-time security cost   crash-time drain
=========  =======================  =============================
ADR        every explicit persist   WPQ only (tiny)
BBB        every buffer eviction    buffer only (small)
EPD        none                     whole hierarchy (Horus's job)
=========  =======================  =============================
"""

from collections import OrderedDict

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.secure.controller import SecureMemoryController
from repro.stats.counters import SimStats
from repro.stats.timing import TimingModel

DEFAULT_BBUF_LINES = 64
"""BBB evaluates small buffers (tens of lines); 64 is its largest point."""


class BbbSecureSystem:
    """Secure NVM with a battery-backed buffer as the persistence point."""

    def __init__(self, config: SystemConfig | None = None,
                 bbuf_lines: int = DEFAULT_BBUF_LINES,
                 scheme: str = "eager"):
        if bbuf_lines <= 0:
            raise ConfigError("battery-backed buffer must hold >= 1 line")
        self.config = config if config is not None else SystemConfig.paper()
        self.stats = SimStats()
        self.timing = TimingModel(self.config)
        self.layout = MemoryLayout(self.config)
        self.nvm = NvmDevice(self.layout.total_size, self.stats)
        self.controller = SecureMemoryController(
            self.config, self.nvm, self.layout, self.stats, scheme=scheme)
        self.hierarchy = CacheHierarchy(
            self.config, functional=self.config.security.functional)
        self.hierarchy.attach(self.controller.read, self._cache_writeback)

        self.bbuf_lines = bbuf_lines
        self._bbuf: "OrderedDict[int, bytes]" = OrderedDict()
        self.bbuf_evictions = 0
        self.writes = 0

    # ------------------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """A store is persistent the moment it lands in the bbuf (no
        flush/fence, as in EPD) — but the bbuf is tiny, so evictions pay
        the secure write-through tax at run time."""
        self.layout.require_data_address(address)
        self.hierarchy.write(address, data)
        if address in self._bbuf:
            self._bbuf[address] = data
            self._bbuf.move_to_end(address)
        else:
            if len(self._bbuf) >= self.bbuf_lines:
                victim_address, victim_data = self._bbuf.popitem(last=False)
                self.controller.write(victim_address, victim_data)
                self.bbuf_evictions += 1
            self._bbuf[address] = data
        self.writes += 1

    def read(self, address: int) -> bytes:
        self.layout.require_data_address(address)
        return self.hierarchy.read(address)

    # ------------------------------------------------------------------

    def crash(self) -> int:
        """Drain the bbuf (its battery covers exactly this) and lose the
        volatile hierarchy; every write survives because it was either in
        the bbuf or already written through."""
        drained = 0
        while self._bbuf:
            address, data = self._bbuf.popitem(last=False)
            self.controller.write(address, data)
            drained += 1
        self.hierarchy.invalidate_all()
        self.controller.flush_metadata()
        self.controller.drop_volatile_state()
        return drained

    def is_persisted(self, address: int) -> bool:
        """All writes are persistent in BBB: in the bbuf or in NVM."""
        return address in self._bbuf or self.nvm.backend.is_written(address)

    @property
    def writethrough_fraction(self) -> float:
        """Fraction of writes that paid the secure write-through cost."""
        return self.bbuf_evictions / self.writes if self.writes else 0.0

    def _cache_writeback(self, address: int, data: bytes | None) -> None:
        # A dirty line leaving the volatile hierarchy may still be younger
        # than the NVM copy only if it is also bbuf-resident, in which case
        # the bbuf write-through covers it; writing here is safe either way.
        self.controller.write(address, data)
