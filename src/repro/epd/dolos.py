"""Dolos-style ADR persistence (paper ref [11], the authors' prior work).

Dolos observes that an ADR persist need not run the full secure-memory path
on the critical path: a *minor security unit* (MSU) protects WPQ content
with its own monotonic counter and MAC, staged into a small reserved NVM
region, while the full in-place secure write happens in the background.
Horus is the same insight scaled from the WPQ to the whole cache hierarchy
— implementing both makes the lineage measurable.

Model: ``persist`` encrypts the line under the MSU counter and writes one
staging block (+1/8 coalesced address blocks and MAC blocks, as in Horus) —
that is the critical path.  A background queue later replays entries
through the ordinary secure controller; entries still staged at a crash are
replayed at recovery, exactly like a tiny CHV.
"""

from collections import deque

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError, IntegrityError, RecoveryError
from repro.crypto.counters import DrainCounter
from repro.crypto.primitives import MacDomain
from repro.epd.adr import AdrSecureSystem
from repro.stats.events import MacKind, ReadKind, WriteKind

_ZERO = bytes(CACHE_LINE_SIZE)


class DolosAdrSystem(AdrSecureSystem):
    """ADR whose persist critical path is one MSU staging write."""

    def __init__(self, config=None, wpq_depth: int = 64,
                 background_batch: int = 16):
        super().__init__(config, scheme="eager", wpq_depth=wpq_depth)
        if background_batch <= 0:
            raise ConfigError("background batch must be positive")
        self._msu_counter = DrainCounter()
        self._staged: deque[tuple[int, int, bytes | None]] = deque()
        self._background_batch = background_batch
        self.background_writes = 0
        # The staging area reuses the reserved shadow region: Dolos needs a
        # similarly small dedicated region next to the WPQ.  Slots form a
        # ring indexed by the monotonic MSU counter, so drain and recovery
        # agree on placement with no extra state.
        self._staging = self.layout.shadow
        self._ring_slots = self._staging.size // (2 * CACHE_LINE_SIZE)
        if self._ring_slots < background_batch + 2:
            raise ConfigError("staging region too small for the batch size")

    # ------------------------------------------------------------------

    def persist(self, address: int) -> None:
        """Critical path: encrypt under the MSU counter, stage, done."""
        self.layout.require_data_address(address)
        line = None
        for level in self.hierarchy.levels:
            found = level.lookup(address, touch=False)
            if found is not None:
                line = found
                break
        if line is None:
            return

        if len(self._staged) >= self._ring_slots:
            self._drain_background(force_all=True)
        counter = self._msu_counter.next()
        ciphertext = self.controller.aes.encrypt(address, counter, line.data)
        self.controller.mac.block_mac(MacKind.CHV_DATA, ciphertext,
                                      address, counter,
                                      domain=MacDomain.CHV_DATA)
        entry = self._staging.block_at((counter % self._ring_slots) * 2)
        self.nvm.write(entry, address.to_bytes(8, "little")
                       .ljust(CACHE_LINE_SIZE, b"\0"), WriteKind.CHV_ADDRESS)
        self.nvm.write(entry + CACHE_LINE_SIZE,
                       ciphertext if ciphertext is not None else _ZERO,
                       WriteKind.CHV_DATA)
        self._staged.append((address, counter, line.data))
        line.dirty = False
        self.persists += 1
        if len(self._staged) > self._background_batch:
            self._drain_background()

    def _drain_background(self, force_all: bool = False) -> None:
        """Off the critical path: replay staged entries in place."""
        target = 0 if force_all else self._background_batch // 2
        while len(self._staged) > target:
            address, _, data = self._staged.popleft()
            self.controller.write(address, data)
            self.background_writes += 1

    # ------------------------------------------------------------------

    @property
    def staged_entries(self) -> int:
        return len(self._staged)

    def crash(self) -> int:
        """The WPQ/MSU battery covers exactly the staged entries; the
        volatile hierarchy is lost as in plain ADR."""
        survivors = len(self._staged)
        self.hierarchy.invalidate_all()
        self.controller.flush_metadata()
        self.controller.drop_volatile_state()
        return survivors

    def recover(self) -> int:
        """Replay staged entries from the persistent MSU region through the
        full secure path (verifying each against its MSU counter).

        In hardware, only the count of staged entries and the MSU counter
        are registers; everything else (addresses, ciphertexts) comes back
        from the staging ring, with each entry's counter derived from its
        ring position — the same DC/eDC arithmetic Horus uses.
        """
        replayed = 0
        while self._staged:
            address, counter, _ = self._staged.popleft()
            slot_base = self._staging.block_at(
                (counter % self._ring_slots) * 2)
            raw_address = self.nvm.read(slot_base, ReadKind.CHV)
            ciphertext = self.nvm.read(slot_base + CACHE_LINE_SIZE,
                                       ReadKind.CHV)
            stored = int.from_bytes(raw_address[:8], "little")
            if stored != address:
                raise IntegrityError(
                    f"MSU staging entry address mismatch at {slot_base:#x}")
            self.controller.mac.block_mac(MacKind.VERIFY, ciphertext,
                                          stored, counter,
                                          domain=MacDomain.CHV_DATA)
            plaintext = self.controller.aes.decrypt(stored, counter,
                                                    ciphertext)
            self.controller.write(stored, plaintext)
            replayed += 1
        if replayed == 0 and self._msu_counter.ephemeral:
            raise RecoveryError("staged entries lost")
        self._msu_counter.clear_ephemeral()
        return replayed

    def persist_critical_cycles(self) -> int:
        """Serialized persist-path cycles for Dolos.

        Per persist: one staging data write, the amortized address-block
        share, one MAC, one AES — independent of tree depth.  (Background
        replay and cache-fill traffic are off the critical path.)
        """
        t = self.timing
        per_persist = (t.write_cycles + t.write_cycles // 8
                       + t.mac_cycles + t.aes_cycles)
        stalls = self.persist_stalls * t.write_cycles
        return self.persists * per_persist + stalls
