"""EPD drain framework: reports, non-secure and baseline secure drains."""

from repro.epd.adr import AdrSecureSystem
from repro.epd.baseline import BaselineSecureDrain
from repro.epd.bbb import BbbSecureSystem
from repro.epd.dolos import DolosAdrSystem
from repro.epd.drain import DrainEngine, DrainReport, NonSecureDrain
from repro.epd.power import EADR_MIN_HOLDUP_MS, HoldupBudget, holdup_budget

__all__ = [
    "AdrSecureSystem",
    "BaselineSecureDrain",
    "BbbSecureSystem",
    "DolosAdrSystem",
    "DrainEngine",
    "DrainReport",
    "NonSecureDrain",
    "EADR_MIN_HOLDUP_MS",
    "HoldupBudget",
    "holdup_budget",
]
