"""Drain-engine framework and the non-secure EPD reference drain.

A *drain* is the episode between outage detection and power-off: the EPD
hold-up budget must cover its worst case.  Every engine returns a
:class:`DrainReport` capturing the operation counts of the episode (isolated
by diffing the shared stats object) and the serialized time they imply.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.common.constants import CACHE_LINE_SIZE
from repro.crypto.batch import batching_enabled
from repro.stats.counters import SimStats
from repro.stats.timing import TimingModel
from repro.stats.events import WriteKind

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


@dataclass(frozen=True)
class DrainReport:
    """Everything measured about one drain episode."""

    scheme: str
    flushed_blocks: int
    metadata_blocks: int
    stats: SimStats
    cycles: int
    seconds: float

    @property
    def total_memory_requests(self) -> int:
        return self.stats.total_memory_requests

    @property
    def total_writes(self) -> int:
        return self.stats.total_writes

    @property
    def total_reads(self) -> int:
        return self.stats.total_reads

    @property
    def total_macs(self) -> int:
        return self.stats.total_macs

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class DrainEngine(ABC):
    """Base class: handles episode stat isolation and timing."""

    name = "abstract"

    def __init__(self, stats: SimStats, timing: TimingModel):
        self._stats = stats
        self._timing = timing

    def drain(self, hierarchy: CacheHierarchy,
              seed: int | None = None) -> DrainReport:
        """Run the full drain episode over ``hierarchy``."""
        before = self._stats.copy()
        flushed, metadata = self._run(hierarchy, seed)
        episode = self._stats.diff(before)
        cycles = self._timing.cycles(episode)
        return DrainReport(
            scheme=self.name,
            flushed_blocks=flushed,
            metadata_blocks=metadata,
            stats=episode,
            cycles=cycles,
            seconds=cycles / self._timing.config.frequency_hz,
        )

    @abstractmethod
    def _run(self, hierarchy: CacheHierarchy,
             seed: int | None) -> tuple[int, int]:
        """Flush everything; return (cache blocks flushed, metadata blocks)."""


class NonSecureDrain(DrainEngine):
    """EPD without memory security: flush every dirty line in place.

    This is the reference the paper normalizes against — one NVM write per
    flushed line, nothing else.
    """

    name = "nosec"

    def __init__(self, stats: SimStats, timing: TimingModel, nvm,
                 batched: bool | None = None):
        super().__init__(stats, timing)
        self._nvm = nvm
        self.batched = batching_enabled(batched)

    def _run(self, hierarchy: CacheHierarchy,
             seed: int | None) -> tuple[int, int]:
        if self.batched:
            if self._nvm.grouped_io:
                # One arena write: addresses in drain order, payloads as a
                # single contiguous buffer (same image, one folded stats
                # update — exactly what per-line issue would record).
                lines = list(hierarchy.drain_lines(seed))
                addresses = [line.address for line in lines]
                buffer = b"".join(
                    line.data if line.data is not None else _ZERO_BLOCK
                    for line in lines)
                self._nvm.write_arena(addresses, buffer, WriteKind.DATA)
                return len(lines), 0
            writes = [(line.address,
                       line.data if line.data is not None else _ZERO_BLOCK,
                       WriteKind.DATA)
                      for line in hierarchy.drain_lines(seed)]
            self._nvm.write_batch(writes)
            return len(writes), 0
        flushed = 0
        for line in hierarchy.drain_lines(seed):
            payload = line.data if line.data is not None else _ZERO_BLOCK
            self._nvm.write(line.address, payload, WriteKind.DATA)
            flushed += 1
        return flushed, 0
