"""Hold-up budget bookkeeping.

The EPD power supply must keep the system alive for the *worst-case* drain.
These helpers turn a :class:`~repro.epd.drain.DrainReport` into the hold-up
quantities the paper discusses (Intel gates eADR on a >= 10 ms hold-up PSU).
"""

from dataclasses import dataclass

from repro.epd.drain import DrainReport

EADR_MIN_HOLDUP_MS = 10.0
"""Intel's minimum PSU hold-up time for enabling eADR (Section V-B)."""


@dataclass(frozen=True)
class HoldupBudget:
    """Hold-up requirement implied by a drain episode."""

    scheme: str
    holdup_ms: float
    memory_operations: int
    relative_to_nosec: float | None = None

    @property
    def meets_eadr_minimum(self) -> bool:
        """Whether a standard 10 ms hold-up PSU would cover this drain."""
        return self.holdup_ms <= EADR_MIN_HOLDUP_MS


def holdup_budget(report: DrainReport,
                  nosec: DrainReport | None = None) -> HoldupBudget:
    """Hold-up budget for ``report``, optionally normalized to non-secure."""
    relative = None
    if nosec is not None and nosec.seconds > 0:
        relative = report.seconds / nosec.seconds
    return HoldupBudget(
        scheme=report.scheme,
        holdup_ms=report.milliseconds,
        memory_operations=report.total_memory_requests,
        relative_to_nosec=relative,
    )
