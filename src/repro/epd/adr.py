"""ADR (battery-backed write-pending-queue) persistence — the pre-EPD world.

Sections I/II of the paper motivate EPD against ADR systems: with only the
WPQ inside the persistence domain, a persistent application must explicitly
``flush`` + ``fence`` every durable update through the secure memory
controller, paying the security-metadata cost *per persist at run time*.
EPD moves that cost to the (rare) drain episode — which is exactly the
trade-off Horus then optimizes.

:class:`AdrSecureSystem` models that world: a volatile cache hierarchy, a
fixed-depth WPQ, and persist operations that run the full secure write path.
The crash behaviour is the inverse of EPD: the WPQ (tiny) survives, the
cache hierarchy (everything unpersisted) is lost.

Timing model: a persist's critical path is the security work (metadata
fetches, verifications, MAC/AES) plus — only when the WPQ is full — the NVM
write latency of the entry it must displace.  This mirrors how ADR hides
NVM write latency behind the queue until the queue saturates.
"""

from collections import OrderedDict

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.secure.controller import SecureMemoryController
from repro.stats.counters import SimStats
from repro.stats.timing import TimingModel

DEFAULT_WPQ_DEPTH = 64
"""Entries in the battery-backed write pending queue."""


class AdrSecureSystem:
    """A secure NVM system with ADR-only persistence.

    The run-time write path is identical to the EPD systems' controller; the
    difference is *when* it runs: on every persist instead of never (EPD) —
    plus the flush/fence bookkeeping persistent applications must do.
    """

    def __init__(self, config: SystemConfig | None = None,
                 scheme: str = "eager", wpq_depth: int = DEFAULT_WPQ_DEPTH):
        if wpq_depth <= 0:
            raise ConfigError("WPQ depth must be positive")
        self.config = config if config is not None else SystemConfig.paper()
        self.stats = SimStats()
        self.timing = TimingModel(self.config)
        self.layout = MemoryLayout(self.config)
        self.nvm = NvmDevice(self.layout.total_size, self.stats)
        # Persist-per-write security needs a recoverable tree; the simple
        # recoverable choice is the eager scheme (Triad-NVM-style strict
        # persistence).  Lazy would need Osiris/Anubis machinery per write.
        self.controller = SecureMemoryController(
            self.config, self.nvm, self.layout, self.stats, scheme=scheme)
        self.hierarchy = CacheHierarchy(
            self.config, functional=self.config.security.functional)
        self.hierarchy.attach(self.controller.read, self._volatile_writeback)

        self.wpq_depth = wpq_depth
        self._wpq: "OrderedDict[int, bytes]" = OrderedDict()
        self.persist_stalls = 0
        self.persists = 0

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """A store: volatile until explicitly persisted."""
        self.layout.require_data_address(address)
        self.hierarchy.write(address, data)

    def read(self, address: int) -> bytes:
        self.layout.require_data_address(address)
        return self.hierarchy.read(address)

    def persist(self, address: int) -> None:
        """flush + fence: push one line into the persistence domain.

        Runs the full secure write path (counter fetch/verify, MAC, tree
        update) — the per-persist run-time tax EPD systems eliminate.
        """
        self.layout.require_data_address(address)
        line = None
        for level in self.hierarchy.levels:
            found = level.lookup(address, touch=False)
            if found is not None:
                line = found
                break
        if line is None:
            return  # nothing cached: already persistent (or never written)

        if len(self._wpq) >= self.wpq_depth:
            # Queue full: the oldest entry's NVM write moves onto the
            # critical path before this persist can enqueue.
            self._wpq.popitem(last=False)
            self.persist_stalls += 1
        self.controller.write(address, line.data)
        self._wpq[address] = line.data if line.data is not None else b""
        line.dirty = False
        self.persists += 1

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------

    def crash(self) -> int:
        """Power outage: the WPQ drains (already written through the secure
        controller at persist time, so nothing more to do here), and the
        entire cache hierarchy — every unpersisted update — is lost."""
        survivors = len(self._wpq)
        self._wpq.clear()
        self.hierarchy.invalidate_all()
        # Metadata caches are volatile too, but the eager scheme keeps the
        # NVM-resident tree consistent; flush dirty metadata home first
        # (this is what the ADR hold-up budget covers, and it is tiny).
        self.controller.flush_metadata()
        self.controller.drop_volatile_state()
        return survivors

    def is_persisted(self, address: int) -> bool:
        """Whether a line's latest persisted version exists in NVM."""
        return self.nvm.backend.is_written(address)

    # ------------------------------------------------------------------

    def persist_critical_cycles(self) -> int:
        """Serialized cycles attributable to persist-path security work.

        Reads, MACs, and AES on the persist path are synchronous; NVM writes
        are absorbed by the WPQ except when it saturates (counted stalls).
        """
        breakdown = self.timing.breakdown(self.stats)
        stall_cycles = self.persist_stalls * self.timing.write_cycles
        return (breakdown.read_cycles + breakdown.crypto_cycles
                + stall_cycles)

    def _volatile_writeback(self, address: int, data: bytes | None) -> None:
        """Capacity evictions from a volatile hierarchy still reach NVM
        through the secure controller (as in any secure-memory system)."""
        self.controller.write(address, data)
