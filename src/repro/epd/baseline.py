"""Baseline secure EPD drains (Section IV-B).

The baseline treats each flushed cache line exactly like a run-time memory
write: it goes through the secure memory controller, dragging the line's
address-specific counter block, BMT path, and MAC block through the metadata
caches — fetches, verifications, and dirty evictions included.  Afterwards
the metadata-cache state is made recoverable per the active update scheme
(Anubis-style shadow dump for lazy; home flush for eager).

``Base-LU`` and ``Base-EU`` are this engine over a lazy / eager controller.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.epd.drain import DrainEngine
from repro.secure.controller import SecureMemoryController
from repro.stats.timing import TimingModel


class BaselineSecureDrain(DrainEngine):
    """In-place secure drain through the run-time controller."""

    def __init__(self, controller: SecureMemoryController,
                 timing: TimingModel):
        super().__init__(controller.stats, timing)
        self._controller = controller
        lazy = controller.scheme.needs_parent_update_on_writeback()
        self.name = f"base-{'lu' if lazy else 'eu'}"

    @property
    def controller(self) -> SecureMemoryController:
        return self._controller

    def _run(self, hierarchy: CacheHierarchy,
             seed: int | None) -> tuple[int, int]:
        flushed = 0
        for line in hierarchy.drain_lines(seed):
            self._controller.write(line.address, line.data)
            flushed += 1
        metadata = sum(len(c) for c in self._controller.metadata_caches)
        self._controller.flush_metadata()
        return flushed, metadata
