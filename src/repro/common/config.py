"""Configuration dataclasses for the simulated system.

``SystemConfig.paper()`` reproduces Table I of the Horus paper exactly; tests
and benchmarks use ``SystemConfig.scaled()`` which shrinks memory and caches by
the same factor so that the memory-size / cache-size ratio — and therefore the
worst-case sparse-fill behaviour of the security metadata caches — is
preserved.
"""

from dataclasses import dataclass, field, replace

from repro.common.constants import (
    AES_LATENCY_CYCLES,
    CACHE_LINE_SIZE,
    CORE_FREQUENCY_HZ,
    HASH_LATENCY_CYCLES,
    MERKLE_TREE_ARITY,
    NVM_READ_LATENCY_NS,
    NVM_WRITE_LATENCY_NS,
)
from repro.common.errors import ConfigError
from repro.common.units import gib, kib, mib


def _require_power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one set-associative cache."""

    name: str
    size: int
    ways: int
    latency_cycles: int
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        _require_power_of_two(self.line_size, f"{self.name} line size")
        if self.size % (self.ways * self.line_size) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size} not divisible by "
                f"ways*line ({self.ways}*{self.line_size})"
            )
        _require_power_of_two(self.num_sets, f"{self.name} set count")

    @property
    def num_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.num_lines // self.ways


@dataclass(frozen=True)
class MemoryConfig:
    """NVM device geometry and timing."""

    size: int = gib(32)
    read_latency_ns: float = NVM_READ_LATENCY_NS
    write_latency_ns: float = NVM_WRITE_LATENCY_NS

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size % CACHE_LINE_SIZE:
            raise ConfigError(f"memory size {self.size} must be a positive "
                              f"multiple of {CACHE_LINE_SIZE}")


@dataclass(frozen=True)
class SecurityConfig:
    """Secure-memory engine parameters (Table I, bottom section)."""

    aes_latency_cycles: int = AES_LATENCY_CYCLES
    hash_latency_cycles: int = HASH_LATENCY_CYCLES
    tree_arity: int = MERKLE_TREE_ARITY
    counter_cache_size: int = kib(256)
    counter_cache_ways: int = 8
    mac_cache_size: int = kib(512)
    mac_cache_ways: int = 8
    tree_cache_size: int = kib(256)
    tree_cache_ways: int = 8
    functional: bool = True
    """When False, MAC/pad values are not actually computed (counts and timing
    only) — roughly halves simulation time for pure performance studies."""

    def __post_init__(self) -> None:
        if self.tree_arity < 2:
            raise ConfigError(f"tree arity must be >= 2, got {self.tree_arity}")


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated-system configuration."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1", kib(64), 2, 2))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", mib(2), 8, 20))
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", mib(16), 16, 32))
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    frequency_hz: int = CORE_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if not (self.l1.size <= self.l2.size <= self.llc.size):
            raise ConfigError("cache sizes must be monotone L1 <= L2 <= LLC")
        if self.llc.size * 4 > self.memory.size:
            raise ConfigError("memory must be at least 4x the LLC size")

    # -- canonical configurations -------------------------------------------

    @classmethod
    def paper(cls, llc_size: int = mib(16)) -> "SystemConfig":
        """Table I configuration; ``llc_size`` supports the Fig. 14-16 sweeps."""
        return cls(llc=CacheConfig("LLC", llc_size, 16, 32))

    @classmethod
    def scaled(cls, factor: int = 32,
               llc_size: int = mib(16)) -> "SystemConfig":
        """Paper configuration shrunk by ``factor`` (a power of two).

        Memory, caches, and metadata caches shrink together, preserving the
        sparse-fill stride ratio that drives the paper's worst case.
        ``llc_size`` is the pre-scaling LLC size (for the Fig. 14-16 sweeps).
        ``factor=1`` returns the paper configuration itself.
        """
        _require_power_of_two(factor, "scale factor")
        base = cls.paper(llc_size)
        security = replace(
            base.security,
            counter_cache_size=max(kib(4), base.security.counter_cache_size // factor),
            mac_cache_size=max(kib(4), base.security.mac_cache_size // factor),
            tree_cache_size=max(kib(4), base.security.tree_cache_size // factor),
        )
        return cls(
            l1=replace(base.l1, size=max(kib(1), base.l1.size // factor)),
            l2=replace(base.l2, size=max(kib(4), base.l2.size // factor)),
            llc=replace(base.llc, size=max(kib(8), base.llc.size // factor)),
            memory=replace(base.memory, size=base.memory.size // factor),
            security=security,
        )

    # -- derived quantities ---------------------------------------------------

    @property
    def cache_levels(self) -> tuple[CacheConfig, CacheConfig, CacheConfig]:
        return (self.l1, self.l2, self.llc)

    @property
    def total_cache_lines(self) -> int:
        """Worst-case number of dirty lines flushed on a crash.

        The paper's flushed-block total (295,936 for Table I) is the sum of
        line counts over all three levels — i.e. every line of every level is
        assumed dirty and individually flushed.
        """
        return sum(c.num_lines for c in self.cache_levels)

    @property
    def total_cache_size(self) -> int:
        return sum(c.size for c in self.cache_levels)

    @property
    def metadata_cache_size(self) -> int:
        sec = self.security
        return (sec.counter_cache_size + sec.mac_cache_size
                + sec.tree_cache_size)

    @property
    def worst_case_stride(self) -> int:
        """Fill stride for the paper's worst case (Section V-A: 16 KiB).

        Cache lines at a 16 KiB physical stride land in distinct 4 KiB
        counter-block regions, so every flushed line misses in the counter
        cache.  For configurations whose memory is too small to hold the
        whole hierarchy at 16 KiB spacing, we use the largest power-of-two
        stride that fits in half the memory (still >= the counter coverage
        whenever possible, preserving the worst-case behaviour).
        """
        target = kib(16)
        while target > CACHE_LINE_SIZE and target * self.total_cache_lines > self.memory.size // 2:
            target //= 2
        return target
