"""Unit helpers: binary sizes and cycle/time conversions.

Keeping unit arithmetic in one place avoids the classic KB-vs-KiB and
cycles-vs-seconds mistakes in the timing model.
"""

from repro.common.constants import CORE_FREQUENCY_HZ

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def kib(n: float) -> int:
    """Return ``n`` kibibytes in bytes."""
    return int(n * KiB)


def mib(n: float) -> int:
    """Return ``n`` mebibytes in bytes."""
    return int(n * MiB)


def gib(n: float) -> int:
    """Return ``n`` gibibytes in bytes."""
    return int(n * GiB)


def ns_to_cycles(ns: float, frequency_hz: int = CORE_FREQUENCY_HZ) -> int:
    """Convert nanoseconds to (rounded) core cycles at ``frequency_hz``."""
    return round(ns * 1e-9 * frequency_hz)


def cycles_to_seconds(cycles: float, frequency_hz: int = CORE_FREQUENCY_HZ) -> float:
    """Convert a cycle count to wall-clock seconds at ``frequency_hz``."""
    return cycles / frequency_hz


def cycles_to_ms(cycles: float, frequency_hz: int = CORE_FREQUENCY_HZ) -> float:
    """Convert a cycle count to milliseconds at ``frequency_hz``."""
    return cycles_to_seconds(cycles, frequency_hz) * 1e3


def format_bytes(n: int) -> str:
    """Render a byte count using the largest fitting binary unit."""
    if n % GiB == 0 and n >= GiB:
        return f"{n // GiB}GiB"
    if n % MiB == 0 and n >= MiB:
        return f"{n // MiB}MiB"
    if n % KiB == 0 and n >= KiB:
        return f"{n // KiB}KiB"
    return f"{n}B"
