"""Exception hierarchy for the Horus reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures distinctly from programming errors.  Security
violations intentionally carry enough context to write meaningful tests
against specific attack classes.
"""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class AddressError(ReproError):
    """An address fell outside the region it was expected to be in."""


class AlignmentError(AddressError):
    """An address violated the required block alignment."""


class SecurityError(ReproError):
    """Base class for all security violations detected by the simulator."""


class IntegrityError(SecurityError):
    """A MAC or Merkle-tree verification failed (tamper / corruption)."""

    def __init__(self, message: str, address: int | None = None) -> None:
        super().__init__(message)
        self.address = address


class ReplayError(IntegrityError):
    """Stale-but-authentic content was detected (freshness violation)."""


class SplicingError(IntegrityError):
    """Content was relocated/swapped between addresses (splicing attack)."""


class CounterOverflowError(SecurityError):
    """A counter that must never repeat was about to wrap around."""


class RecoveryError(ReproError):
    """The post-crash recovery procedure could not complete."""


class DrainStateError(ReproError):
    """A drain engine was used out of order (e.g. recover before drain)."""


class OracleDivergenceError(ReproError):
    """The scalar and batched execution paths disagreed on an episode.

    Raised by :mod:`repro.core.oracle` when the differential oracle finds
    any observable difference — NVM image, operation counters, report
    fields, or raised exceptions — between the two executions of the same
    seeded episode.  This always indicates a bug in the batched hot path
    (or, less likely, the scalar reference)."""
