"""Deterministic randomness helpers.

Every stochastic component (fill patterns, workload generators, adversaries)
takes an explicit seed and derives a private :class:`random.Random`, so whole
experiments are reproducible bit-for-bit.
"""

import hashlib
import random

DEFAULT_SEED = 0xC0FFEE

#: Annotation alias so simulator-core modules can type an RNG parameter
#: without importing :mod:`random` themselves (reprolint R1 bans the
#: import there; the instances always come from :func:`make_rng`).
Rng = random.Random

_SPREAD_SEPARATOR = b"\x1f"


def make_rng(seed: int | None = None) -> random.Random:
    """Return an isolated RNG; ``None`` selects the library default seed."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def spread_seed(master_seed: int | None, *labels: int | str) -> int:
    """Derive an independent stream seed from ``master_seed`` and labels.

    Naive derivations like ``master_seed + i`` collide across streams:
    ``(master=5, tenant=0)`` and ``(master=4, tenant=1)`` select the same
    RNG, so two "independent" tenants replay each other's traffic.  Hashing
    the whole ``(master_seed, *labels)`` tuple spreads every labelled
    stream to an unrelated 63-bit seed; equal inputs always map to the same
    seed, so derived streams stay reproducible.

    ``None`` selects :data:`DEFAULT_SEED`, mirroring :func:`make_rng`.
    Labels may be ints or strings; the framing is injective (a separator
    byte that cannot appear inside the decimal/utf-8 encodings).
    """
    if master_seed is None:
        master_seed = DEFAULT_SEED
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(master_seed)).encode("ascii"))
    for label in labels:
        digest.update(_SPREAD_SEPARATOR)
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest(), "little") >> 1


def random_block(rng: random.Random, size: int = 64) -> bytes:
    """Return ``size`` random bytes drawn from ``rng``."""
    return rng.getrandbits(8 * size).to_bytes(size, "little")
