"""Deterministic randomness helpers.

Every stochastic component (fill patterns, workload generators, adversaries)
takes an explicit seed and derives a private :class:`random.Random`, so whole
experiments are reproducible bit-for-bit.
"""

import random

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int | None = None) -> random.Random:
    """Return an isolated RNG; ``None`` selects the library default seed."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def random_block(rng: random.Random, size: int = 64) -> bytes:
    """Return ``size`` random bytes drawn from ``rng``."""
    return rng.getrandbits(8 * size).to_bytes(size, "little")
