"""Shared foundations: constants, units, addresses, configuration, errors."""

from repro.common.config import (
    CacheConfig,
    MemoryConfig,
    SecurityConfig,
    SystemConfig,
)
from repro.common.errors import (
    AddressError,
    AlignmentError,
    ConfigError,
    CounterOverflowError,
    DrainStateError,
    IntegrityError,
    RecoveryError,
    ReplayError,
    ReproError,
    SecurityError,
    SplicingError,
)

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "SecurityConfig",
    "SystemConfig",
    "AddressError",
    "AlignmentError",
    "ConfigError",
    "CounterOverflowError",
    "DrainStateError",
    "IntegrityError",
    "RecoveryError",
    "ReplayError",
    "ReproError",
    "SecurityError",
    "SplicingError",
]
