"""Global constants shared across the Horus reproduction.

All sizes are in bytes and all latencies come from Table I of the paper
(MICRO 2022) unless noted otherwise.  Derived constants (e.g. how much data a
counter block covers) follow the split-counter / Bonsai-Merkle-Tree layout
described in Section II of the paper.
"""

# --- Block and line geometry -------------------------------------------------

CACHE_LINE_SIZE = 64
"""Size of a cache line / memory block in bytes (the universal granule)."""

MAC_SIZE = 8
"""Size of a single message authentication code in bytes."""

MACS_PER_BLOCK = CACHE_LINE_SIZE // MAC_SIZE
"""Number of 8 B MACs that fit in one 64 B memory block (= 8)."""

ADDRESS_SIZE = 8
"""Size of a physical address as stored in a Horus CHV address block (64-bit)."""

ADDRESSES_PER_BLOCK = CACHE_LINE_SIZE // ADDRESS_SIZE
"""Number of addresses coalesced into one 64 B CHV address block (= 8)."""

# --- Split-counter scheme (Section II-B) -------------------------------------

MINOR_COUNTERS_PER_BLOCK = 64
"""Each 64 B counter block holds one major counter plus 64 minor counters."""

MINOR_COUNTER_BITS = 7
"""Width of a minor counter; overflow forces a page re-encryption."""

MAJOR_COUNTER_BITS = 64
"""Width of the shared major counter."""

COUNTER_BLOCK_COVERAGE = MINOR_COUNTERS_PER_BLOCK * CACHE_LINE_SIZE
"""Bytes of data covered by one counter block (64 lines x 64 B = 4 KiB)."""

# --- Integrity tree (Section II-B/C, Table I) ---------------------------------

MERKLE_TREE_ARITY = 8
"""The paper uses 8-ary Merkle trees both over NVM and over the secure cache."""

CACHE_TREE_LEVELS = 5
"""Levels of the small (Anubis-style) tree protecting the metadata cache."""

# --- Timing parameters (Table I) ----------------------------------------------

CORE_FREQUENCY_HZ = 4_000_000_000
"""Single X86 OoO core at 4 GHz."""

AES_LATENCY_CYCLES = 40
"""Latency of one counter-mode pad generation (AES) in core cycles."""

HASH_LATENCY_CYCLES = 160
"""Latency of one MAC / hash computation in core cycles."""

NVM_READ_LATENCY_NS = 150
"""PCM read latency in nanoseconds."""

NVM_WRITE_LATENCY_NS = 500
"""PCM write latency in nanoseconds."""

# --- Energy parameters (Section V-G) ------------------------------------------

NVM_WRITE_ENERGY_J = 531.8e-9
"""Energy of one NVM write operation (531.8 nJ, from Hoseinzadeh et al.)."""

NVM_READ_ENERGY_J = 5.5e-9
"""Energy of one NVM read operation (5.5 nJ)."""

PROCESSOR_DRAIN_POWER_W = 9.3
"""Processor power while draining.

The paper models processor energy with McPAT; inverting its Table II
(10.21 J over the Base-LU drain period) yields a constant ~9.3 W, which we use
directly (see DESIGN.md substitution table).
"""

SUPERCAP_ENERGY_DENSITY_WH_PER_CM3 = 1e-4
"""Super-capacitor volumetric energy density (Wh/cm^3), Section V-G."""

LI_THIN_ENERGY_DENSITY_WH_PER_CM3 = 1e-2
"""Lithium thin-film battery volumetric energy density (Wh/cm^3)."""

# --- CHV sizing (Section IV-D) -------------------------------------------------

CHV_CACHE_FACTOR_SLM = 1.25
"""CHV area per byte of cache for Horus-SLM: data + 1/8 addresses + 1/8 MACs."""

CHV_METADATA_FACTOR_SLM = 1.125
"""CHV area per byte of metadata cache for Horus-SLM."""
