"""Address arithmetic helpers.

All simulator components deal in 64 B-aligned block addresses; these helpers
centralize alignment checks and block indexing so layout bugs surface as
:class:`~repro.common.errors.AlignmentError` rather than silent corruption.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import AlignmentError


def is_block_aligned(address: int, block_size: int = CACHE_LINE_SIZE) -> bool:
    """Return True when ``address`` is a multiple of ``block_size``."""
    return address % block_size == 0


def require_block_aligned(address: int, block_size: int = CACHE_LINE_SIZE) -> int:
    """Validate alignment, returning the address for fluent use."""
    if address < 0:
        raise AlignmentError(f"negative address {address:#x}")
    if address % block_size != 0:
        raise AlignmentError(
            f"address {address:#x} is not {block_size}-byte aligned"
        )
    return address


def block_align_down(address: int, block_size: int = CACHE_LINE_SIZE) -> int:
    """Round ``address`` down to the containing block boundary."""
    return address - (address % block_size)


def block_index(address: int, block_size: int = CACHE_LINE_SIZE) -> int:
    """Return the block number containing ``address``."""
    return address // block_size


def block_address(index: int, block_size: int = CACHE_LINE_SIZE) -> int:
    """Return the start address of block number ``index``."""
    return index * block_size


def blocks_in(size: int, block_size: int = CACHE_LINE_SIZE) -> int:
    """Number of whole blocks needed to hold ``size`` bytes (ceiling)."""
    return -(-size // block_size)
