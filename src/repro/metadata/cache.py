"""Security-metadata caches.

The secure memory controller keeps three of these (counter cache, data-MAC
cache, tree-node cache, per Table I).  Unlike the data caches, lines hold
mutable metadata *objects* (a :class:`~repro.crypto.counters.SplitCounterBlock`,
a :class:`~repro.metadata.nodes.TreeNode`, or a ``bytearray`` MAC block), so
this is a separate small structure rather than a reuse of the byte-payload
data cache.

Everything resident in a metadata cache has been integrity-verified at fill
time; residency implies trust (the on-chip TCB of the threat model).
"""

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.common.config import CacheConfig
from repro.common.constants import CACHE_LINE_SIZE


@dataclass(slots=True)
class MetaLine:
    """A resident metadata block: its NVM address, value object, dirty bit."""

    address: int
    value: Any
    dirty: bool = False


class MetadataCache:
    """Set-associative, true-LRU cache of metadata objects keyed by address."""

    def __init__(self, config: CacheConfig) -> None:
        self._config = config
        # Plain dicts in insertion (LRU->MRU) order; touch = pop-and-
        # reinsert, victim = next(iter(set)).  Cheaper than OrderedDict
        # at per-metadata-access call rates.
        self._sets: list[dict[int, MetaLine]] = [
            {} for _ in range(config.num_sets)
        ]
        # Plain ints for the per-op hot path (lookup/insert run once per
        # metadata access); the dataclass chases stay off it.
        self._num_sets: int = config.num_sets
        self._ways: int = config.ways
        self.hits = 0
        self.misses = 0

    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._config.name

    def _set_for(self, address: int) -> dict[int, MetaLine]:
        return self._sets[(address // CACHE_LINE_SIZE) % self._num_sets]

    def lookup(self, address: int) -> MetaLine | None:
        # Single probe: pop-with-default both answers residency and starts
        # the LRU touch (reinsert moves the line to MRU).  A miss leaves
        # the set untouched.  The controller's fused segment path
        # (SecureMemoryController._run_segment) transcribes this body
        # inline against ``_sets`` for its counter and MAC stages — keep
        # the two in sync when changing accounting or order semantics.
        cache_set = self._sets[(address // CACHE_LINE_SIZE) % self._num_sets]
        line = cache_set.pop(address, None)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        cache_set[address] = line
        return line

    def insert(self, line: MetaLine) -> MetaLine | None:
        """Install ``line``, returning the evicted victim if the set was full.

        A store to a resident address replaces the value, moves the line
        to MRU (pop + reinsert), and never evicts.  Also transcribed
        inline by the controller's fused segment path — see :meth:`lookup`.
        """
        address = line.address
        cache_set = self._sets[(address // CACHE_LINE_SIZE) % self._num_sets]
        victim: MetaLine | None = None
        if cache_set.pop(address, None) is not None:
            cache_set[address] = line
            return None
        if len(cache_set) >= self._ways:
            victim = cache_set.pop(next(iter(cache_set)))
        cache_set[address] = line
        return victim

    def contains(self, address: int) -> bool:
        return address in self._set_for(address)

    def invalidate(self, address: int) -> MetaLine | None:
        return self._set_for(address).pop(address, None)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> Iterator[MetaLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def dirty_lines(self) -> Iterator[MetaLine]:
        for line in self.lines():
            if line.dirty:
                yield line

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
