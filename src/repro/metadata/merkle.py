"""Generic in-memory N-ary Merkle tree.

Used for the Anubis-style small tree over the metadata cache (Section II-C)
and as a reference implementation for property-based tests of the
NVM-resident Bonsai tree logic in :mod:`repro.secure`.
"""

from collections.abc import Sequence

from repro.common.errors import ConfigError, IntegrityError
from repro.crypto.primitives import MacDomain, compute_mac


class InMemoryMerkleTree:
    """An eager, fully materialized hash tree over a list of leaf payloads."""

    def __init__(self, leaves: Sequence[bytes], arity: int = 8,
                 key: bytes = b"repro-merkle") -> None:
        if arity < 2:
            raise ConfigError(f"arity must be >= 2, got {arity}")
        if not leaves:
            raise ConfigError("tree needs at least one leaf")
        self._arity = arity
        self._key = key
        self._leaves = [bytes(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = []
        self._build()

    def _hash_group(self, group: Sequence[bytes]) -> bytes:
        return compute_mac(self._key, *group, domain=MacDomain.NODE)

    def _build(self) -> None:
        self._levels = [[self._hash_group([leaf]) for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            level = [
                self._hash_group(below[i:i + self._arity])
                for i in range(0, len(below), self._arity)
            ]
            self._levels.append(level)

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    @property
    def num_levels(self) -> int:
        """Hash levels including the root level."""
        return len(self._levels)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def num_hashes(self) -> int:
        """Total MAC computations an eager build performs (for accounting)."""
        return sum(len(level) for level in self._levels)

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    def update_leaf(self, index: int, payload: bytes) -> None:
        """Eagerly update one leaf and its path to the root."""
        if not 0 <= index < len(self._leaves):
            raise ConfigError(f"leaf {index} out of range")
        self._leaves[index] = bytes(payload)
        self._levels[0][index] = self._hash_group([self._leaves[index]])
        child_index = index
        for level in range(1, len(self._levels)):
            parent_index = child_index // self._arity
            start = parent_index * self._arity
            group = self._levels[level - 1][start:start + self._arity]
            self._levels[level][parent_index] = self._hash_group(group)
            child_index = parent_index

    def verify_all(self) -> None:
        """Recompute the whole tree and compare to the stored digests."""
        rebuilt = InMemoryMerkleTree(self._leaves, self._arity, self._key)
        if rebuilt.root != self.root:
            raise IntegrityError("Merkle root mismatch: leaves were altered")
        for stored, fresh in zip(self._levels, rebuilt._levels):
            if stored != fresh:
                raise IntegrityError("Merkle level mismatch: stale interior node")

    def verify_against(self, leaves: Sequence[bytes]) -> bool:
        """True when ``leaves`` hash to this tree's root."""
        return InMemoryMerkleTree(leaves, self._arity, self._key).root == self.root
