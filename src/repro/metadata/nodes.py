"""Integrity-tree node representation and sparse defaults.

A tree node is one 64 B block holding 8 slots of 8 B MACs — slot ``j`` of node
``(level, i)`` authenticates child ``8*i + j`` one level down (counter blocks
below level 1).

Because the simulated NVM is sparse, nodes that were never written must read
back as their *default* content: the node value of an all-zero-counter
subtree.  :class:`DefaultNodes` precomputes, per level, that default content
and its MAC, so a 32 GB address space needs no materialization.
"""

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE, MACS_PER_BLOCK
from repro.common.errors import AddressError
from repro.crypto.primitives import MacDomain, compute_mac


class TreeNode:
    """One integrity-tree node: 8 slots of 8 B child MACs."""

    __slots__ = ("_data",)

    def __init__(self, data: bytes | None = None) -> None:
        if data is None:
            self._data = bytearray(CACHE_LINE_SIZE)
        else:
            if len(data) != CACHE_LINE_SIZE:
                raise AddressError(
                    f"tree node must be {CACHE_LINE_SIZE} B, got {len(data)}")
            self._data = bytearray(data)

    def get_slot(self, slot: int) -> bytes:
        if not 0 <= slot < MACS_PER_BLOCK:
            raise AddressError(f"tree slot {slot} out of range")
        return bytes(self._data[slot * MAC_SIZE:(slot + 1) * MAC_SIZE])

    def set_slot(self, slot: int, mac: bytes) -> None:
        if not 0 <= slot < MACS_PER_BLOCK:
            raise AddressError(f"tree slot {slot} out of range")
        if len(mac) != MAC_SIZE:
            raise AddressError(f"slot value must be {MAC_SIZE} B")
        self._data[slot * MAC_SIZE:(slot + 1) * MAC_SIZE] = mac

    def to_bytes(self) -> bytes:
        return bytes(self._data)

    def copy(self) -> "TreeNode":
        return TreeNode(bytes(self._data))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TreeNode) and self._data == other._data

    def __hash__(self) -> int:  # pragma: no cover - nodes are not dict keys
        return hash(bytes(self._data))


class DefaultNodes:
    """Default (all-zero-subtree) node content and MAC per tree level.

    Level 0 is the counter-block level: its default content is an all-zero
    counter block.  Level ``l >= 1`` defaults to a node whose 8 slots all hold
    the default MAC of level ``l - 1``.  These are computed once with the MAC
    key, outside any accounted episode (boot-time initialization).
    """

    def __init__(self, mac_key: bytes, num_levels: int) -> None:
        self._contents: list[bytes] = [bytes(CACHE_LINE_SIZE)]
        self._macs: list[bytes] = [self._digest(mac_key, self._contents[0])]
        for _ in range(num_levels):
            content = self._macs[-1] * MACS_PER_BLOCK
            self._contents.append(content)
            self._macs.append(self._digest(mac_key, content))

    @staticmethod
    def _digest(key: bytes, content: bytes) -> bytes:
        # Tree-node domain: defaults must be interchangeable with the MACs
        # the engine computes for live nodes, and with nothing else.
        return compute_mac(key, content, domain=MacDomain.NODE)

    def content(self, level: int) -> bytes:
        """Default 64 B content of a node at ``level`` (0 = counter block)."""
        return self._contents[level]

    def mac(self, level: int) -> bytes:
        """MAC of the default content at ``level``."""
        return self._macs[level]

    def default_node(self, level: int) -> TreeNode:
        return TreeNode(self._contents[level])
