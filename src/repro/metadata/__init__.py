"""Security-metadata substrate: tree nodes, metadata caches, Merkle trees."""

from repro.metadata.cache import MetadataCache, MetaLine
from repro.metadata.merkle import InMemoryMerkleTree
from repro.metadata.nodes import DefaultNodes, TreeNode

__all__ = [
    "MetadataCache",
    "MetaLine",
    "InMemoryMerkleTree",
    "DefaultNodes",
    "TreeNode",
]
