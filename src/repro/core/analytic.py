"""Closed-form cost models for drain episodes.

Horus's drain cost is *deterministic* — Section IV makes it a pure function
of the number of vaulted blocks — so it has an exact closed form, derived
here and pinned against the simulator by tests.  The baselines have no exact
closed form (their cost depends on metadata-cache dynamics), but they obey
hard bounds that every simulated episode must satisfy; the validation module
turns those into machine-checkable invariants.

These models also let callers size hold-up budgets without running the
simulator at all (`horus_drain_cost(...)` is what a platform architect would
put in a spreadsheet).
"""

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.constants import ADDRESSES_PER_BLOCK, MACS_PER_BLOCK
from repro.epd.drain import DrainReport
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind, WriteKind
from repro.stats.timing import TimingModel


@dataclass(frozen=True)
class HorusDrainCost:
    """Exact operation counts of a Horus drain over ``blocks`` lines."""

    blocks: int
    data_writes: int
    address_writes: int
    mac_writes: int
    mac_computations: int
    aes_operations: int

    @property
    def total_writes(self) -> int:
        return self.data_writes + self.address_writes + self.mac_writes

    @property
    def total_memory_requests(self) -> int:
        return self.total_writes  # Horus reads nothing during a drain

    def as_stats(self) -> SimStats:
        stats = SimStats()
        stats.record_write(WriteKind.CHV_DATA, self.data_writes)
        stats.record_write(WriteKind.CHV_ADDRESS, self.address_writes)
        stats.record_write(WriteKind.CHV_MAC, self.mac_writes)
        stats.record_mac(MacKind.CHV_DATA, self.blocks)
        stats.record_mac(MacKind.CHV_LEVEL2,
                         self.mac_computations - self.blocks)
        stats.record_aes(AesKind.ENCRYPT, self.aes_operations)
        return stats


def horus_drain_cost(blocks: int, double_level_mac: bool) -> HorusDrainCost:
    """The Section IV cost formula.

    SLM: writes = N + ceil(N/8) + ceil(N/8); MACs = N.
    DLM: writes = N + ceil(N/8) + ceil(N/64); MACs = N + ceil(N/8).
    One pad generation per block either way.
    """
    address_writes = -(-blocks // ADDRESSES_PER_BLOCK)
    if double_level_mac:
        mac_writes = -(-blocks // (MACS_PER_BLOCK * MACS_PER_BLOCK))
        mac_computations = blocks + -(-blocks // MACS_PER_BLOCK)
    else:
        mac_writes = -(-blocks // MACS_PER_BLOCK)
        mac_computations = blocks
    return HorusDrainCost(
        blocks=blocks,
        data_writes=blocks,
        address_writes=address_writes,
        mac_writes=mac_writes,
        mac_computations=mac_computations,
        aes_operations=blocks,
    )


def horus_drain_seconds(config: SystemConfig, double_level_mac: bool,
                        blocks: int | None = None) -> float:
    """Closed-form worst-case Horus drain time for ``config``."""
    if blocks is None:
        blocks = (config.total_cache_lines
                  + config.metadata_cache_size // 64)
    cost = horus_drain_cost(blocks, double_level_mac)
    return TimingModel(config).seconds(cost.as_stats())


def validate_horus_report(report: DrainReport) -> None:
    """Assert a simulated Horus episode matches the closed form exactly."""
    blocks = report.flushed_blocks + report.metadata_blocks
    cost = horus_drain_cost(blocks, double_level_mac="dlm" in report.scheme)
    mismatches = []
    if report.total_writes != cost.total_writes:
        mismatches.append(
            f"writes {report.total_writes} != {cost.total_writes}")
    if report.total_macs != cost.mac_computations:
        mismatches.append(
            f"MACs {report.total_macs} != {cost.mac_computations}")
    if report.total_reads != 0:
        mismatches.append(f"reads {report.total_reads} != 0")
    if report.stats.total_aes != cost.aes_operations:
        mismatches.append(
            f"AES {report.stats.total_aes} != {cost.aes_operations}")
    if mismatches:
        raise AssertionError(
            f"{report.scheme} diverged from the closed form: "
            + "; ".join(mismatches))


def validate_baseline_report(report: DrainReport) -> None:
    """Assert the hard invariants every baseline episode must satisfy."""
    flushed = report.flushed_blocks
    mismatches = []
    data_writes = report.stats.writes[WriteKind.DATA]
    if data_writes != flushed:
        mismatches.append(
            f"in-place data writes {data_writes} != flushed {flushed}")
    if report.total_writes < flushed:
        mismatches.append("total writes below the flushed-line floor")
    # Every flushed line needs a verified counter: at least one MAC each
    # (cache hits can only reduce fetches, not the per-line data MAC).
    if report.total_macs < flushed:
        mismatches.append("fewer MACs than flushed lines")
    if report.stats.aes[AesKind.ENCRYPT] < flushed:
        mismatches.append("fewer encryptions than flushed lines")
    if mismatches:
        raise AssertionError(
            f"{report.scheme} violated baseline invariants: "
            + "; ".join(mismatches))
