"""Closed-form cost models for drain episodes.

Horus's drain cost is *deterministic* — Section IV makes it a pure function
of the number of vaulted blocks — so it has an exact closed form, derived
here and pinned against the simulator by tests.  The baselines have no exact
closed form (their cost depends on metadata-cache dynamics), but they obey
hard bounds that every simulated episode must satisfy; the validation module
turns those into machine-checkable invariants.

These models also let callers size hold-up budgets without running the
simulator at all (`horus_drain_cost(...)` is what a platform architect would
put in a spreadsheet).
"""

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.constants import ADDRESSES_PER_BLOCK, MACS_PER_BLOCK
from repro.epd.drain import DrainReport
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind, WriteKind
from repro.stats.timing import TimingModel


@dataclass(frozen=True)
class HorusDrainCost:
    """Exact operation counts of a Horus drain over ``blocks`` lines."""

    blocks: int
    data_writes: int
    address_writes: int
    mac_writes: int
    mac_computations: int
    aes_operations: int

    @property
    def total_writes(self) -> int:
        return self.data_writes + self.address_writes + self.mac_writes

    @property
    def total_memory_requests(self) -> int:
        return self.total_writes  # Horus reads nothing during a drain

    def as_stats(self) -> SimStats:
        stats = SimStats()
        stats.record_write(WriteKind.CHV_DATA, self.data_writes)
        stats.record_write(WriteKind.CHV_ADDRESS, self.address_writes)
        stats.record_write(WriteKind.CHV_MAC, self.mac_writes)
        stats.record_mac(MacKind.CHV_DATA, self.blocks)
        stats.record_mac(MacKind.CHV_LEVEL2,
                         self.mac_computations - self.blocks)
        stats.record_aes(AesKind.ENCRYPT, self.aes_operations)
        return stats


def horus_drain_cost(blocks: int, double_level_mac: bool) -> HorusDrainCost:
    """The Section IV cost formula.

    SLM: writes = N + ceil(N/8) + ceil(N/8); MACs = N.
    DLM: writes = N + ceil(N/8) + ceil(N/64); MACs = N + ceil(N/8).
    One pad generation per block either way.
    """
    address_writes = -(-blocks // ADDRESSES_PER_BLOCK)
    if double_level_mac:
        mac_writes = -(-blocks // (MACS_PER_BLOCK * MACS_PER_BLOCK))
        mac_computations = blocks + -(-blocks // MACS_PER_BLOCK)
    else:
        mac_writes = -(-blocks // MACS_PER_BLOCK)
        mac_computations = blocks
    return HorusDrainCost(
        blocks=blocks,
        data_writes=blocks,
        address_writes=address_writes,
        mac_writes=mac_writes,
        mac_computations=mac_computations,
        aes_operations=blocks,
    )


def horus_drain_seconds(config: SystemConfig, double_level_mac: bool,
                        blocks: int | None = None) -> float:
    """Closed-form worst-case Horus drain time for ``config``."""
    if blocks is None:
        blocks = (config.total_cache_lines
                  + config.metadata_cache_size // 64)
    cost = horus_drain_cost(blocks, double_level_mac)
    return TimingModel(config).seconds(cost.as_stats())


def validate_horus_report(report: DrainReport) -> None:
    """Assert a simulated Horus episode matches the closed form exactly."""
    blocks = report.flushed_blocks + report.metadata_blocks
    cost = horus_drain_cost(blocks, double_level_mac="dlm" in report.scheme)
    mismatches = []
    if report.total_writes != cost.total_writes:
        mismatches.append(
            f"writes {report.total_writes} != {cost.total_writes}")
    if report.total_macs != cost.mac_computations:
        mismatches.append(
            f"MACs {report.total_macs} != {cost.mac_computations}")
    if report.total_reads != 0:
        mismatches.append(f"reads {report.total_reads} != 0")
    if report.stats.total_aes != cost.aes_operations:
        mismatches.append(
            f"AES {report.stats.total_aes} != {cost.aes_operations}")
    if mismatches:
        raise AssertionError(
            f"{report.scheme} diverged from the closed form: "
            + "; ".join(mismatches))


def validate_replay_counts(scheme: str, num_ops: int,
                           access_counts: dict, stats: dict) -> None:
    """Assert the hard invariants every replayed trace must satisfy.

    Operates on the JSON-safe forms (``SimStats.snapshot()`` and a plain
    ``access_counts`` dict) so the golden replay fixtures can be validated
    as committed, without re-running the simulator.  The invariants hold
    for scalar and epoch-batched replay alike — the closed forms don't care
    how the op stream was issued, only what it did:

    * every trace op resolves at exactly one level (or misses);
    * non-secure fetches are exactly the misses, and each miss can evict at
      most one dirty LLC line;
    * on secure schemes every data write is one encryption, one data MAC,
      and one NVM write (counter-overflow re-encryptions included), only
      fetched blocks are decrypted, and every decrypted block was verified
      first (never-written blocks are fetched as zeros — no MAC to check,
      nothing to decrypt).
    """
    mismatches = []
    resolved = sum(access_counts.values())
    if resolved != num_ops:
        mismatches.append(
            f"access counts {resolved} do not resolve the {num_ops} ops")
    misses = access_counts.get("miss", 0)
    reads = stats.get("reads", {})
    writes = stats.get("writes", {})
    macs = stats.get("macs", {})
    aes = stats.get("aes", {})
    if scheme == "nosec":
        if reads.get("data", 0) != misses:
            mismatches.append(
                f"data reads {reads.get('data', 0)} != misses {misses}")
        if writes.get("data", 0) > misses:
            mismatches.append(
                "more data writebacks than misses (each miss evicts at "
                "most one dirty LLC line)")
        if macs or aes:
            mismatches.append("non-secure replay performed crypto")
    else:
        data_writes = writes.get("data", 0)
        if not (data_writes == macs.get("data_protect", 0)
                == aes.get("encrypt", 0)):
            mismatches.append(
                f"write/MAC/encrypt counts diverge: {data_writes} data "
                f"writes, {macs.get('data_protect', 0)} data MACs, "
                f"{aes.get('encrypt', 0)} encryptions")
        if aes.get("decrypt", 0) > reads.get("data", 0):
            mismatches.append("more decryptions than fetched data blocks")
        if macs.get("verify", 0) < aes.get("decrypt", 0):
            mismatches.append("decrypted blocks outnumber verifications")
    if mismatches:
        raise AssertionError(
            f"{scheme} replay violated closed-form invariants: "
            + "; ".join(mismatches))


def validate_baseline_report(report: DrainReport) -> None:
    """Assert the hard invariants every baseline episode must satisfy."""
    flushed = report.flushed_blocks
    mismatches = []
    data_writes = report.stats.writes[WriteKind.DATA]
    if data_writes != flushed:
        mismatches.append(
            f"in-place data writes {data_writes} != flushed {flushed}")
    if report.total_writes < flushed:
        mismatches.append("total writes below the flushed-line floor")
    # Every flushed line needs a verified counter: at least one MAC each
    # (cache hits can only reduce fetches, not the per-line data MAC).
    if report.total_macs < flushed:
        mismatches.append("fewer MACs than flushed lines")
    if report.stats.aes[AesKind.ENCRYPT] < flushed:
        mismatches.append("fewer encryptions than flushed lines")
    if mismatches:
        raise AssertionError(
            f"{report.scheme} violated baseline invariants: "
            + "; ".join(mismatches))
