"""The differential oracle: scalar vs batched execution, held equal.

The batched hot paths (:mod:`repro.crypto.batch`, the grouped NVM issue, the
batched drain/recovery loops) promise *observable equivalence* with the
scalar reference: same NVM image, same operation counters, same report
fields, same exceptions, same writes lost to the same faults.  The oracle
enforces that promise at run time by executing the same seeded episode twice
— once with ``batched=True``, once with ``batched=False`` — and comparing
everything the simulator can observe.

Enable it with the ``REPRO_ORACLE`` environment variable (or the runner's
``--oracle`` flag, which sets it):

``REPRO_ORACLE=1``
    check every episode that goes through
    :func:`repro.experiments.suite.run_episode`;
``REPRO_ORACLE=N`` (integer > 1)
    check every N-th episode (cheap spot-checking on big sweeps);
``REPRO_ORACLE=0`` / unset
    off (the default).

Drain episodes are checked by :func:`run_differential` (via
:func:`repro.experiments.suite.run_episode`); trace replays by
:func:`run_replay_differential` (via
:func:`repro.experiments.suite.run_replay_episode`), which holds the entire
runtime state — NVM image, stats, cache and metadata-cache contents, tree
root — equal after the last epoch.

Cached episodes are served without re-running and therefore without an
oracle pass — combine ``--oracle`` with ``--refresh`` to re-verify a warm
result store.  Any mismatch raises
:class:`~repro.common.errors.OracleDivergenceError` naming the field that
diverged; it always means a bug in one of the two paths.
"""

import os
from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.errors import OracleDivergenceError
from repro.core.system import SecureEpdSystem
from repro.crypto.batch import batching_enabled
from repro.epd.drain import DrainReport
from repro.workloads.replay import DEFAULT_EPOCH_OPS, replay
from repro.workloads.trace import MemoryOp

_EPISODES_SEEN = 0


def oracle_interval() -> int:
    """The configured sampling interval: 0 = off, 1 = every episode."""
    raw = os.environ.get("REPRO_ORACLE", "0").strip()
    try:
        interval = int(raw)
    except ValueError:
        return 1 if raw else 0
    return max(interval, 0)


def should_check() -> bool:
    """Sampling decision for the next episode (advances the sample counter)."""
    global _EPISODES_SEEN
    interval = oracle_interval()
    if interval == 0:
        return False
    _EPISODES_SEEN += 1
    return _EPISODES_SEEN % interval == 0


@dataclass(frozen=True)
class OracleOutcome:
    """What one differential episode produced (the env-default run's view)."""

    drain: DrainReport
    recovery: object | None
    checks: int
    """Number of observable fields compared."""


def _observe(config: SystemConfig, scheme: str, batched: bool, fill: str,
             fill_seed: int, drain_seed: int, recover: bool,
             system_kwargs: dict):
    """Run one full episode; return (system, observables dict)."""
    system = SecureEpdSystem(config, scheme=scheme, batched=batched,
                             **system_kwargs)
    if fill == "sequential":
        system.hierarchy.fill_sequential()
    else:
        system.fill_worst_case(seed=fill_seed)

    obs: dict[str, object] = {}
    drain_exc: BaseException | None = None
    report = None
    try:
        report = system.crash(seed=drain_seed)
    # The oracle's whole job is to observe *any* failure identically on both
    # paths: the exception is captured as an observable, compared, and
    # re-raised by run_differential.  This is the documented R4 exemption.
    except Exception as exc:  # reprolint: disable=R4
        drain_exc = exc
    obs["drain exception"] = (type(drain_exc).__name__, str(drain_exc)) \
        if drain_exc is not None else None
    if report is not None:
        obs["flushed blocks"] = report.flushed_blocks
        obs["metadata blocks"] = report.metadata_blocks
        obs["drain cycles"] = report.cycles
        obs["drain stats"] = report.stats.snapshot()

    recovery = None
    if recover and report is not None:
        rec_exc: BaseException | None = None
        try:
            recovery = system.recover()
        except Exception as exc:  # reprolint: disable=R4
            rec_exc = exc
        obs["recovery exception"] = (type(rec_exc).__name__, str(rec_exc)) \
            if rec_exc is not None else None
        if recovery is not None:
            obs["recovered blocks"] = recovery.blocks_restored
            obs["recovery cycles"] = recovery.cycles
            obs["recovery stats"] = recovery.stats.snapshot()
        obs["hierarchy lines"] = [
            sorted(((line.address, line.data, line.dirty)
                    for line in level.lines()), key=lambda entry: entry[0])
            for level in system.hierarchy.levels]

    obs["NVM image"] = system.nvm.backend.image()
    obs["lost writes"] = list(system.nvm.lost_writes)
    if system.drain_counter is not None:
        obs["drain counter"] = (system.drain_counter.value,
                                system.drain_counter.ephemeral)
    obs["total stats"] = system.stats.snapshot()
    return system, report, recovery, drain_exc, obs


def run_differential(config: SystemConfig, scheme: str, *,
                     fill: str = "sparse", fill_seed: int = 11,
                     drain_seed: int = 23, recover: bool = False,
                     **system_kwargs) -> OracleOutcome:
    """Run one episode on both paths; raise on any observable difference.

    Returns the reports of whichever run matches the session's default
    batching setting (so a caller can transparently substitute a
    differential run for a normal one).  ``system_kwargs`` are forwarded to
    both :class:`~repro.core.system.SecureEpdSystem` constructions —
    fault-matrix schemes pass ``rotate_vault``/``recovery_mode`` etc.
    """
    runs = {}
    for batched in (True, False):
        runs[batched] = _observe(config, scheme, batched, fill, fill_seed,
                                 drain_seed, recover, system_kwargs)
    _, report_b, recovery_b, exc_b, obs_b = runs[True]
    _, report_s, recovery_s, exc_s, obs_s = runs[False]

    fields = sorted(set(obs_b) | set(obs_s))
    for name in fields:
        value_b, value_s = obs_b.get(name), obs_s.get(name)
        if value_b != value_s:
            raise OracleDivergenceError(
                f"scalar and batched paths diverged on {name!r} for "
                f"scheme={scheme!r} fill={fill!r} seeds=({fill_seed}, "
                f"{drain_seed}): batched={_shorten(value_b)} "
                f"scalar={_shorten(value_s)}")

    if batching_enabled(None):
        report, recovery, exc = report_b, recovery_b, exc_b
    else:
        report, recovery, exc = report_s, recovery_s, exc_s
    if exc is not None:
        raise exc
    return OracleOutcome(drain=report, recovery=recovery, checks=len(fields))


@dataclass(frozen=True)
class ReplayOutcome:
    """What one differential replay produced (the env-default run's view)."""

    system: SecureEpdSystem
    expected: dict[int, bytes] | None
    checks: int
    """Number of observable fields compared."""


def _meta_bytes(value: object) -> bytes:
    """Canonical byte serialization of a metadata-cache line value."""
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    return value.to_bytes()  # type: ignore[attr-defined]


def _observe_replay(config: SystemConfig, scheme: str, batched: bool,
                    trace: "list[MemoryOp]", epoch_ops: int,
                    system_kwargs: dict):
    """Replay ``trace`` on a fresh system; return its full observable state."""
    system = SecureEpdSystem(config, scheme=scheme, batched=batched,
                             **system_kwargs)
    obs: dict[str, object] = {}
    replay_exc: BaseException | None = None
    expected: dict[int, bytes] | None = None
    try:
        expected = replay(system, trace, epoch_ops=epoch_ops,
                          batched=batched)
    # Same contract as _observe: a failing replay is itself an observable
    # that both paths must produce identically.
    except Exception as exc:  # reprolint: disable=R4
        replay_exc = exc
    obs["replay exception"] = (type(replay_exc).__name__, str(replay_exc)) \
        if replay_exc is not None else None
    if expected is not None:
        obs["expected contents"] = expected

    obs["NVM image"] = system.nvm.backend.image()
    obs["lost writes"] = list(system.nvm.lost_writes)
    obs["total stats"] = system.stats.snapshot()

    hierarchy = system.hierarchy
    obs["access counts"] = dict(hierarchy.access_counts)
    obs["level hit rates"] = [(level.name, level.hits, level.misses)
                              for level in hierarchy.levels]
    obs["hierarchy lines"] = [
        sorted(((line.address, line.data, line.dirty)
                for line in level.lines()), key=lambda entry: entry[0])
        for level in hierarchy.levels]

    controller = system.controller
    if controller is not None:
        obs["root MAC"] = controller.root_mac
        obs["metadata caches"] = [
            (cache.name, cache.hits, cache.misses,
             sorted((line.address, _meta_bytes(line.value), line.dirty)
                    for line in cache.lines()))
            for cache in controller.metadata_caches]
    return system, expected, replay_exc, obs


def run_replay_differential(config: SystemConfig, scheme: str,
                            trace: "list[MemoryOp]", *,
                            epoch_ops: int = DEFAULT_EPOCH_OPS,
                            **system_kwargs) -> ReplayOutcome:
    """Replay the same trace scalar and epoch-batched; raise on divergence.

    The runtime twin of :func:`run_differential`: both runs start from a
    fresh system, so every observable — expected final contents, NVM image,
    lost writes, the full stats snapshot, cache hit/miss counters and
    resident lines at every level, metadata-cache contents, and the tree
    root MAC — must match byte for byte.  Returns the view of whichever run
    matches the session's default batching setting.
    """
    runs = {}
    for batched in (True, False):
        runs[batched] = _observe_replay(config, scheme, batched, trace,
                                        epoch_ops, system_kwargs)
    system_b, expected_b, exc_b, obs_b = runs[True]
    system_s, expected_s, exc_s, obs_s = runs[False]

    fields = sorted(set(obs_b) | set(obs_s))
    for name in fields:
        value_b, value_s = obs_b.get(name), obs_s.get(name)
        if value_b != value_s:
            raise OracleDivergenceError(
                f"scalar and batched replay diverged on {name!r} for "
                f"scheme={scheme!r} over {len(trace)} ops "
                f"(epoch_ops={epoch_ops}): batched={_shorten(value_b)} "
                f"scalar={_shorten(value_s)}")

    if batching_enabled(None):
        system, expected, exc = system_b, expected_b, exc_b
    else:
        system, expected, exc = system_s, expected_s, exc_s
    if exc is not None:
        raise exc
    return ReplayOutcome(system=system, expected=expected,
                         checks=len(fields))


def _shorten(value: object, limit: int = 200) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."
