"""Cache Hierarchy Vault (CHV) layout.

The CHV is a small reserved NVM region that receives the drained cache
hierarchy *sequentially*: encrypted data blocks, coalesced address blocks
(8 original addresses per 64 B block), and coalesced MAC blocks.  Because
placement is positional — block ``i`` of the episode goes to data slot ``i``
— a flushed block's drain-counter value is recoverable from its CHV position
alone, which is what removes every metadata fetch from the drain path.
"""

from collections.abc import Sequence
from dataclasses import dataclass

from repro.common.constants import (
    ADDRESSES_PER_BLOCK,
    CACHE_LINE_SIZE,
    CHV_CACHE_FACTOR_SLM,
    CHV_METADATA_FACTOR_SLM,
    MACS_PER_BLOCK,
)
from repro.common.config import SystemConfig
from repro.common.errors import AddressError
from repro.mem.regions import MemoryLayout, Region


@dataclass(frozen=True)
class ChvLayout:
    """Positional addressing inside the CHV region."""

    region: Region
    capacity: int
    """Maximum number of 64 B blocks one episode can vault."""

    @classmethod
    def for_layout(cls, layout: MemoryLayout) -> "ChvLayout":
        config = layout.config
        raw = (config.total_cache_lines
               + config.metadata_cache_size // CACHE_LINE_SIZE)
        # Whole DLM groups, matching the region sizing in MemoryLayout, so
        # a rotated vault base never splits a coalescing group.
        capacity = -(-raw // 64) * 64
        return cls(layout.chv, capacity)

    @property
    def _data_base(self) -> int:
        return self.region.base

    @property
    def _address_base(self) -> int:
        return self._data_base + self.capacity * CACHE_LINE_SIZE

    @property
    def _mac_base(self) -> int:
        blocks = -(-self.capacity // ADDRESSES_PER_BLOCK)
        return self._address_base + blocks * CACHE_LINE_SIZE

    def _check_position(self, position: int) -> None:
        if not 0 <= position < self.capacity:
            raise AddressError(
                f"CHV position {position} outside capacity {self.capacity}")

    def _check_group(self, group: int, per_block: int, label: str) -> None:
        """Bounds-check a coalescing-group index before forming an address.

        The final group may be partial (capacity not a multiple of
        ``per_block``); ``ceil`` keeps it addressable while anything past it
        raises :class:`AddressError` before any NVM access.
        """
        groups = -(-self.capacity // per_block)
        if not 0 <= group < groups:
            raise AddressError(
                f"CHV {label} block {group} outside the layout's "
                f"{groups} groups")

    def data_address(self, position: int) -> int:
        """NVM address of the ``position``-th vaulted data block."""
        self._check_position(position)
        return self._data_base + position * CACHE_LINE_SIZE

    def address_block_address(self, group: int) -> int:
        """NVM address of the address block covering positions 8g..8g+7."""
        self._check_group(group, ADDRESSES_PER_BLOCK, "address")
        return self._address_base + group * CACHE_LINE_SIZE

    def data_addresses(self, positions: Sequence[int]) -> list[int]:
        """NVM addresses for a whole episode's data slots in one pass.

        Equivalent to :meth:`data_address` per element; the bounds check
        runs over the batch's extremes first so the common case pays one
        comparison instead of one per block.
        """
        if positions and not (0 <= min(positions)
                              and max(positions) < self.capacity):
            for position in positions:
                self._check_position(position)
        base = self._data_base
        return [base + position * CACHE_LINE_SIZE for position in positions]

    def mac_block_address(self, group: int,
                          group_size: int = MACS_PER_BLOCK) -> int:
        """NVM address of MAC block ``group``.

        For Horus-SLM a MAC block covers 8 positions (``group_size=8``, the
        default); for Horus-DLM it covers 64 (8 second-level MACs of 8
        positions each, ``group_size=64``).  The group index is checked
        against the layout's group count for that size before any NVM
        access, exactly like :meth:`address_block_address`.
        """
        self._check_group(group, group_size, "MAC")
        return self._mac_base + group * CACHE_LINE_SIZE


@dataclass(frozen=True)
class VaultRotation:
    """Per-episode rotation of the vault base (wear-leveling extension).

    The paper fixes the CHV start address, so every drain episode rewrites
    the same NVM blocks; our wear ablation shows that makes the CHV the
    hottest region of the device.  Because a block's drain-counter value is
    already derived from registers (DC/eDC), the physical slot can rotate by
    any episode-constant amount that both drain and recovery can derive from
    DC at episode start — spreading wear across the whole vault with zero
    extra state.  The offset is group-aligned (a multiple of 64 positions)
    so address/MAC coalescing groups never straddle the wrap.
    """

    offset: int
    capacity: int

    @classmethod
    def for_episode(cls, chv: "ChvLayout", episode_start_dc: int,
                    enabled: bool,
                    group_align: int = 64) -> "VaultRotation":
        """Derive the episode's offset from the start-of-episode DC.

        The offset advances by whole coalescing groups per DC consumed
        (``offset = (DC mod groups) * group_align``) so that even small
        episodes land on fresh vault blocks, while staying aligned to the
        MAC-coalescing group (8 for SLM, 64 for DLM).
        """
        if not enabled:
            return cls(0, chv.capacity)
        groups = chv.capacity // group_align
        offset = (episode_start_dc % groups) * group_align
        return cls(offset, chv.capacity)

    def data_slot(self, position: int) -> int:
        return (position + self.offset) % self.capacity

    def data_slots(self, count: int) -> list[int]:
        """Slots for positions ``0..count-1`` (batched :meth:`data_slot`).

        With no rotation this is the identity — the batch path skips the
        per-position modulo entirely.
        """
        if not self.offset:
            return list(range(count))
        capacity = self.capacity
        offset = self.offset
        return [(position + offset) % capacity for position in range(count)]

    def address_group(self, group: int) -> int:
        groups = self.capacity // ADDRESSES_PER_BLOCK
        return (group + self.offset // ADDRESSES_PER_BLOCK) % groups

    def mac_group(self, group: int, group_size: int) -> int:
        groups = self.capacity // group_size
        return (group + self.offset // group_size) % groups


def expected_chv_bytes(config: SystemConfig) -> float:
    """Section IV-D sizing: 1.25 x cache + 1.125 x metadata cache (SLM)."""
    return (CHV_CACHE_FACTOR_SLM * config.total_cache_size
            + CHV_METADATA_FACTOR_SLM * config.metadata_cache_size)


MAC_GROUP_SLM = MACS_PER_BLOCK
"""Positions per MAC block with single-level MACs (8)."""

MAC_GROUP_DLM = MACS_PER_BLOCK * MACS_PER_BLOCK
"""Positions per MAC block with double-level MACs (64)."""
