"""The paper's contribution: CHV, Horus drain/recovery, the system facade."""

from repro.core.analytic import (
    HorusDrainCost,
    horus_drain_cost,
    horus_drain_seconds,
    validate_baseline_report,
    validate_horus_report,
)
from repro.core.chv import (
    MAC_GROUP_DLM,
    MAC_GROUP_SLM,
    ChvLayout,
    expected_chv_bytes,
)
from repro.core.horus import HorusDrainEngine
from repro.core.recovery import (
    HorusRecovery,
    RecoveryReport,
    estimate_recovery_seconds,
    estimate_recovery_stats,
)
from repro.core.system import SCHEMES, SecureEpdSystem

__all__ = [
    "HorusDrainCost",
    "horus_drain_cost",
    "horus_drain_seconds",
    "validate_baseline_report",
    "validate_horus_report",
    "MAC_GROUP_DLM",
    "MAC_GROUP_SLM",
    "ChvLayout",
    "expected_chv_bytes",
    "HorusDrainEngine",
    "HorusRecovery",
    "RecoveryReport",
    "estimate_recovery_seconds",
    "estimate_recovery_stats",
    "SCHEMES",
    "SecureEpdSystem",
]
