"""The Horus drain engine (Section IV-C).

Horus replaces the baseline's in-place flushes with sequential writes into
the Cache Hierarchy Vault, encrypted under a never-repeating on-chip drain
counter.  Nothing in the drain path touches the main tree, counter, or MAC
regions, so the episode cost is independent of the hierarchy's spatial
contents:

* per flushed line — one pad generation, one MAC, one CHV data write;
* per 8 lines — one coalesced address-block write;
* MAC writes — one block per 8 lines (SLM) or, with the double-level MAC
  register scheme of Fig. 10, one block per 64 lines at the price of one
  extra second-level MAC per 8 lines (the 1.125x of Fig. 13);
* after the hierarchy — the metadata-cache content is vaulted the same way
  (negligible; Fig. 12's rightmost component).

The engine has two executions of the same episode semantics:

* the **scalar path** (``batched=False`` or ``REPRO_BATCH=0``) walks the
  hierarchy block by block through the scalar crypto primitives — the
  reference implementation, kept verbatim;
* the **batched path** (default) collects the episode's work list once,
  reserves the whole counter range, runs the crypto through
  :mod:`repro.crypto.batch`, and issues every NVM write through the grouped
  device path — byte-identical output, identical operation counters,
  identical write order (so fault plans lose exactly the same writes), at a
  fraction of the interpreter overhead.  The differential oracle
  (:mod:`repro.core.oracle`) holds the two paths to each other.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.constants import (
    ADDRESSES_PER_BLOCK,
    CACHE_LINE_SIZE,
    MACS_PER_BLOCK,
)
from repro.common.errors import ConfigError
from repro.core.chv import (
    MAC_GROUP_DLM,
    MAC_GROUP_SLM,
    ChvLayout,
    VaultRotation,
)
from repro.crypto.arena import frame_buffer, pack_u64
from repro.crypto.batch import batching_enabled, split_blocks
from repro.crypto.counters import DrainCounter
from repro.crypto.engine import AesEngine, MacEngine
from repro.crypto.primitives import MacDomain
from repro.epd.drain import DrainEngine
from repro.mem.nvm import NvmDevice
from repro.secure.controller import SecureMemoryController
from repro.stats.events import MacKind, WriteKind
from repro.stats.timing import TimingModel

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


class HorusDrainEngine(DrainEngine):
    """Drain the hierarchy into the CHV (Horus-SLM or Horus-DLM)."""

    def __init__(self, controller: SecureMemoryController, nvm: NvmDevice,
                 chv: ChvLayout, drain_counter: DrainCounter,
                 timing: TimingModel, double_level_mac: bool = False,
                 rotate_vault: bool = False, batched: bool | None = None):
        super().__init__(controller.stats, timing)
        self._controller = controller
        self._nvm = nvm
        self._chv = chv
        self._dc = drain_counter
        self._dlm = double_level_mac
        self.rotate_vault = rotate_vault
        self.batched = batching_enabled(batched)
        self._rotation = VaultRotation.for_episode(chv, 0, False)
        self.name = "horus-dlm" if double_level_mac else "horus-slm"
        # Horus reuses the run-time AES/MAC engines during draining
        # (Section IV-D: no new crypto hardware).
        self._aes: AesEngine = controller.aes
        self._mac: MacEngine = controller.mac

    @property
    def mac_group(self) -> int:
        return MAC_GROUP_DLM if self._dlm else MAC_GROUP_SLM

    def _run(self, hierarchy: CacheHierarchy,
             seed: int | None) -> tuple[int, int]:
        self._rotation = VaultRotation.for_episode(
            self._chv, self._dc.value, self.rotate_vault,
            group_align=self.mac_group)
        self._dc.begin_episode()
        if self.batched:
            return self._run_batched(hierarchy, seed)
        return self._run_scalar(hierarchy, seed)

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------

    def _run_batched(self, hierarchy: CacheHierarchy,
                     seed: int | None) -> tuple[int, int]:
        lines = list(hierarchy.drain_lines(seed))
        addresses = [line.address for line in lines]
        payloads: list[bytes | None] = [line.data for line in lines]
        flushed = len(lines)
        kinds = [WriteKind.CHV_DATA] * flushed

        metadata = 0
        controller = self._controller
        for cache in controller.metadata_caches:
            for meta_line in cache.lines():
                addresses.append(meta_line.address)
                payloads.append(controller.line_bytes(meta_line))
                kinds.append(WriteKind.CHV_METADATA)
                metadata += 1

        total = len(addresses)
        count = min(total, self._chv.capacity)
        if count < total:
            # Mirror the scalar path exactly: the first `capacity` blocks
            # are fully vaulted (capacity is group-aligned, so no partial
            # registers remain), then the episode aborts.
            del addresses[count:], payloads[count:], kinds[count:]
        self._vault_batch(addresses, payloads, kinds)
        if count < total:
            raise ConfigError("CHV overflow: episode exceeds vault capacity")
        return flushed, metadata

    def _vault_batch(self, addresses: list[int], payloads: list,
                     kinds: list[WriteKind]) -> None:
        """Crypto, coalescing, and the single grouped NVM issue."""
        count = len(addresses)
        if not count:
            # An empty episode records nothing, exactly like the scalar
            # loop that never runs.
            return
        chv = self._chv
        rotation = self._rotation
        start = self._dc.take(count)
        counters = range(start, start + count)
        frames = frame_buffer(addresses, counters)

        plaintext = None
        if count and payloads[0] is not None:
            plaintext = b"".join(payloads)
        ciphertext = self._aes.encrypt_batch(addresses, counters, plaintext,
                                             frames)
        macs = self._mac.block_mac_batch(
            MacKind.CHV_DATA, ciphertext, addresses, counters,
            domain=MacDomain.CHV_DATA, frames=frames)
        mac_raw = b"".join(macs)

        level2: list[bytes] = []
        level2_raw = b""
        if self._dlm and count:
            mac_view = memoryview(mac_raw)
            groups = [mac_view[i:i + CACHE_LINE_SIZE]
                      for i in range(0, len(mac_raw), CACHE_LINE_SIZE)]
            level2 = self._mac.digest_mac_batch(
                MacKind.CHV_LEVEL2, groups, len(groups),
                domain=MacDomain.CHV_LEVEL2)
            level2_raw = b"".join(level2)

        data_addresses = chv.data_addresses(rotation.data_slots(count))

        # The batch's composition is known in closed form (kinds is a
        # CHV_DATA prefix followed by a CHV_METADATA suffix); zero-count
        # kinds are omitted so the folded stats update touches exactly the
        # counters the scalar path would.
        data_count = kinds.count(WriteKind.CHV_DATA)
        addr_blocks = -(-count // ADDRESSES_PER_BLOCK)
        mac_blocks = -(-count // self.mac_group)

        if self._nvm.grouped_io:
            # No fault plan, wear tracker, or trace is watching individual
            # requests, so the interleaved stream can collapse into three
            # arena writes (data, address blocks, MAC blocks): the episode
            # touches disjoint CHV regions, so the final image and the
            # folded per-kind counters are identical to scalar issue.
            data_counts = {}
            if data_count:
                data_counts[WriteKind.CHV_DATA] = data_count
            if count > data_count:
                data_counts[WriteKind.CHV_METADATA] = count - data_count
            self._nvm.write_arena(
                data_addresses,
                ciphertext if ciphertext is not None
                else bytes(count * CACHE_LINE_SIZE),
                WriteKind.CHV_DATA, data_counts)

            addr_buf = pack_u64(addresses)
            if len(addr_buf) < addr_blocks * CACHE_LINE_SIZE:
                addr_buf = addr_buf.ljust(addr_blocks * CACHE_LINE_SIZE,
                                          b"\0")
            addr_group = rotation.address_group
            self._nvm.write_arena(
                [chv.address_block_address(addr_group(g))
                 for g in range(addr_blocks)],
                addr_buf, WriteKind.CHV_ADDRESS)

            mac_buf = level2_raw if self._dlm else mac_raw
            if len(mac_buf) < mac_blocks * CACHE_LINE_SIZE:
                mac_buf = mac_buf.ljust(mac_blocks * CACHE_LINE_SIZE, b"\0")
            mac_group = rotation.mac_group
            self._nvm.write_arena(
                [chv.mac_block_address(mac_group(g, self.mac_group),
                                       self.mac_group)
                 for g in range(mac_blocks)],
                mac_buf, WriteKind.CHV_MAC)
            return

        # Accounted channels (fault plan / wear / trace) observe each
        # request: build the interleaved per-write stream so they see the
        # exact scalar order, and lose exactly the same writes.
        if ciphertext is None:
            data_payloads: list[bytes] = [_ZERO_BLOCK] * count
        else:
            data_payloads = split_blocks(ciphertext)
        data_writes = list(zip(data_addresses, data_payloads, kinds))
        writes: list[tuple[int, bytes, WriteKind]] = []
        extend = writes.extend
        append = writes.append
        full_groups = count // ADDRESSES_PER_BLOCK
        # Interleave per coalescing group, preserving the scalar write
        # order: 8 data writes, the group's address block, then (SLM) its
        # MAC block or (DLM) a second-level block after every 8th group.
        for g in range(full_groups):
            lo = g * ADDRESSES_PER_BLOCK
            hi = lo + ADDRESSES_PER_BLOCK
            extend(data_writes[lo:hi])
            append(self._address_block(addresses, lo, hi))
            if self._dlm:
                if hi % MAC_GROUP_DLM == 0:
                    group = hi // MAC_GROUP_DLM - 1
                    append(self._mac_block(
                        level2, group * MACS_PER_BLOCK,
                        (group + 1) * MACS_PER_BLOCK, group))
            else:
                append(self._mac_block(macs, lo, hi, g))

        # Partial coalescing registers flush at episode end, address block
        # first — the scalar _finalize order.
        if count % ADDRESSES_PER_BLOCK:
            extend(data_writes[full_groups * ADDRESSES_PER_BLOCK:])
            append(self._address_block(
                addresses, full_groups * ADDRESSES_PER_BLOCK, count))
        if self._dlm:
            full_blocks = count // MAC_GROUP_DLM
            if len(level2) > full_blocks * MACS_PER_BLOCK:
                append(self._mac_block(
                    level2, full_blocks * MACS_PER_BLOCK, len(level2),
                    full_blocks))
        elif count % MACS_PER_BLOCK:
            append(self._mac_block(
                macs, count - count % MACS_PER_BLOCK, count,
                count // MACS_PER_BLOCK))

        kind_counts = {}
        if data_count:
            kind_counts[WriteKind.CHV_DATA] = data_count
        if count > data_count:
            kind_counts[WriteKind.CHV_METADATA] = count - data_count
        if count:
            kind_counts[WriteKind.CHV_ADDRESS] = addr_blocks
            kind_counts[WriteKind.CHV_MAC] = mac_blocks
        self._nvm.write_batch(writes, kind_counts)

    def _address_block(self, addresses: list[int], lo: int,
                       hi: int) -> tuple[int, bytes, WriteKind]:
        payload = b"".join(address.to_bytes(8, "little")
                           for address in addresses[lo:hi])
        if hi - lo < ADDRESSES_PER_BLOCK:
            payload = payload.ljust(CACHE_LINE_SIZE, b"\0")
        group = self._rotation.address_group(lo // ADDRESSES_PER_BLOCK)
        return (self._chv.address_block_address(group), payload,
                WriteKind.CHV_ADDRESS)

    def _mac_block(self, macs: list[bytes], lo: int, hi: int,
                   group: int) -> tuple[int, bytes, WriteKind]:
        payload = b"".join(macs[lo:hi])
        if len(payload) < CACHE_LINE_SIZE:
            payload = payload.ljust(CACHE_LINE_SIZE, b"\0")
        rotated = self._rotation.mac_group(group, self.mac_group)
        return (self._chv.mac_block_address(rotated, self.mac_group),
                payload, WriteKind.CHV_MAC)

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------

    def _run_scalar(self, hierarchy: CacheHierarchy,
                    seed: int | None) -> tuple[int, int]:
        state = _EpisodeState()

        flushed = 0
        for line in hierarchy.drain_lines(seed):
            self._vault_block(state, line.address, line.data,
                              WriteKind.CHV_DATA)
            flushed += 1

        metadata = 0
        controller = self._controller
        for cache in controller.metadata_caches:
            for meta_line in cache.lines():
                self._vault_block(state, meta_line.address,
                                  controller.line_bytes(meta_line),
                                  WriteKind.CHV_METADATA)
                metadata += 1

        self._finalize(state)
        return flushed, metadata

    def _vault_block(self, state: "_EpisodeState", address: int,
                     data: bytes | None, kind: WriteKind) -> None:
        position = state.position
        if position >= self._chv.capacity:
            raise ConfigError("CHV overflow: episode exceeds vault capacity")
        counter = self._dc.next()

        ciphertext = self._aes.encrypt(address, counter, data)
        self._nvm.write(
            self._chv.data_address(self._rotation.data_slot(position)),
            ciphertext if ciphertext is not None else _ZERO_BLOCK,
            kind)

        state.address_register.append(address)
        if len(state.address_register) == ADDRESSES_PER_BLOCK:
            self._write_address_block(state)

        mac_value = self._mac.block_mac(
            MacKind.CHV_DATA, ciphertext, address, counter,
            domain=MacDomain.CHV_DATA)
        state.mac_register.append(mac_value)
        if len(state.mac_register) == MACS_PER_BLOCK:
            if self._dlm:
                self._fold_mac_register(state)
            else:
                self._write_mac_block(state, state.mac_register)
                state.mac_register = []

        state.position += 1

    def _fold_mac_register(self, state: "_EpisodeState") -> None:
        """DLM: compress the 8-entry MAC register into one second-level MAC."""
        second = self._mac.digest_mac(
            MacKind.CHV_LEVEL2, b"".join(state.mac_register),
            domain=MacDomain.CHV_LEVEL2)
        state.mac_register = []
        state.level2_register.append(second)
        if len(state.level2_register) == MACS_PER_BLOCK:
            self._write_mac_block(state, state.level2_register)
            state.level2_register = []

    def _write_address_block(self, state: "_EpisodeState") -> None:
        payload = b"".join(a.to_bytes(8, "little")
                           for a in state.address_register)
        payload = payload.ljust(CACHE_LINE_SIZE, b"\0")
        group = self._rotation.address_group(state.address_group)
        self._nvm.write(self._chv.address_block_address(group),
                        payload, WriteKind.CHV_ADDRESS)
        state.address_register = []
        state.address_group += 1

    def _write_mac_block(self, state: "_EpisodeState",
                         macs: list[bytes]) -> None:
        payload = b"".join(macs).ljust(CACHE_LINE_SIZE, b"\0")
        group = self._rotation.mac_group(state.mac_group_index,
                                         self.mac_group)
        self._nvm.write(self._chv.mac_block_address(group, self.mac_group),
                        payload, WriteKind.CHV_MAC)
        state.mac_group_index += 1

    def _finalize(self, state: "_EpisodeState") -> None:
        """Flush partially-filled coalescing registers at episode end."""
        if state.address_register:
            self._write_address_block(state)
        if self._dlm:
            if state.mac_register:
                self._fold_mac_register_partial(state)
            if state.level2_register:
                self._write_mac_block(state, state.level2_register)
                state.level2_register = []
        elif state.mac_register:
            self._write_mac_block(state, state.mac_register)
            state.mac_register = []

    def _fold_mac_register_partial(self, state: "_EpisodeState") -> None:
        second = self._mac.digest_mac(
            MacKind.CHV_LEVEL2, b"".join(state.mac_register),
            domain=MacDomain.CHV_LEVEL2)
        state.mac_register = []
        state.level2_register.append(second)


class _EpisodeState:
    """The on-chip coalescing registers of Section IV-C/IV-D."""

    __slots__ = ("position", "address_register", "address_group",
                 "mac_register", "level2_register", "mac_group_index")

    def __init__(self) -> None:
        self.position = 0
        self.address_register: list[int] = []
        self.address_group = 0
        self.mac_register: list[bytes] = []
        self.level2_register: list[bytes] = []
        self.mac_group_index = 0
