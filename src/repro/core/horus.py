"""The Horus drain engine (Section IV-C).

Horus replaces the baseline's in-place flushes with sequential writes into
the Cache Hierarchy Vault, encrypted under a never-repeating on-chip drain
counter.  Nothing in the drain path touches the main tree, counter, or MAC
regions, so the episode cost is independent of the hierarchy's spatial
contents:

* per flushed line — one pad generation, one MAC, one CHV data write;
* per 8 lines — one coalesced address-block write;
* MAC writes — one block per 8 lines (SLM) or, with the double-level MAC
  register scheme of Fig. 10, one block per 64 lines at the price of one
  extra second-level MAC per 8 lines (the 1.125x of Fig. 13);
* after the hierarchy — the metadata-cache content is vaulted the same way
  (negligible; Fig. 12's rightmost component).
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.constants import (
    ADDRESSES_PER_BLOCK,
    CACHE_LINE_SIZE,
    MACS_PER_BLOCK,
)
from repro.common.errors import ConfigError
from repro.core.chv import (
    MAC_GROUP_DLM,
    MAC_GROUP_SLM,
    ChvLayout,
    VaultRotation,
)
from repro.crypto.counters import DrainCounter
from repro.crypto.engine import AesEngine, MacEngine
from repro.epd.drain import DrainEngine
from repro.mem.nvm import NvmDevice
from repro.secure.controller import SecureMemoryController
from repro.stats.events import MacKind, WriteKind
from repro.stats.timing import TimingModel

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


class HorusDrainEngine(DrainEngine):
    """Drain the hierarchy into the CHV (Horus-SLM or Horus-DLM)."""

    def __init__(self, controller: SecureMemoryController, nvm: NvmDevice,
                 chv: ChvLayout, drain_counter: DrainCounter,
                 timing: TimingModel, double_level_mac: bool = False,
                 rotate_vault: bool = False):
        super().__init__(controller.stats, timing)
        self._controller = controller
        self._nvm = nvm
        self._chv = chv
        self._dc = drain_counter
        self._dlm = double_level_mac
        self.rotate_vault = rotate_vault
        self._rotation = VaultRotation.for_episode(chv, 0, False)
        self.name = "horus-dlm" if double_level_mac else "horus-slm"
        # Horus reuses the run-time AES/MAC engines during draining
        # (Section IV-D: no new crypto hardware).
        self._aes: AesEngine = controller.aes
        self._mac: MacEngine = controller.mac

    @property
    def mac_group(self) -> int:
        return MAC_GROUP_DLM if self._dlm else MAC_GROUP_SLM

    def _run(self, hierarchy: CacheHierarchy,
             seed: int | None) -> tuple[int, int]:
        self._rotation = VaultRotation.for_episode(
            self._chv, self._dc.value, self.rotate_vault,
            group_align=self.mac_group)
        self._dc.begin_episode()
        state = _EpisodeState()

        flushed = 0
        for line in hierarchy.drain_lines(seed):
            self._vault_block(state, line.address, line.data,
                              WriteKind.CHV_DATA)
            flushed += 1

        metadata = 0
        controller = self._controller
        for cache in controller.metadata_caches:
            for meta_line in cache.lines():
                self._vault_block(state, meta_line.address,
                                  controller.line_bytes(meta_line),
                                  WriteKind.CHV_METADATA)
                metadata += 1

        self._finalize(state)
        return flushed, metadata

    # ------------------------------------------------------------------

    def _vault_block(self, state: "_EpisodeState", address: int,
                     data: bytes | None, kind: WriteKind) -> None:
        position = state.position
        if position >= self._chv.capacity:
            raise ConfigError("CHV overflow: episode exceeds vault capacity")
        counter = self._dc.next()

        ciphertext = self._aes.encrypt(address, counter, data)
        self._nvm.write(
            self._chv.data_address(self._rotation.data_slot(position)),
            ciphertext if ciphertext is not None else _ZERO_BLOCK,
            kind)

        state.address_register.append(address)
        if len(state.address_register) == ADDRESSES_PER_BLOCK:
            self._write_address_block(state)

        mac_value = self._mac.block_mac(
            MacKind.CHV_DATA, ciphertext, address, counter)
        state.mac_register.append(mac_value)
        if len(state.mac_register) == MACS_PER_BLOCK:
            if self._dlm:
                self._fold_mac_register(state)
            else:
                self._write_mac_block(state, state.mac_register)
                state.mac_register = []

        state.position += 1

    def _fold_mac_register(self, state: "_EpisodeState") -> None:
        """DLM: compress the 8-entry MAC register into one second-level MAC."""
        second = self._mac.digest_mac(
            MacKind.CHV_LEVEL2, b"".join(state.mac_register))
        state.mac_register = []
        state.level2_register.append(second)
        if len(state.level2_register) == MACS_PER_BLOCK:
            self._write_mac_block(state, state.level2_register)
            state.level2_register = []

    def _write_address_block(self, state: "_EpisodeState") -> None:
        payload = b"".join(a.to_bytes(8, "little")
                           for a in state.address_register)
        payload = payload.ljust(CACHE_LINE_SIZE, b"\0")
        group = self._rotation.address_group(state.address_group)
        self._nvm.write(self._chv.address_block_address(group),
                        payload, WriteKind.CHV_ADDRESS)
        state.address_register = []
        state.address_group += 1

    def _write_mac_block(self, state: "_EpisodeState",
                         macs: list[bytes]) -> None:
        payload = b"".join(macs).ljust(CACHE_LINE_SIZE, b"\0")
        group = self._rotation.mac_group(state.mac_group_index,
                                         self.mac_group)
        self._nvm.write(self._chv.mac_block_address(group, self.mac_group),
                        payload, WriteKind.CHV_MAC)
        state.mac_group_index += 1

    def _finalize(self, state: "_EpisodeState") -> None:
        """Flush partially-filled coalescing registers at episode end."""
        if state.address_register:
            self._write_address_block(state)
        if self._dlm:
            if state.mac_register:
                self._fold_mac_register_partial(state)
            if state.level2_register:
                self._write_mac_block(state, state.level2_register)
                state.level2_register = []
        elif state.mac_register:
            self._write_mac_block(state, state.mac_register)
            state.mac_register = []

    def _fold_mac_register_partial(self, state: "_EpisodeState") -> None:
        second = self._mac.digest_mac(
            MacKind.CHV_LEVEL2, b"".join(state.mac_register))
        state.mac_register = []
        state.level2_register.append(second)


class _EpisodeState:
    """The on-chip coalescing registers of Section IV-C/IV-D."""

    __slots__ = ("position", "address_register", "address_group",
                 "mac_register", "level2_register", "mac_group_index")

    def __init__(self) -> None:
        self.position = 0
        self.address_register: list[int] = []
        self.address_group = 0
        self.mac_register: list[bytes] = []
        self.level2_register: list[bytes] = []
        self.mac_group_index = 0
