"""Horus recovery (Section IV-C3) and the Fig. 16 recovery-time estimator.

Upon power restoration the CHV content is read back, each block's drain
counter is re-derived from its vault position and the persistent DC/eDC
registers, its MAC is verified, and the decrypted block is placed back —
data-region blocks into the LLC in dirty state (the paper's option 1),
metadata blocks into their metadata caches.

The paper reads the vault in reversed flush order; position grouping makes
forward order more natural here and the operation counts (what Fig. 16
measures) are identical either way.
"""

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.constants import (
    ADDRESSES_PER_BLOCK,
    CACHE_LINE_SIZE,
    MAC_SIZE,
    MACS_PER_BLOCK,
)
from repro.common.errors import ConfigError, IntegrityError, RecoveryError
from repro.core.chv import MAC_GROUP_DLM, MAC_GROUP_SLM, ChvLayout
from repro.crypto.arena import unpack_u64
from repro.crypto.batch import batching_enabled, split_blocks
from repro.crypto.counters import DrainCounter
from repro.crypto.primitives import MacDomain
from repro.mem.nvm import NvmDevice
from repro.secure.controller import SecureMemoryController
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind, ReadKind
from repro.stats.timing import TimingModel


@dataclass(frozen=True)
class RecoveryReport:
    """Everything measured about one recovery episode."""

    scheme: str
    blocks_restored: int
    stats: SimStats
    cycles: int
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


class HorusRecovery:
    """Reads back, verifies, decrypts, and restores one drain episode."""

    def __init__(self, controller: SecureMemoryController, nvm: NvmDevice,
                 chv: ChvLayout, drain_counter: DrainCounter,
                 hierarchy: CacheHierarchy, timing: TimingModel,
                 double_level_mac: bool = False, mode: str = "refill",
                 rotate_vault: bool = False, batched: bool | None = None):
        if mode not in ("refill", "writeback"):
            raise ConfigError(
                f"recovery mode must be 'refill' or 'writeback', got {mode!r}")
        self._controller = controller
        self._nvm = nvm
        self._chv = chv
        self._dc = drain_counter
        self._hierarchy = hierarchy
        self._timing = timing
        self._dlm = double_level_mac
        self.rotate_vault = rotate_vault
        self.batched = batching_enabled(batched)
        self.step_hook = None
        """Optional callback ``step_hook(position)`` invoked before each
        vault position is read back.  The campaign engine uses it to model
        tampering or a nested power cut
        (:class:`~repro.faults.plan.PowerInterrupt`) at a
        precise recovery step; while set, recovery takes the scalar path so
        every position is a distinct step."""
        self.mode = mode
        """The paper's two recovery options (Section IV-C3): ``refill``
        places verified blocks back in the LLC dirty (option 1, inclusive
        LLCs); ``writeback`` treats them as normal run-time writes through
        the main security metadata (option 2, for non-inclusive LLCs)."""
        self.name = "horus-dlm" if double_level_mac else "horus-slm"

    def recover(self) -> RecoveryReport:
        if not self._controller.functional:
            raise ConfigError(
                "functional recovery requires SecurityConfig.functional=True; "
                "use estimate_recovery() for counting-only studies")
        count = self._dc.ephemeral
        if count == 0:
            raise RecoveryError("no drain episode to recover")

        stats = self._controller.stats
        before = stats.copy()

        # The rotation offset is derived from the episode-start DC — exactly
        # as the drain derived it (DC and eDC are persistent registers).
        from repro.core.chv import VaultRotation
        rotation = VaultRotation.for_episode(
            self._chv, self._dc.value - self._dc.ephemeral, self.rotate_vault,
            group_align=self.mac_group)

        writeback_queue: list[tuple[int, bytes]] = []
        if (self.batched and self._nvm.trace is None
                and self.step_hook is None):
            self._recover_batched(count, rotation, writeback_queue)
        else:
            self._recover_scalar(count, rotation, writeback_queue)

        for address, plaintext in writeback_queue:
            self._controller.write(address, plaintext)

        self._dc.clear_ephemeral()
        episode = stats.diff(before)
        cycles = self._timing.cycles(episode)
        return RecoveryReport(
            scheme=self.name,
            blocks_restored=count,
            stats=episode,
            cycles=cycles,
            seconds=cycles / self._timing.config.frequency_hz,
        )

    def _recover_scalar(self, count: int, rotation,
                        writeback_queue: list[tuple[int, bytes]]) -> None:
        """The reference per-position read/verify/restore loop."""
        aes = self._controller.aes
        mac = self._controller.mac
        layout = self._controller.layout

        address_block: bytes | None = None
        mac_block: bytes | None = None
        dlm_buffer: list[bytes] = []
        dlm_pending: list[tuple[int, int, bytes]] = []

        for position in range(count):
            if self.step_hook is not None:
                self.step_hook(position)
            if position % ADDRESSES_PER_BLOCK == 0:
                group = rotation.address_group(
                    position // ADDRESSES_PER_BLOCK)
                address_block = self._nvm.read(
                    self._chv.address_block_address(group), ReadKind.CHV)
            if position % self.mac_group == 0:
                group = rotation.mac_group(position // self.mac_group,
                                           self.mac_group)
                mac_block = self._nvm.read(
                    self._chv.mac_block_address(group, self.mac_group),
                    ReadKind.CHV)

            slot = position % ADDRESSES_PER_BLOCK
            address = int.from_bytes(
                address_block[slot * 8:(slot + 1) * 8], "little")
            counter = self._dc.value_at(position)
            ciphertext = self._nvm.read(
                self._chv.data_address(rotation.data_slot(position)),
                ReadKind.CHV)

            computed = mac.block_mac(MacKind.VERIFY, ciphertext,
                                     address, counter,
                                     domain=MacDomain.CHV_DATA)
            if self._dlm:
                # Verification of a DLM group is deferred to its second-level
                # MAC, so nothing from the group is decrypted or restored
                # until that MAC checks out — a corrupted vault block must
                # never reach the hierarchy.
                dlm_buffer.append(computed)
                dlm_pending.append((address, counter, ciphertext))
                if self._maybe_check_dlm_group(mac, mac_block, dlm_buffer,
                                               position, count):
                    for entry in dlm_pending:
                        self._consume(layout, aes, writeback_queue, *entry)
                    dlm_pending = []
                if len(dlm_buffer) == MACS_PER_BLOCK:
                    dlm_buffer = []
            else:
                stored = self._stored_mac(mac_block, position, MAC_GROUP_SLM)
                if stored != computed:
                    raise IntegrityError(
                        f"CHV MAC mismatch at vault position {position} "
                        f"(original address {address:#x})", address)
                self._consume(layout, aes, writeback_queue,
                              address, counter, ciphertext)

    def _recover_batched(self, count: int, rotation,
                         writeback_queue: list[tuple[int, bytes]]) -> None:
        """Whole-episode verify/decrypt through the batch crypto engines.

        On success the restored state, NVM image, and operation counters are
        identical to :meth:`_recover_scalar` (the differential oracle pins
        this).  On an integrity failure the same blocks are restored — every
        position (SLM) or full first-level group (DLM) *before* the failing
        one — and the same exception is raised; only the failure-path
        operation counters differ, because the batch computed the whole
        episode's MACs before the first comparison.
        """
        mac = self._controller.mac
        aes = self._controller.aes
        layout = self._controller.layout
        chv = self._chv
        group_size = self.mac_group

        address_buf = self._nvm.read_arena(
            [chv.address_block_address(rotation.address_group(g))
             for g in range(-(-count // ADDRESSES_PER_BLOCK))],
            ReadKind.CHV)
        mac_buf = self._nvm.read_arena(
            [chv.mac_block_address(rotation.mac_group(g, group_size),
                                   group_size)
             for g in range(-(-count // group_size))],
            ReadKind.CHV)
        buffer = self._nvm.read_arena(
            chv.data_addresses(rotation.data_slots(count)), ReadKind.CHV)

        addresses = unpack_u64(address_buf)[:count]
        base = self._dc.value - self._dc.ephemeral
        counters = range(base, base + count)
        computed = mac.block_mac_batch(MacKind.VERIFY, buffer, addresses,
                                       counters, domain=MacDomain.CHV_DATA)
        computed_raw = b"".join(computed)

        verified = count
        failure: IntegrityError | None = None
        if self._dlm:
            computed_view = memoryview(computed_raw)
            groups = [computed_view[i:i + CACHE_LINE_SIZE]
                      for i in range(0, len(computed_raw), CACHE_LINE_SIZE)]
            level2 = mac.digest_mac_batch(MacKind.VERIFY, groups,
                                          len(groups),
                                          domain=MacDomain.CHV_LEVEL2)
            level2_raw = b"".join(level2)
            # Fast path: an untampered vault matches the whole stored MAC
            # run at once (stored second-level MACs are consecutive 8 B
            # slots); only a mismatch pays the per-group scan that
            # pinpoints the first failing group exactly like scalar.
            if mac_buf[:len(level2_raw)] != level2_raw:
                mac_blocks = split_blocks(mac_buf)
                for g, second in enumerate(level2):
                    start = g * MACS_PER_BLOCK
                    slot = (start % MAC_GROUP_DLM) // MACS_PER_BLOCK
                    stored = mac_blocks[start // MAC_GROUP_DLM][
                        slot * MAC_SIZE:(slot + 1) * MAC_SIZE]
                    if stored != second:
                        verified = start
                        position = min(start + MACS_PER_BLOCK, count) - 1
                        failure = IntegrityError(
                            f"CHV second-level MAC mismatch for group "
                            f"ending at vault position {position}")
                        break
        else:
            if mac_buf[:len(computed_raw)] != computed_raw:
                mac_blocks = split_blocks(mac_buf)
                for position in range(count):
                    stored = self._stored_mac(
                        mac_blocks[position // MAC_GROUP_SLM], position,
                        MAC_GROUP_SLM)
                    if stored != computed[position]:
                        verified = position
                        failure = IntegrityError(
                            f"CHV MAC mismatch at vault position "
                            f"{position} (original address "
                            f"{addresses[position]:#x})",
                            addresses[position])
                        break

        if verified:
            plaintext = aes.decrypt_batch(
                addresses[:verified], counters[:verified],
                buffer[:verified * CACHE_LINE_SIZE])
            for address, block in zip(addresses, split_blocks(plaintext)):
                self._place(layout, writeback_queue, address, block)
        if failure is not None:
            raise failure

    # ------------------------------------------------------------------

    @property
    def mac_group(self) -> int:
        return MAC_GROUP_DLM if self._dlm else MAC_GROUP_SLM

    @staticmethod
    def _stored_mac(mac_block: bytes, position: int, group_size: int) -> bytes:
        slot = (position % group_size) // (group_size // MACS_PER_BLOCK)
        return mac_block[slot * MAC_SIZE:(slot + 1) * MAC_SIZE]

    def _maybe_check_dlm_group(self, mac, mac_block: bytes,
                               dlm_buffer: list[bytes], position: int,
                               count: int) -> bool:
        """Verify a completed (or final partial) first-level MAC group.

        Returns True when a check ran (and passed), so the caller knows the
        group's pending blocks may now be consumed.
        """
        group_done = len(dlm_buffer) == MACS_PER_BLOCK
        episode_done = position == count - 1
        if not group_done and not episode_done:
            return False
        second = mac.digest_mac(MacKind.VERIFY, b"".join(dlm_buffer),
                                domain=MacDomain.CHV_LEVEL2)
        slot = (position % MAC_GROUP_DLM) // MACS_PER_BLOCK
        stored = mac_block[slot * MAC_SIZE:(slot + 1) * MAC_SIZE]
        if stored != second:
            raise IntegrityError(
                f"CHV second-level MAC mismatch for group ending at vault "
                f"position {position}")
        return True

    def _consume(self, layout, aes, writeback_queue: list[tuple[int, bytes]],
                 address: int, counter: int, ciphertext: bytes) -> None:
        """Decrypt and place one verified vault block."""
        plaintext = aes.decrypt(address, counter, ciphertext)
        self._place(layout, writeback_queue, address, plaintext)

    def _place(self, layout, writeback_queue: list[tuple[int, bytes]],
               address: int, plaintext: bytes) -> None:
        if self.mode == "writeback" and layout.classify(address) == "data":
            # Option 2: replay as run-time writes, but only after the
            # vaulted metadata-cache content is back (it arrives at the
            # end of the vault, and the lazy tree is unverifiable
            # without it).
            writeback_queue.append((address, plaintext))
        else:
            self._restore(layout, address, plaintext)

    def _restore(self, layout, address: int, plaintext: bytes) -> None:
        region = layout.classify(address)
        if region == "data":
            self._hierarchy.restore_dirty(address, plaintext)
        else:
            self._controller.restore_metadata_line(address, plaintext)


def estimate_recovery_stats(config: SystemConfig, double_level_mac: bool,
                            blocks: int | None = None) -> SimStats:
    """Operation counts of a worst-case recovery, without running one.

    Used for the Fig. 16 sweep at LLC sizes too large to simulate block by
    block; the counting logic mirrors :class:`HorusRecovery` exactly (a test
    pins the two together on a small configuration).  ``blocks`` overrides
    the worst-case vaulted-block count (hierarchy + full metadata cache) with
    a known episode size.
    """
    if blocks is None:
        blocks = (config.total_cache_lines
                  + config.metadata_cache_size // 64)
    stats = SimStats()
    stats.record_read(ReadKind.CHV, blocks)  # data blocks
    stats.record_read(ReadKind.CHV, -(-blocks // ADDRESSES_PER_BLOCK))
    group = MAC_GROUP_DLM if double_level_mac else MAC_GROUP_SLM
    stats.record_read(ReadKind.CHV, -(-blocks // group))         # MAC blocks
    stats.record_mac(MacKind.VERIFY, blocks)                     # first level
    if double_level_mac:
        stats.record_mac(MacKind.VERIFY, -(-blocks // MACS_PER_BLOCK))
    stats.record_aes(AesKind.DECRYPT, blocks)
    return stats


def estimate_recovery_seconds(config: SystemConfig,
                              double_level_mac: bool) -> float:
    """Worst-case recovery time (the Fig. 16 quantity)."""
    timing = TimingModel(config)
    return timing.seconds(estimate_recovery_stats(config, double_level_mac))
