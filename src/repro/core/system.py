"""The SecureEpdSystem facade — the library's primary entry point.

Wires together the NVM device, memory layout, cache hierarchy, secure memory
controller, drain engine, and recovery engine for one of the five schemes the
paper evaluates:

========== =====================================================
``nosec``    EPD without memory security (the Fig. 6/11 reference)
``base-lu``  baseline secure drain, lazy-update tree (Base-LU)
``base-eu``  baseline secure drain, eager-update tree (Base-EU)
``horus-slm`` Horus with single-level CHV MACs
``horus-dlm`` Horus with the double-level MAC register scheme
========== =====================================================

Typical use::

    system = SecureEpdSystem(SystemConfig.scaled(64), scheme="horus-dlm")
    system.fill_worst_case()
    report = system.crash()          # the drain episode (Fig. 11/12/13)
    recovery = system.recover()      # post-power-restore (Fig. 16)
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError, DrainStateError
from repro.core.chv import ChvLayout
from repro.core.horus import HorusDrainEngine
from repro.core.recovery import HorusRecovery, RecoveryReport
from repro.crypto.batch import batching_enabled
from repro.crypto.engine import KeySchedule
from repro.crypto.counters import DrainCounter
from repro.epd.baseline import BaselineSecureDrain
from repro.epd.drain import DrainEngine, DrainReport, NonSecureDrain
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.secure.cache_tree import ShadowRecovery
from repro.secure.controller import SecureMemoryController
from repro.stats.counters import SimStats
from repro.stats.events import ReadKind, WriteKind
from repro.stats.timing import TimingModel

SCHEMES = ("nosec", "base-lu", "base-eu", "horus-slm", "horus-dlm")

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)


class SecureEpdSystem:
    """A complete secure (or non-secure) EPD memory system."""

    def __init__(self, config: SystemConfig | None = None,
                 scheme: str = "horus-dlm", recovery_mode: str = "refill",
                 inclusive: bool = True, osiris_stop_loss: int = 0,
                 rotate_vault: bool = False, batched: bool | None = None,
                 key_schedule: "KeySchedule | None" = None):
        if scheme not in SCHEMES:
            raise ConfigError(
                f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
        if osiris_stop_loss and scheme != "base-lu":
            raise ConfigError(
                "Osiris recovery replaces the lazy baseline's shadow dump; "
                "it only applies to scheme='base-lu'")
        if not inclusive and scheme.startswith("horus") \
                and recovery_mode != "writeback":
            # Section IV-C3: a non-inclusive LLC cannot hold the whole
            # recovered hierarchy, so option 2 (writeback) is required.
            raise ConfigError(
                "non-inclusive hierarchies require recovery_mode='writeback'")
        self.config = config if config is not None else SystemConfig.paper()
        self.scheme = scheme
        self.batched = batching_enabled(batched)
        """Whether hot paths run through the batched crypto/NVM engines.

        Resolved from the ``batched`` argument, falling back to the
        ``REPRO_BATCH`` environment switch (the differential oracle runs one
        system per setting).  Scalar and batched execution are observably
        identical — same NVM image, same counters, same faults lost."""
        self.stats = SimStats()
        self.timing = TimingModel(self.config)

        self.layout = MemoryLayout(self.config)
        self.nvm = NvmDevice(self.layout.total_size, self.stats)
        self.hierarchy = CacheHierarchy(
            self.config, functional=self.config.security.functional,
            inclusive=inclusive)

        self.controller: SecureMemoryController | None = None
        self.drain_counter: DrainCounter | None = None
        self._recovery: HorusRecovery | ShadowRecovery | None = None

        if scheme == "nosec":
            self.hierarchy.attach(self._plain_fetch, self._plain_writeback)
            self.drain_engine: DrainEngine = NonSecureDrain(
                self.stats, self.timing, self.nvm, batched=self.batched)
        else:
            # Horus runs the recovery-oblivious lazy scheme at run time
            # (DRAM-like performance is the premise); the baselines pick
            # their scheme by name.
            if osiris_stop_loss:
                from repro.secure.osiris import OsirisLazyScheme
                runtime_scheme: str | object = OsirisLazyScheme(
                    osiris_stop_loss)
            else:
                runtime_scheme = "eager" if scheme == "base-eu" else "lazy"
            self.controller = SecureMemoryController(
                self.config, self.nvm, self.layout, self.stats,
                scheme=runtime_scheme, batched=self.batched,
                key_schedule=key_schedule)
            self.hierarchy.attach(self.controller.read, self.controller.write)
            if scheme.startswith("base"):
                self.drain_engine = BaselineSecureDrain(
                    self.controller, self.timing)
                if scheme == "base-lu" and osiris_stop_loss:
                    from repro.secure.osiris import OsirisRecovery
                    self._recovery = OsirisRecovery(
                        self.controller, osiris_stop_loss)
                elif scheme == "base-lu":
                    self._recovery = ShadowRecovery(self.controller)
            else:
                self.drain_counter = DrainCounter()
                chv = ChvLayout.for_layout(self.layout)
                dlm = scheme == "horus-dlm"
                self.drain_engine = HorusDrainEngine(
                    self.controller, self.nvm, chv, self.drain_counter,
                    self.timing, double_level_mac=dlm,
                    rotate_vault=rotate_vault, batched=self.batched)
                self._recovery = HorusRecovery(
                    self.controller, self.nvm, chv, self.drain_counter,
                    self.hierarchy, self.timing, double_level_mac=dlm,
                    mode=recovery_mode, rotate_vault=rotate_vault,
                    batched=self.batched)

        self.last_drain: DrainReport | None = None
        self.last_recovery: RecoveryReport | None = None

    # ------------------------------------------------------------------
    # Run-time interface
    # ------------------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Run-time store of one 64 B line (persistent once in the cache —
        the EPD property)."""
        self.layout.require_data_address(address)
        self.hierarchy.write(address, data)

    def read(self, address: int) -> bytes:
        """Run-time load of one 64 B line."""
        self.layout.require_data_address(address)
        return self.hierarchy.read(address)

    # ------------------------------------------------------------------
    # Crash / drain / recovery
    # ------------------------------------------------------------------

    def fill_worst_case(self, seed: int | None = None) -> int:
        """Fill every line of every level dirty (the hold-up worst case)."""
        return self.hierarchy.fill_worst_case(seed, batched=self.batched)

    def crash(self, seed: int | None = None) -> DrainReport:
        """Power-outage detection: drain per the configured scheme, then
        lose all volatile state."""
        report = self.drain_engine.drain(self.hierarchy, seed)
        self.hierarchy.invalidate_all()
        if self.controller is not None:
            self.controller.drop_volatile_state()
        self.last_drain = report
        return report

    @property
    def recovery_engine(self):
        """The scheme's recovery engine (``None`` for nosec / base-eu).

        Exposed so fault campaigns can install recovery step hooks
        (:attr:`~repro.core.recovery.HorusRecovery.step_hook`) without
        reaching into private state.
        """
        return self._recovery

    def power_cycle(self) -> None:
        """A nested power cut: lose all volatile state *again*, without a
        drain (the hold-up source is empty between crash and recovery).

        Models power failing mid-recovery: whatever recovery already placed
        back in the hierarchy or metadata caches is volatile and vanishes;
        the persistent registers (DC/eDC, tree roots, shadow count) and the
        NVM image survive, so a subsequent :meth:`recover` re-runs the whole
        restore from persistent state.
        """
        if self.last_drain is None:
            raise DrainStateError("power_cycle() before any crash()")
        self.hierarchy.invalidate_all()
        if self.controller is not None:
            self.controller.drop_volatile_state()

    def recover(self) -> RecoveryReport | None:
        """Power restoration: restore the drained state.

        Horus schemes restore the vaulted hierarchy into the LLC (dirty) and
        metadata caches; Base-LU restores its Anubis-style shadow dump;
        Base-EU and non-secure EPD have nothing volatile left to restore and
        return ``None``.
        """
        if self.last_drain is None:
            raise DrainStateError("recover() before any crash()")
        if self._recovery is None:
            self.last_recovery = None
            return None
        if isinstance(self._recovery, ShadowRecovery):
            before = self.stats.copy()
            restored = self._recovery.recover()
            episode = self.stats.diff(before)
            cycles = self.timing.cycles(episode)
            self.last_recovery = RecoveryReport(
                scheme=self.scheme, blocks_restored=restored,
                stats=episode, cycles=cycles,
                seconds=cycles / self.config.frequency_hz)
        elif isinstance(self._recovery, HorusRecovery):
            self.last_recovery = self._recovery.recover()
        else:
            # Osiris reconstruction: wrap its report in the common shape.
            report = self._recovery.recover()
            cycles = self.timing.cycles(report.stats)
            self.last_recovery = RecoveryReport(
                scheme=f"{self.scheme}-osiris",
                blocks_restored=report.counters_recovered,
                stats=report.stats, cycles=cycles,
                seconds=cycles / self.config.frequency_hz)
        return self.last_recovery

    # ------------------------------------------------------------------
    # Non-secure memory side
    # ------------------------------------------------------------------

    def _plain_fetch(self, address: int) -> bytes:
        return self.nvm.read(address, ReadKind.DATA)

    def _plain_writeback(self, address: int, data: bytes | None) -> None:
        self.nvm.write(address, data if data is not None else _ZERO_BLOCK,
                       WriteKind.DATA)
