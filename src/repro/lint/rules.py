"""The simulator-invariant rules (R0-R6).

Each rule encodes an invariant a past bug (or a near-miss) showed to be
load-bearing; ``docs/linting.md`` links every rule to its motivating
incident.  Rules are pure AST analyses: no imports of the checked code, no
execution, so the lint can run on a broken tree.  (The deep flow rules
F1-F5 live in :mod:`repro.lint.flow.rules`.)
"""

import ast
import re
from collections.abc import Iterator

from repro.lint.core import (
    RULES,
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    register,
)

SIM_PACKAGES = (
    "repro.core",
    "repro.crypto",
    "repro.secure",
    "repro.mem",
    "repro.metadata",
    "repro.epd",
    "repro.cache",
    "repro.faults",
    "repro.campaigns",
    "repro.sharding",
)
"""The deterministic simulator core: every observable these packages produce
must be a pure function of (config, seeds, code version)."""


@register
class SuppressionHygieneRule(Rule):
    """R0: suppression comments must name registered rules."""

    name = "R0"
    title = "suppression hygiene"
    rationale = ("A suppression comment naming an unknown rule id (say, a "
                 "typo like R99 for R4) suppresses nothing while looking "
                 "like a vetted exemption.  Unknown ids are reported so "
                 "every suppression in the tree provably refers to a real "
                 "rule.")
    scope = ()

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for line, names in module.suppression_lines:
            unknown = sorted(name for name in names if name not in RULES)
            if unknown:
                anchor = ast.Pass(lineno=line, col_offset=0)
                yield module.finding(self, anchor, (
                    f"suppression comment names unknown rule id(s) "
                    f"{', '.join(unknown)}; it suppresses nothing — fix "
                    f"the id or delete the comment"))


@register
class DeterminismRule(Rule):
    """R1: no wall-clock or entropy sources inside the simulator core."""

    name = "R1"
    title = "determinism"
    rationale = ("Episode results are cached and replayed by seed; a single "
                 "time.time()/random.random() in the core silently breaks "
                 "cache keys, the differential oracle, and reproducibility. "
                 "Only repro.common.rng and the experiment harness may touch "
                 "wall-clock or entropy.")
    scope = SIM_PACKAGES

    BANNED_MODULES = frozenset({"time", "random", "secrets", "datetime"})

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield module.finding(self, node, self._message(root))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root in self.BANNED_MODULES:
                        yield module.finding(self, node, self._message(root))

    def _message(self, name: str) -> str:
        return (f"nondeterministic module '{name}' imported in simulator "
                f"core; derive randomness from repro.common.rng and keep "
                f"timing in the experiment harness")


@register
class MacDomainRule(Rule):
    """R2: every MAC computation names its domain with domain=..."""

    name = "R2"
    title = "MAC domain separation"
    rationale = ("PR 2's splice attacks worked because a run-time data MAC "
                 "and a CHV MAC over the same bytes were the same value. "
                 "Domain separation only protects call sites that say which "
                 "domain they mean; implicit defaults reintroduce the bug "
                 "one refactor later.")
    scope = ("repro",)

    MAC_CALLS = frozenset({
        "compute_mac",
        "block_mac",
        "digest_mac",
        "block_mac_batch",
        "digest_mac_batch",
    })

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name not in self.MAC_CALLS:
                continue
            keywords = {kw.arg for kw in node.keywords}
            if "domain" in keywords or None in keywords:
                continue
            positional = any(
                isinstance(arg, ast.Attribute)
                and dotted_name(arg.value) == "MacDomain"
                for arg in node.args)
            how = ("passes its MacDomain positionally"
                   if positional else "relies on a default MacDomain")
            yield module.finding(self, node, (
                f"call to {name}() {how}; pass an explicit "
                f"domain=MacDomain.<X> keyword so the protection domain "
                f"survives signature refactors"))


@register
class BatchParityRule(Rule):
    """R3: every public batch method has a scalar twin and oracle coverage."""

    name = "R3"
    title = "batch parity"
    rationale = ("The batched hot paths promise byte-identical observables "
                 "with the scalar reference (PR 3).  A batch method without "
                 "a scalar twin has no specification to diverge from, and "
                 "one outside the coverage map is never differentially "
                 "tested.")
    scope = ("repro",)

    SUFFIXES = ("_batch", "_blocks", "_arena", "_epoch")
    COVERAGE_MAP = "tests/test_prop_batch.py"
    ORACLE = "src/repro/core/oracle.py"
    PROPERTY_DECORATORS = frozenset({"property", "cached_property"})

    #: Batch methods whose scalar specification is not ``<stem>()`` /
    #: ``<stem>_block()``: the fused epoch pass transcribes the per-op
    #: read/write entry points, so those are the twins it is held to.
    TWIN_OVERRIDES = {"replay_epoch": ("read", "write")}

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        covered = project.cached("R3.coverage", lambda: self._coverage(project))
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {item.name for item in cls.body
                       if isinstance(item, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                name = item.name
                if name.startswith("_") or not name.endswith(self.SUFFIXES):
                    continue
                if self._is_property(item):
                    continue
                stem = name.rsplit("_", 1)[0]
                override = self.TWIN_OVERRIDES.get(name)
                if override:
                    # Overridden twins are a conjunction: the fused pass
                    # transcribes all of them, so all must be present.
                    twins = set(override)
                    satisfied = twins <= methods
                    wanted = " and ".join(f"{t}()" for t in sorted(twins))
                else:
                    twins = {stem, stem + "_block"}
                    satisfied = bool(twins & methods)
                    wanted = f"{stem}() or {stem}_block()"
                if not satisfied:
                    yield module.finding(self, item, (
                        f"batch method {cls.name}.{name}() has no scalar "
                        f"counterpart ({wanted}) in the "
                        f"same class; the scalar path is the specification "
                        f"the oracle holds it to"))
                qualified = f"{cls.name}.{name}"
                if covered is not None and qualified not in covered:
                    yield module.finding(self, item, (
                        f"batch method {qualified}() is missing from the "
                        f"BATCH_COVERAGE map in {self.COVERAGE_MAP} and is "
                        f"not exercised by the differential oracle"))

    def _is_property(self, node: ast.AST) -> bool:
        for decorator in node.decorator_list:
            name = dotted_name(decorator)
            if name and name.split(".")[-1] in self.PROPERTY_DECORATORS:
                return True
        return False

    def _coverage(self, project: Project) -> frozenset | None:
        """Union of BATCH_COVERAGE keys and oracle-source word tokens.

        Returns None when neither source exists (e.g. lint fixtures run on a
        bare tree) — the coverage half of the rule is then skipped while the
        scalar-twin half still applies.
        """
        names: set[str] = set()
        available = False
        map_source = project.find_source(self.COVERAGE_MAP)
        if map_source is not None:
            available = True
            try:
                tree = ast.parse(map_source)
            except SyntaxError:
                tree = None
            if tree is not None:
                for node in ast.walk(tree):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not any(isinstance(t, ast.Name)
                               and t.id == "BATCH_COVERAGE"
                               for t in node.targets):
                        continue
                    if isinstance(node.value, ast.Dict):
                        for key in node.value.keys:
                            if isinstance(key, ast.Constant) \
                                    and isinstance(key.value, str):
                                names.add(key.value)
        oracle_source = project.find_source(self.ORACLE)
        if oracle_source is not None:
            available = True
            names.update(re.findall(r"\w+", oracle_source))
        return frozenset(names) if available else None


@register
class ExceptionHygieneRule(Rule):
    """R4: no broad exception swallowing."""

    name = "R4"
    title = "exception hygiene"
    rationale = ("IntegrityError, OracleDivergenceError, and fault-matrix "
                 "classifications are the simulator's signal; a broad "
                 "'except Exception' can silently reclassify a detected "
                 "attack as a clean run.  Broad handlers that re-raise "
                 "(rollback paths) are fine; the oracle's compare-then-"
                 "reraise paths are the only documented suppression.")
    scope = ()

    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_catch(node.type)
            if broad is None:
                continue
            if any(isinstance(child, ast.Raise)
                   for body in node.body for child in ast.walk(body)):
                continue
            yield module.finding(self, node, (
                f"broad '{broad}' swallows errors; catch the specific "
                f"exceptions (or re-raise) so integrity violations cannot "
                f"be silently classified as clean runs"))

    def _broad_catch(self, node: ast.AST | None) -> str | None:
        if node is None:
            return "except:"
        candidates = node.elts if isinstance(node, ast.Tuple) else [node]
        for candidate in candidates:
            name = dotted_name(candidate)
            if name and name.split(".")[-1] in self.BROAD:
                return f"except {name}"
        return None


@register
class MagicNumberRule(Rule):
    """R5: Table I/II constants must come from repro.common.constants."""

    name = "R5"
    title = "magic timing/energy numbers"
    rationale = ("The paper-fidelity experiments invert Table I/II to check "
                 "the model; a literal 500 in a timing path that drifts "
                 "from NVM_WRITE_LATENCY_NS desynchronizes the analytic "
                 "model, the golden op counts, and the reports without any "
                 "test noticing which copy is authoritative.")
    scope = SIM_PACKAGES + ("repro.stats", "repro.energy")

    TABLE_CONSTANTS = {
        40: "AES_LATENCY_CYCLES",
        160: "HASH_LATENCY_CYCLES",
        150: "NVM_READ_LATENCY_NS",
        500: "NVM_WRITE_LATENCY_NS",
        4_000_000_000: "CORE_FREQUENCY_HZ",
        531.8: "NVM_WRITE_ENERGY_J (in nJ)",
        531.8e-9: "NVM_WRITE_ENERGY_J",
        5.5: "NVM_READ_ENERGY_J (in nJ)",
        5.5e-9: "NVM_READ_ENERGY_J",
        9.3: "PROCESSOR_DRAIN_POWER_W",
    }

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if module.module == "repro.common.constants":
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            constant = self.TABLE_CONSTANTS.get(value)
            if constant is None:
                continue
            yield module.finding(self, node, (
                f"magic Table I/II literal {value!r}; import "
                f"repro.common.constants.{constant.split()[0]} so the "
                f"timing/energy model has one authoritative copy"))


@register
class StatsAccountingRule(Rule):
    """R6: NVM data movement must be accounted in SimStats."""

    name = "R6"
    title = "stats accounting"
    rationale = ("Drain time, energy, and the figures are all derived from "
                 "SimStats counters; a read or write that goes straight to "
                 "the raw backend moves data the timing model never sees. "
                 "Only repro.mem (the device itself) and repro.attacks (the "
                 "adversary, who bypasses accounting by definition) touch "
                 "the backend's block I/O.")
    scope = (
        "repro.core",
        "repro.secure",
        "repro.epd",
        "repro.cache",
        "repro.metadata",
        "repro.crypto",
        "repro.faults",
        "repro.pmlib",
        "repro.campaigns",
    )

    RAW_IO = frozenset({
        "read_block",
        "write_block",
        "read_blocks",
        "write_blocks",
        "corrupt_block",
        "clear",
    })

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr not in self.RAW_IO:
                continue
            holder = func.value
            if not isinstance(holder, ast.Attribute) \
                    or holder.attr not in ("backend", "_backend"):
                continue
            yield module.finding(self, node, (
                f"raw backend call .{holder.attr}.{func.attr}() bypasses "
                f"SimStats accounting; issue the request through "
                f"NvmDevice.read()/write() (or peek()/poke() for "
                f"unaccounted simulator-internal inspection)"))
