"""reprolint driver: file discovery, rule application, CLI.

``python -m repro.lint [paths ...]`` lints ``src`` and ``tests`` by default
with the fast AST rules (R0-R6); ``--deep`` adds the project-wide dataflow
rules (F1-F5, see :mod:`repro.lint.flow`) plus the shrink-only
``flow-baseline.txt``.  Output is human-readable ``path:line:col: RULE:
message`` findings, ``--format json``, or ``--format sarif`` for code
scanning uploads.  ``--changed <ref>`` restricts *reporting* to files
changed since a git ref (the deep analysis still sees the whole project,
so cross-module flows into changed files are not missed).

Exit codes: 0 clean, 1 findings, 2 usage or internal errors.  Suppressed
and baselined findings never affect the exit code but are always reported,
so exemptions stay visible.
"""

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.flow.rules  # noqa: F401 - imports register the F rules
import repro.lint.rules  # noqa: F401 - imports register the R rules
from repro.lint.core import RULES, Finding, Module, Project
from repro.lint.flow.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    parse_baseline,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: list[Path]) -> list[Path]:
    """All ``.py`` files under ``paths``, sorted, each reported once."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        for found in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in found.parts):
                continue
            seen.setdefault(found.resolve(), None)
    return list(seen)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "errors": list(self.errors),
            "exit_code": self.exit_code,
        }


def default_rules(deep: bool = False) -> list[str]:
    """Registry names selected when ``--rules`` is not given."""
    return [name for name in sorted(RULES)
            if deep or not RULES[name].deep]


def lint_paths(paths, root=None, rules=None, deep=False,
               baseline=None) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules.

    ``root`` anchors relative paths in messages and sibling-source lookups
    (defaults to the current directory); ``rules`` restricts the run to a
    subset of registry names (explicitly named deep rules run even without
    ``deep=True``); ``baseline`` is a set of flow-baseline fingerprints —
    matching findings are reported separately and do not fail the run,
    while stale entries (matching nothing) are errors so the baseline can
    only shrink.
    """
    root = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    selected = sorted(rules) if rules is not None else default_rules(deep)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        result.errors.append(f"unknown rule(s): {', '.join(unknown)}")
        return result

    modules: list[Module] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            modules.append(Module(file_path, root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{file_path}: {exc}")
    result.files_checked = len(modules)

    project = Project(root, modules)
    for module in modules:
        for name in selected:
            rule = RULES[name]
            if not rule.applies(module):
                continue
            for finding in rule.check(module, project):
                if finding.suppressed:
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)

    if baseline:
        fresh, covered, stale = apply_baseline(result.findings, baseline)
        result.findings = fresh
        result.baselined = covered
        for entry in sorted(stale):
            result.errors.append(
                f"stale {BASELINE_FILENAME} entry: {entry} (the finding is "
                f"gone — delete the line so the baseline shrinks)")

    result.findings.sort()
    result.suppressed.sort()
    result.baselined.sort()
    return result


def changed_files(ref: str, root: Path) -> set[str] | None:
    """Posix-relative paths changed since ``ref``; None if git fails."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            cwd=root, capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return {line.strip() for line in proc.stdout.splitlines()
            if line.strip()}


def _filter_changed(result: LintResult, changed: set[str]) -> None:
    result.findings = [f for f in result.findings if f.path in changed]
    result.suppressed = [f for f in result.suppressed if f.path in changed]
    result.baselined = [f for f in result.baselined if f.path in changed]


def _render_human(result: LintResult) -> str:
    lines = [f.format() for f in result.findings]
    lines.extend(f.format() for f in result.suppressed)
    lines.extend(f"{f.format()} (baselined)" for f in result.baselined)
    lines.extend(f"error: {message}" for message in result.errors)
    lines.append(
        f"reprolint: {result.files_checked} files, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.errors)} error(s)")
    return "\n".join(lines)


def _render_rules() -> str:
    lines = []
    for name in sorted(RULES):
        rule = RULES[name]
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        flavor = " [deep]" if rule.deep else ""
        lines.append(f"{name}{flavor}  {rule.title}")
        lines.append(f"    scope: {scope}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _render_sarif(result: LintResult) -> str:
    """Minimal SARIF 2.1.0 document for code-scanning uploads."""
    names = sorted(RULES)
    index = {name: position for position, name in enumerate(names)}
    rules_meta = [
        {
            "id": name,
            "shortDescription": {"text": RULES[name].title},
            "fullDescription": {"text": RULES[name].rationale},
            "properties": {"deep": RULES[name].deep},
        }
        for name in names
    ]

    def sarif_result(finding: Finding, suppression: str | None) -> dict:
        entry = {
            "ruleId": finding.rule,
            "ruleIndex": index.get(finding.rule, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line,
                               "startColumn": finding.col},
                },
            }],
        }
        if suppression is not None:
            entry["suppressions"] = [{"kind": suppression}]
        return entry

    results = [sarif_result(f, None) for f in result.findings]
    results.extend(sarif_result(f, "inSource") for f in result.suppressed)
    results.extend(sarif_result(f, "external") for f in result.baselined)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "reprolint",
                "informationUri": "docs/linting.md",
                "rules": rules_meta,
            }},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-invariant static analysis for the Horus "
                    "reproduction (fast rules R0-R6; deep dataflow rules "
                    "F1-F5 with --deep; see docs/linting.md).",
        epilog="exit codes: 0 clean, 1 findings, "
               "2 usage or internal errors")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("human", "json", "sarif"),
                        default="human", help="output format")
    parser.add_argument("--root", default=None,
                        help="project root for relative paths and "
                             "coverage-map lookups (default: cwd)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run "
                             "(e.g. R1,F2); named deep rules run without "
                             "--deep")
    parser.add_argument("--deep", action="store_true",
                        help="also run the project-wide dataflow rules "
                             "(F1-F5) and apply flow-baseline.txt")
    parser.add_argument("--changed", metavar="REF", default=None,
                        help="report only findings in files changed since "
                             "the given git ref (analysis still covers the "
                             "whole project)")
    parser.add_argument("--baseline", default=None,
                        help="flow baseline file (default: "
                             f"<root>/{BASELINE_FILENAME} under --deep)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rules())
        return 0

    root = Path(args.root) if args.root is not None else Path.cwd()

    rules = None
    if args.rules:
        rules = [name.strip().upper()
                 for name in args.rules.split(",") if name.strip()]

    baseline = None
    if args.deep or args.baseline:
        baseline_path = Path(args.baseline) if args.baseline \
            else root / BASELINE_FILENAME
        if baseline_path.is_file():
            baseline = parse_baseline(
                baseline_path.read_text(encoding="utf-8"))

    result = lint_paths(args.paths, root=args.root, rules=rules,
                        deep=args.deep, baseline=baseline)

    if args.changed is not None:
        changed = changed_files(args.changed, root)
        if changed is None:
            result.errors.append(
                f"--changed: git diff against {args.changed!r} failed")
        else:
            _filter_changed(result, changed)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(_render_sarif(result))
    else:
        print(_render_human(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
