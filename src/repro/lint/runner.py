"""reprolint driver: file discovery, rule application, CLI.

``python -m repro.lint [paths ...]`` lints ``src`` and ``tests`` by default,
prints human-readable ``path:line:col: RULE: message`` findings (or JSON with
``--format json``), and exits 0 only when the tree is clean.  Suppressed
findings never affect the exit code but are always reported, so exemptions
stay visible.
"""

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

import repro.lint.rules  # noqa: F401 - imports register the rules
from repro.lint.core import RULES, Finding, Module, Project

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: list[Path]) -> list[Path]:
    """All ``.py`` files under ``paths``, sorted, each reported once."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        for found in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in found.parts):
                continue
            seen.setdefault(found.resolve(), None)
    return list(seen)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "errors": list(self.errors),
            "exit_code": self.exit_code,
        }


def lint_paths(paths, root=None, rules=None) -> LintResult:
    """Lint every Python file under ``paths`` with the selected rules.

    ``root`` anchors relative paths in messages and sibling-source lookups
    (defaults to the current directory); ``rules`` restricts the run to a
    subset of registry names.
    """
    root = Path(root) if root is not None else Path.cwd()
    result = LintResult()
    selected = sorted(rules) if rules is not None else sorted(RULES)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        result.errors.append(f"unknown rule(s): {', '.join(unknown)}")
        return result

    modules: list[Module] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            modules.append(Module(file_path, root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{file_path}: {exc}")
    result.files_checked = len(modules)

    project = Project(root, modules)
    for module in modules:
        for name in selected:
            rule = RULES[name]
            if not rule.applies(module):
                continue
            for finding in rule.check(module, project):
                if finding.suppressed:
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result


def _render_human(result: LintResult) -> str:
    lines = [f.format() for f in result.findings]
    lines.extend(f.format() for f in result.suppressed)
    lines.extend(f"error: {message}" for message in result.errors)
    lines.append(
        f"reprolint: {result.files_checked} files, "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.errors)} error(s)")
    return "\n".join(lines)


def _render_rules() -> str:
    lines = []
    for name in sorted(RULES):
        rule = RULES[name]
        scope = ", ".join(rule.scope) if rule.scope else "all files"
        lines.append(f"{name}  {rule.title}")
        lines.append(f"    scope: {scope}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Simulator-invariant static analysis for the Horus "
                    "reproduction (rules R1-R6; see docs/linting.md).")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="output format")
    parser.add_argument("--root", default=None,
                        help="project root for relative paths and "
                             "coverage-map lookups (default: cwd)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run "
                             "(e.g. R1,R4)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every registered rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rules())
        return 0

    rules = None
    if args.rules:
        rules = [name.strip().upper()
                 for name in args.rules.split(",") if name.strip()]
    result = lint_paths(args.paths, root=args.root, rules=rules)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render_human(result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
