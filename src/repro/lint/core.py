"""reprolint framework: parsed modules, the rule registry, suppressions.

A :class:`Module` is one parsed source file; a :class:`Project` is the set of
modules under analysis plus access to sibling sources a rule may need (e.g.
the batch-parity coverage map).  Rules subclass :class:`Rule`, declare a
module-prefix ``scope``, and are added to the global :data:`RULES` registry
with the :func:`register` decorator.

Suppression is per line and per rule::

    risky_call()  # reprolint: disable=R4
    # reprolint: disable-next-line=R2,R5
    flagged_line()

Suppressed findings are not dropped silently — the runner reports them
separately so a reviewer (or the meta-test in ``tests/test_lint.py``) can
assert that suppressions stay confined to their documented exemptions.
"""

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, replace
from pathlib import Path

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-next-line)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}{tag}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message,
                "suppressed": self.suppressed}


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for ``path``.

    Files inside a ``repro`` package directory are named from that anchor
    (``src/repro/core/horus.py`` -> ``repro.core.horus``) so rule scopes are
    stable regardless of where the tree is checked out; everything else is
    named relative to ``root`` (``tests/test_lint.py`` -> ``tests.test_lint``).
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    try:
        rel = path.with_suffix("").relative_to(root).parts
    except ValueError:
        rel = tuple(parts[-2:])
    if rel and rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


class Module:
    """One parsed Python source file plus its suppression table."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.root = root
        try:
            self.relpath = path.relative_to(root).as_posix()
        except ValueError:
            self.relpath = path.as_posix()
        self.module = module_name_for(path, root)
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.lines = self.source.splitlines()
        self._suppressions: dict[int, set[str]] = {}
        self.suppression_lines: list[tuple[int, frozenset[str]]] = []
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        for number, text in enumerate(self.lines, start=1):
            if "reprolint" not in text:
                continue
            for match in _SUPPRESS_RE.finditer(text):
                rules = frozenset(
                    name.strip().upper()
                    for name in match.group(2).split(",") if name.strip())
                target = number + 1 if match.group(1).endswith("next-line") \
                    else number
                self._suppressions.setdefault(target, set()).update(rules)
                self.suppression_lines.append((number, rules))

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self._suppressions.get(line, ())

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``, applying suppressions."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        raw = Finding(path=self.relpath, line=line, col=col,
                      rule=rule.name, message=message)
        if self.is_suppressed(rule.name, line):
            return replace(raw, suppressed=True)
        return raw


class Project:
    """The set of modules being linted plus sibling-source access."""

    def __init__(self, root: Path, modules: list[Module]):
        self.root = root
        self.modules = modules
        self._cache: dict[str, object] = {}

    def find_source(self, *candidates: str) -> str | None:
        """Source text of the first existing path (relative to the root)."""
        for candidate in candidates:
            path = self.root / candidate
            if path.is_file():
                return path.read_text(encoding="utf-8")
        return None

    def cached(self, key: str, compute) -> object:
        """Per-run memoization for rule-level project scans."""
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]


class Rule:
    """Base class for reprolint rules.

    ``scope`` is a tuple of dotted module prefixes; an empty tuple means the
    rule applies everywhere the runner looks.  ``check`` yields findings via
    :meth:`Module.finding` so suppression handling stays uniform.
    """

    name = ""
    title = ""
    rationale = ""
    scope: tuple[str, ...] = ()
    deep = False
    """Deep rules (the flow family) run only under ``--deep``: they need a
    whole-project fixed point and are too slow for the per-save fast path."""

    def applies(self, module: Module) -> bool:
        if not self.scope:
            return True
        return any(module.module == prefix
                   or module.module.startswith(prefix + ".")
                   for prefix in self.scope)

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if instance.name in RULES:
        raise ValueError(f"duplicate rule name {instance.name}")
    RULES[instance.name] = instance
    return cls


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
