"""Shrink-only baseline for deep findings, mirroring ``mypy-baseline.txt``.

``flow-baseline.txt`` holds fingerprints of known deep findings so the
``--deep`` gate can land clean on day one and only ever tighten: entries
may be *removed* as debt is paid down, never added (the meta-test in
``tests/test_flow.py`` enforces the shrink-only direction).

Fingerprints are line-number independent — ``rule|path|hash(message)`` —
so unrelated edits that shift code do not churn the baseline.
"""

import hashlib

from repro.lint.core import Finding

BASELINE_FILENAME = "flow-baseline.txt"


def fingerprint(finding: Finding) -> str:
    """Stable identity for one deep finding (no line numbers)."""
    digest = hashlib.sha256(finding.message.encode("utf-8")).hexdigest()[:12]
    return f"{finding.rule}|{finding.path}|{digest}"


def parse_baseline(text: str) -> set[str]:
    """Fingerprints from baseline file text; ``#`` comments are ignored."""
    entries: set[str] = set()
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            entries.add(stripped)
    return entries


def apply_baseline(
    findings: list[Finding], baseline: set[str],
) -> tuple[list[Finding], list[Finding], set[str]]:
    """Partition ``findings`` against the baseline.

    Returns ``(fresh, baselined, unused)``: findings not covered by an
    entry, findings covered (reported separately, never hidden), and
    baseline entries that matched nothing (stale — safe to delete).
    """
    fresh: list[Finding] = []
    baselined: list[Finding] = []
    used: set[str] = set()
    for finding in findings:
        key = fingerprint(finding)
        if key in baseline:
            used.add(key)
            baselined.append(finding)
        else:
            fresh.append(finding)
    return fresh, baselined, baseline - used
