"""Project call graph over reprolint modules.

Python call resolution is necessarily heuristic in a static pass; this one
is deliberately conservative about *which* edges get summary-level taint
propagation (see :mod:`repro.lint.flow.summaries`):

* ``self.m(...)`` resolves within the enclosing class and its project-local
  base classes (by class name) — precise, and the only edges the F3/F4
  guard-reachability checks use;
* ``f(...)`` resolves to module-level functions, preferring the defining
  module, then names imported into the calling module, then a unique
  project-wide definition;
* ``obj.m(...)`` resolves only when exactly one project class defines a
  method named ``m`` (unambiguous); ambiguous method names fall back to
  summary-free taint propagation so that, e.g., a ``controller.write`` call
  is never confused with ``NvmDevice.write``.
"""

import ast
from dataclasses import dataclass, field

from repro.lint.core import Module, Project, dotted_name

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    qualname: str
    module: Module
    node: FunctionNode
    class_name: str | None = None
    bases: tuple[str, ...] = ()
    has_self: bool = False
    params: tuple[str, ...] = ()
    attr_writes: set[str] = field(default_factory=set)
    """``self.<name>`` attributes this function assigns."""

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")


def _param_names(node: FunctionNode, has_self: bool) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if has_self and names:
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


def _scan_attr_writes(node: FunctionNode) -> set[str]:
    writes: set[str] = set()
    for child in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            targets = [child.target]
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                writes.add(target.attr)
    return writes


class CallGraph:
    """Functions, classes, import tables, and resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.methods: dict[tuple[str, str], FunctionInfo] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        self.class_bases: dict[str, tuple[str, ...]] = {}
        self.class_methods: dict[str, list[FunctionInfo]] = {}
        self.imports: dict[str, dict[str, str]] = {}
        """Per-module ``local name -> source module`` for from-imports."""
        self.callers: dict[str, set[str]] = {}
        self.self_callees: dict[str, set[str]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, project: Project, modules: list[Module]) -> "CallGraph":
        graph = cls()
        for module in modules:
            graph._collect_module(module)
        for info in graph.functions.values():
            graph._collect_edges(info)
        return graph

    def _collect_module(self, module: Module) -> None:
        imports: dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = node.module
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imports[local] = alias.name
        self.imports[module.module] = imports

        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node, None, ())
            elif isinstance(node, ast.ClassDef):
                bases = tuple(name for name in
                              (dotted_name(base) for base in node.bases)
                              if name is not None)
                base_tails = tuple(name.split(".")[-1] for name in bases)
                self.class_bases[node.name] = base_tails
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._add_function(module, item, node.name,
                                           base_tails)

    def _add_function(self, module: Module, node: FunctionNode,
                      class_name: str | None,
                      bases: tuple[str, ...]) -> None:
        has_self = (class_name is not None
                    and bool(node.args.posonlyargs or node.args.args)
                    and not self._is_static(node))
        if class_name is None:
            qualname = f"{module.module}:{node.name}"
        else:
            qualname = f"{module.module}:{class_name}.{node.name}"
        info = FunctionInfo(
            qualname=qualname, module=module, node=node,
            class_name=class_name, bases=bases, has_self=has_self,
            params=_param_names(node, has_self),
            attr_writes=_scan_attr_writes(node))
        self.functions[qualname] = info
        if class_name is None:
            self.module_functions[(module.module, node.name)] = info
            self.functions_by_name.setdefault(node.name, []).append(info)
        else:
            self.methods.setdefault((class_name, node.name), info)
            self.methods_by_name.setdefault(node.name, []).append(info)
            self.class_methods.setdefault(class_name, []).append(info)

    @staticmethod
    def _is_static(node: FunctionNode) -> bool:
        for decorator in node.decorator_list:
            name = dotted_name(decorator)
            if name and name.split(".")[-1] == "staticmethod":
                return True
        return False

    # -- resolution ---------------------------------------------------------

    def resolve_self_method(self, class_name: str | None,
                            method: str) -> FunctionInfo | None:
        """``self.method`` lookup through the project-local base chain."""
        seen: set[str] = set()
        queue = [class_name] if class_name else []
        while queue:
            current = queue.pop(0)
            if current is None or current in seen:
                continue
            seen.add(current)
            info = self.methods.get((current, method))
            if info is not None:
                return info
            queue.extend(self.class_bases.get(current, ()))
        return None

    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> list[FunctionInfo]:
        """Callees of ``call`` eligible for summary application."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller)
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            info = self.resolve_self_method(caller.class_name, method)
            return [info] if info is not None else []
        if isinstance(func.value, ast.Name):
            # module-alias call (``batch.encrypt_blocks``)
            source = self.imports.get(caller.module.module, {}) \
                .get(func.value.id)
            if source is not None:
                info = self.module_functions.get((source, method))
                if info is not None:
                    return [info]
        candidates = self.methods_by_name.get(method, [])
        if len(candidates) == 1:
            return [candidates[0]]
        return []

    def _resolve_name(self, name: str,
                      caller: FunctionInfo) -> list[FunctionInfo]:
        info = self.module_functions.get((caller.module.module, name))
        if info is not None:
            return [info]
        source = self.imports.get(caller.module.module, {}).get(name)
        if source is not None:
            info = self.module_functions.get((source, name))
            if info is not None:
                return [info]
        candidates = self.functions_by_name.get(name, [])
        if len(candidates) == 1:
            return [candidates[0]]
        return []

    # -- edges --------------------------------------------------------------

    def _collect_edges(self, info: FunctionInfo) -> None:
        self.callers.setdefault(info.qualname, set())
        self.self_callees.setdefault(info.qualname, set())
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self.resolve_call(node, info):
                self.callers.setdefault(callee.qualname, set()) \
                    .add(info.qualname)
                if (callee.class_name is not None
                        and callee.class_name == info.class_name):
                    self.self_callees[info.qualname].add(callee.qualname)
        # ``self.m`` calls resolved through base classes still count as
        # same-object dispatch for guard reachability.
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "self":
                callee = self.resolve_self_method(info.class_name,
                                                  node.func.attr)
                if callee is not None:
                    self.self_callees[info.qualname].add(callee.qualname)

    def transitive_self_closure(self, qualname: str) -> set[str]:
        """``qualname`` plus everything reachable via same-object calls."""
        seen: set[str] = set()
        queue = [qualname]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.self_callees.get(current, ()))
        return seen
