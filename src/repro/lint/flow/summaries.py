"""Interprocedural summaries and the project-wide fixed point.

A :class:`Summary` is the caller-visible behavior of one function: which
semantic labels its return value generates, which parameters flow through
to the return, which parameters are decremented on the way, and which
parameters reach a sink somewhere inside (transitively).  The driver
iterates intraprocedural passes to a fixed point over the call graph —
when a function's summary changes, its callers are re-queued — then runs
one final pass per function with the stable summaries to collect findings.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.lint.core import Module, Project
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.intraproc import (
    FunctionEvaluator,
    Hit,
    IntraResult,
)
from repro.lint.flow.lattice import EMPTY, FlowConfig, Taint

_MAX_VISITS = 8
"""Per-function re-analysis cap: strong updates are not strictly monotone,
so the worklist is bounded to guarantee termination on adversarial input."""


@dataclass(frozen=True)
class Summary:
    """Caller-visible dataflow behavior of one function."""

    returns: Taint = EMPTY
    passthrough: frozenset[int] = frozenset()
    decrements: frozenset[int] = frozenset()
    param_sinks: tuple[tuple[int, tuple[tuple[str, str], ...]], ...] = ()
    sink_labels: tuple[tuple[tuple[str, str], Taint], ...] = ()

    @classmethod
    def from_result(cls, result: IntraResult) -> "Summary":
        return cls(
            returns=result.semantic_return,
            passthrough=result.passthrough,
            decrements=result.decrements,
            param_sinks=tuple(sorted(
                (index, tuple(sorted(sinks)))
                for index, sinks in result.param_sinks.items())),
            sink_labels=tuple(sorted(
                (key, value)
                for key, value in result.sink_labels.items())),
        )

    # The evaluator consumes dict-shaped views.
    @property
    def param_sinks_map(self) -> dict[int, tuple[tuple[str, str], ...]]:
        return dict(self.param_sinks)

    @property
    def sink_labels_map(self) -> dict[tuple[str, str], Taint]:
        return dict(self.sink_labels)


class _SummaryView:
    """Adapter giving the evaluator attribute access over a Summary."""

    __slots__ = ("returns", "passthrough", "decrements", "param_sinks",
                 "sink_labels")

    def __init__(self, summary: Summary):
        self.returns = summary.returns
        self.passthrough = summary.passthrough
        self.decrements = summary.decrements
        self.param_sinks = summary.param_sinks_map
        self.sink_labels = summary.sink_labels_map


@dataclass
class FlowAnalysis:
    """The stable result of one project analysis."""

    graph: CallGraph
    config: FlowConfig
    results: dict[str, IntraResult] = field(default_factory=dict)
    summaries: dict[str, Summary] = field(default_factory=dict)

    def hits_for_module(self, module: Module) -> list[Hit]:
        hits: list[Hit] = []
        for qualname, result in self.results.items():
            info = self.graph.functions[qualname]
            if info.module.relpath == module.relpath:
                hits.extend(result.hits)
        return hits

    def transitive_attr_reads(self, qualname: str) -> set[str]:
        """``self.<attr>`` reads of ``qualname`` and every same-object
        method it transitively calls."""
        reads: set[str] = set()
        for reached in self.graph.transitive_self_closure(qualname):
            result = self.results.get(reached)
            if result is not None:
                reads.update(result.attr_reads)
        return reads

    def transitive_self_callee_names(self, qualname: str) -> set[str]:
        return {self.graph.functions[reached].name
                for reached in self.graph.transitive_self_closure(qualname)
                if reached != qualname and reached in self.graph.functions}


def analyze_project(project: Project, modules: list[Module],
                    config: FlowConfig) -> FlowAnalysis:
    """Run the taint engine to a fixed point over ``modules``."""
    graph = CallGraph.build(project, modules)
    summaries: dict[str, Summary] = {}
    views: dict[str, _SummaryView] = {}
    visits: dict[str, int] = {}

    worklist: deque[str] = deque(graph.functions)
    queued = set(worklist)
    while worklist:
        qualname = worklist.popleft()
        queued.discard(qualname)
        if visits.get(qualname, 0) >= _MAX_VISITS:
            continue
        visits[qualname] = visits.get(qualname, 0) + 1
        info = graph.functions[qualname]
        result = FunctionEvaluator(info, config, graph, views).run()
        summary = Summary.from_result(result)
        if summaries.get(qualname) != summary:
            summaries[qualname] = summary
            views[qualname] = _SummaryView(summary)
            for caller in graph.callers.get(qualname, ()):
                if caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)

    analysis = FlowAnalysis(graph=graph, config=config, summaries=summaries)
    for qualname, info in graph.functions.items():
        analysis.results[qualname] = \
            FunctionEvaluator(info, config, graph, views).run()
    return analysis
