"""reproflow: project-wide static dataflow analysis for reprolint.

The engine layers on reprolint's :class:`~repro.lint.core.Module` /
:class:`~repro.lint.core.Project` model:

1. :mod:`repro.lint.flow.callgraph` builds a conservative call graph over
   ``src/repro``;
2. :mod:`repro.lint.flow.intraproc` runs a def-use taint pass per function
   (sources introduce labels, sanitizers strip them, sinks flag them);
3. :mod:`repro.lint.flow.summaries` propagates function summaries to a
   fixed point so taint crosses call boundaries;
4. :mod:`repro.lint.flow.rules` ships the F1–F5 rule families on top;
5. :mod:`repro.lint.flow.baseline` gives the gate a shrink-only baseline.

Run it as ``python -m repro.lint --deep``.
"""

from repro.lint.flow.baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    fingerprint,
    parse_baseline,
)
from repro.lint.flow.lattice import FlowConfig, Taint, merge_configs
from repro.lint.flow.rules import RULES_FLOW, FlowRule
from repro.lint.flow.summaries import FlowAnalysis, analyze_project

__all__ = [
    "BASELINE_FILENAME",
    "FlowAnalysis",
    "FlowConfig",
    "FlowRule",
    "RULES_FLOW",
    "Taint",
    "analyze_project",
    "apply_baseline",
    "fingerprint",
    "merge_configs",
    "parse_baseline",
]
